"""`repro.factory` — the simulated production line.

Mints lots of device instances with defects drawn from a seeded
distribution over the fault registry (:mod:`repro.factory.defects`),
pushes them through a staged test program — interconnect boundary scan,
power-on BIST, field calibration sweep (:mod:`repro.factory.stages`) —
and accounts yield, per-stage catches, false fails, test time and
escapes in a bit-identically reproducible
:class:`~repro.factory.report.LotReport`
(:mod:`repro.factory.line`).  See ``docs/factory.md``.
"""

from .config import (
    DefectDistribution,
    LotConfig,
    SEVERITY_LAWS,
    STAGE_NAMES,
    golden_lot_config,
)
from .defects import Defect, defect, mint_units, signature
from .line import FactoryLine, SignatureEvaluation, run_field_oracle
from .report import (
    DISPOSITIONS,
    LotReport,
    OracleResult,
    StageReport,
    UnitRecord,
)
from .stages import (
    StageResult,
    run_bist,
    run_btest,
    run_calibration,
    run_stage,
    split_defects,
)

__all__ = [
    "DISPOSITIONS",
    "Defect",
    "DefectDistribution",
    "FactoryLine",
    "LotConfig",
    "LotReport",
    "OracleResult",
    "SEVERITY_LAWS",
    "STAGE_NAMES",
    "SignatureEvaluation",
    "StageReport",
    "StageResult",
    "UnitRecord",
    "defect",
    "golden_lot_config",
    "mint_units",
    "run_bist",
    "run_btest",
    "run_calibration",
    "run_field_oracle",
    "run_stage",
    "signature",
    "split_defects",
]
