"""Lot accounting: per-unit dispositions rolled up into a `LotReport`.

Every unit ends in exactly **one** disposition:

* ``"pass"`` — clean unit, passed the whole program (good yield),
* ``"false-fail"`` — clean unit a stage rejected (overkill: lost yield),
* ``"caught"`` — defective unit stopped at a stage (the stage earns
  the catch),
* ``"pass-latent"`` — defective unit that passed, but the field-audit
  oracle shows it stays inside the product spec, gets flagged by the
  supervisor, or fails loudly — annoying, not silent,
* ``"escape"`` — defective unit that passed and **would serve an
  unflagged out-of-spec heading in the field**.  The product claim is
  that this count is zero; :meth:`LotReport.raise_for_escapes` turns a
  violation into a typed :class:`~repro.errors.EscapeError` (exit 18).

The disposition partition is airtight by construction — one disposition
per unit, stage catch counts summing into the partition — which is what
the property suite asserts and CI ratchets on.

``to_dict``/``to_json`` are canonical: deterministic float arithmetic
in, sorted keys out, wall-clock time deliberately excluded (kept on
:attr:`LotReport.wall_s` for benchmarks), so a golden lot file is
bit-identical across runs, machines, and scalar/batch paths.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import EscapeError
from .config import LotConfig
from .defects import Defect

#: Every disposition a unit can end in (the partition).
DISPOSITIONS = ("pass", "false-fail", "caught", "pass-latent", "escape")


@dataclass(frozen=True)
class OracleResult:
    """The field-audit verdict on one defective-but-passing signature.

    ``verdict`` is ``"in-spec"`` (worst unflagged error inside the
    product tolerance), ``"flagged"`` (supervisor degrades it in the
    field — visible), ``"fails-loud"`` (raises in the field — visible),
    or ``"silent-wrong"`` (unflagged error beyond spec: an escape).
    """

    verdict: str
    worst_error_deg: Optional[float]
    detail: str

    @property
    def is_escape(self) -> bool:
        return self.verdict == "silent-wrong"

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "worst_error_deg": self.worst_error_deg,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class UnitRecord:
    """One minted unit's journey through the program."""

    unit: int
    defects: Tuple[Defect, ...]
    disposition: str
    caught_by: Optional[str]
    detail: str
    test_time_s: float
    oracle: Optional[OracleResult] = None

    @property
    def defective(self) -> bool:
        return bool(self.defects)

    def to_dict(self) -> dict:
        return {
            "unit": self.unit,
            "defects": [d.to_dict() for d in self.defects],
            "disposition": self.disposition,
            "caught_by": self.caught_by,
            "detail": self.detail,
            "test_time_s": self.test_time_s,
            "oracle": None if self.oracle is None else self.oracle.to_dict(),
        }


@dataclass
class StageReport:
    """Catch/false-fail/cost accounting for one stage of the program.

    ``tested`` counts only units that *reached* the stage (units stop at
    their first failing stage), so ``sim_time_s`` is the tester time the
    lot actually spent here and ``cost_per_defect_caught_s`` is an
    honest economics number, not an all-units upper bound.
    """

    name: str
    tested: int = 0
    caught: int = 0
    false_fails: int = 0
    passed: int = 0
    sim_time_s: float = 0.0

    @property
    def cost_per_defect_caught_s(self) -> Optional[float]:
        if self.caught == 0:
            return None
        return self.sim_time_s / self.caught

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tested": self.tested,
            "caught": self.caught,
            "false_fails": self.false_fails,
            "passed": self.passed,
            "sim_time_s": self.sim_time_s,
            "cost_per_defect_caught_s": self.cost_per_defect_caught_s,
        }


@dataclass
class LotReport:
    """The full accounting of one lot through one test program."""

    config: LotConfig
    units: List[UnitRecord]
    stages: List[StageReport]
    distinct_signatures: int
    #: Wall-clock seconds the lot took; *not* serialised (bit-identity).
    wall_s: float = 0.0
    #: Per-signature evaluations (line internals) for audits and the
    #: replay seam; not serialised.
    evaluations: dict = field(default_factory=dict, repr=False)

    @property
    def size(self) -> int:
        return len(self.units)

    def counts(self) -> Dict[str, int]:
        """Units per disposition (all five keys always present)."""
        tally = Counter(u.disposition for u in self.units)
        return {d: tally.get(d, 0) for d in DISPOSITIONS}

    @property
    def defective_units(self) -> int:
        return sum(1 for u in self.units if u.defective)

    @property
    def shipped(self) -> int:
        """Units that passed the whole program (good, latent, or escaped)."""
        return sum(
            1
            for u in self.units
            if u.disposition in ("pass", "pass-latent", "escape")
        )

    @property
    def yield_fraction(self) -> float:
        return self.shipped / self.size

    @property
    def escapes(self) -> List[UnitRecord]:
        return [u for u in self.units if u.disposition == "escape"]

    @property
    def escape_rate(self) -> float:
        return len(self.escapes) / self.size

    @property
    def test_time_per_unit_s(self) -> float:
        return sum(u.test_time_s for u in self.units) / self.size

    def stage(self, name: str) -> StageReport:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    def raise_for_escapes(self) -> None:
        """The factory gate: any escape raises :class:`EscapeError` (exit 18)."""
        escaped = self.escapes
        if escaped:
            worst = max(
                (u.oracle.worst_error_deg or 0.0)
                for u in escaped
                if u.oracle is not None
            )
            raise EscapeError(
                f"{len(escaped)} of {self.size} units escaped the test "
                f"program and would serve silent-wrong headings "
                f"(worst unflagged error {worst:.3f} deg; units "
                f"{[u.unit for u in escaped]})",
                report=self,
            )

    def to_dict(self, include_units: bool = True) -> dict:
        record = {
            "config": self.config.to_dict(),
            "size": self.size,
            "distinct_signatures": self.distinct_signatures,
            "defective_units": self.defective_units,
            "dispositions": self.counts(),
            "yield_fraction": self.yield_fraction,
            "escape_rate": self.escape_rate,
            "escaped_units": [u.unit for u in self.escapes],
            "test_time_per_unit_s": self.test_time_per_unit_s,
            "stages": [stage.to_dict() for stage in self.stages],
        }
        if include_units:
            record["units"] = [u.to_dict() for u in self.units]
        return record

    def to_json(self, include_units: bool = True) -> str:
        return json.dumps(
            self.to_dict(include_units), indent=2, sort_keys=True
        ) + "\n"

    def write_json(self, path: str, include_units: bool = True) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(include_units))

    def summary(self) -> str:
        counts = self.counts()
        lines = [
            f"lot of {self.size} units (seed {self.config.seed}, "
            f"{self.defective_units} defective, "
            f"{self.distinct_signatures} distinct signatures)",
            f"  program: {' -> '.join(self.config.stages)} "
            f"[{self.config.calibration_path} calibration]",
            f"  yield {self.yield_fraction:.4f} "
            f"({self.shipped}/{self.size} shipped), "
            f"test time {self.test_time_per_unit_s * 1e3:.2f} ms/unit",
            "  dispositions: "
            + ", ".join(f"{d}={counts[d]}" for d in DISPOSITIONS),
        ]
        for stage in self.stages:
            cost = stage.cost_per_defect_caught_s
            cost_text = "n/a" if cost is None else f"{cost * 1e3:.2f} ms"
            lines.append(
                f"  {stage.name:<11} tested {stage.tested:5d}  "
                f"caught {stage.caught:4d}  false-fail {stage.false_fails}  "
                f"cost/defect {cost_text}"
            )
        lines.append(
            f"  escapes: {len(self.escapes)} "
            f"(rate {self.escape_rate:.6f}) — must be 0"
        )
        return "\n".join(lines)


__all__ = [
    "DISPOSITIONS",
    "LotReport",
    "OracleResult",
    "StageReport",
    "UnitRecord",
]
