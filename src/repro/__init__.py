"""repro — behavioural reproduction of the DATE'97 integrated fluxgate compass.

Tangelder, Diemel, Kerkhoff, *Smart Sensor System Application: An
Integrated Compass*, ED&TC/DATE 1997.

The package mirrors the paper's system decomposition:

* :mod:`repro.physics` — earth-field, core magnetics and noise substrates,
* :mod:`repro.sensors` — micro-machined fluxgate models (§2.1),
* :mod:`repro.analog` — the analogue front-end (§3),
* :mod:`repro.digital` — counter, CORDIC, control, watch, display (§4),
* :mod:`repro.core` — the integrated compass plus accuracy/power analysis,
* :mod:`repro.soc` — Sea-of-Gates array and MCM resource models (§2),
* :mod:`repro.btest` — IEEE 1149.1 boundary-scan test structures [Oli96],
* :mod:`repro.faults` — fault injection, chaos soak and health campaigns,
* :mod:`repro.service` — the resilient replicated heading service,
* :mod:`repro.scenario` — environment & mission scenarios with a
  guarded compensation chain and per-scenario fault campaigns,
* :mod:`repro.fleet` — the async sharded heading fleet (admission
  control, load shedding, brownout, deterministic overload soak),
* :mod:`repro.simulation` — the mixed-signal simulation engine (§5).

Quickstart::

    from repro import IntegratedCompass
    compass = IntegratedCompass()
    measurement = compass.measure_heading(true_heading_deg=123.0)
    print(measurement.heading_deg, measurement.cardinal)
"""

from .core.compass import CompassConfig, IntegratedCompass
from .core.heading import HeadingMeasurement, compass_point
from .core.health import HealthConfig, HealthReport
from .fleet import FleetConfig, FleetResponse, HeadingFleet
from .observe import Observability
from .service import HeadingService, ServiceConfig, ServiceVerdict
from .errors import (
    CalibrationError,
    CircuitOpenError,
    ComplianceError,
    ConfigurationError,
    DegradedOperationError,
    EnvelopeError,
    FaultError,
    OverloadError,
    ProtocolError,
    QuorumError,
    ReproError,
    ResourceError,
    ScenarioError,
    ServiceError,
    SLOViolationError,
)

__version__ = "1.0.0"

__all__ = [
    "CalibrationError",
    "CircuitOpenError",
    "CompassConfig",
    "ComplianceError",
    "ConfigurationError",
    "DegradedOperationError",
    "EnvelopeError",
    "FaultError",
    "FleetConfig",
    "FleetResponse",
    "HeadingFleet",
    "HeadingMeasurement",
    "HeadingService",
    "HealthConfig",
    "HealthReport",
    "IntegratedCompass",
    "Observability",
    "OverloadError",
    "ProtocolError",
    "QuorumError",
    "ReproError",
    "ResourceError",
    "SLOViolationError",
    "ScenarioError",
    "ServiceConfig",
    "ServiceError",
    "ServiceVerdict",
    "compass_point",
    "__version__",
]
