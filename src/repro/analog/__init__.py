"""Analogue front-end: excitation, amplification, pulse-position detection."""

from .comparator import Comparator, ComparatorParameters, PickupAmplifier
from .excitation import ExcitationSettings, ExcitationSource
from .frontend import AnalogFrontEnd, ChannelMeasurement, FrontEndConfig
from .mux import ChannelSlot, MeasurementSchedule, SensorMultiplexer
from .offset_loop import OffsetServo, ServoHistory, ServoSettings, predicted_residual
from .pulse_detector import (
    DetectorOutput,
    DetectorParameters,
    LogicEdge,
    PulsePositionDetector,
)
from .vi_converter import VIConverter, VIConverterParameters
from .waveform import OscillatorParameters, TriangularWaveformGenerator

__all__ = [
    "AnalogFrontEnd",
    "ChannelMeasurement",
    "ChannelSlot",
    "Comparator",
    "ComparatorParameters",
    "DetectorOutput",
    "DetectorParameters",
    "ExcitationSettings",
    "ExcitationSource",
    "FrontEndConfig",
    "LogicEdge",
    "MeasurementSchedule",
    "OffsetServo",
    "ServoHistory",
    "ServoSettings",
    "predicted_residual",
    "OscillatorParameters",
    "PickupAmplifier",
    "PulsePositionDetector",
    "SensorMultiplexer",
    "TriangularWaveformGenerator",
    "VIConverter",
    "VIConverterParameters",
]
