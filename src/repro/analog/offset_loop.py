"""The DC-offset correction loop as a dynamic servo (§3.1).

"The linearity of the waveform is not very essential but the dc-offset
is, and is therefore corrected by measuring the average of the
excitation current."  :class:`~repro.analog.waveform.OscillatorParameters`
models the *settled* loop as a static gain division; this module models
the loop itself — a discrete-time integrator servo:

    trim[n+1] = trim[n] + k · measured_average[n]
    residual[n] = raw_offset − trim[n]          (k = integrator gain)

which converges as ``residual[n] = raw_offset · (1 − k)ⁿ``:

* ``0 < k < 1`` — smooth exponential convergence,
* ``k = 1`` — deadbeat (one-period) correction,
* ``1 < k < 2`` — ringing but stable,
* ``k ≥ 2`` — unstable (the classic discrete-integrator bound).

The measurement path can be quantised (the control logic measures the
average with the same counter infrastructure it already has), which
leaves a steady-state bounded limit cycle of ± half an LSB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ServoSettings:
    """Offset-servo configuration.

    Attributes
    ----------
    gain:
        Integrator gain ``k`` per correction period.
    quantisation_step:
        Resolution of the average measurement [same unit as the offset];
        0 disables quantisation.
    trim_limit:
        Saturation of the trim DAC (± this value); 0 disables the limit.
    """

    gain: float = 0.5
    quantisation_step: float = 0.0
    trim_limit: float = 0.0

    def __post_init__(self) -> None:
        if self.gain <= 0.0:
            raise ConfigurationError("servo gain must be positive")
        if self.quantisation_step < 0.0 or self.trim_limit < 0.0:
            raise ConfigurationError("quantisation and limit must be >= 0")

    @property
    def is_stable(self) -> bool:
        """The discrete-integrator stability criterion ``k < 2``."""
        return self.gain < 2.0


@dataclass
class ServoHistory:
    """Per-period record of a servo run."""

    residuals: List[float]
    trims: List[float]

    @property
    def final_residual(self) -> float:
        if not self.residuals:
            raise ConfigurationError("servo has not run")
        return self.residuals[-1]

    def settling_periods(self, tolerance: float) -> Optional[int]:
        """First period after which |residual| stays within tolerance.

        Returns ``None`` if it never settles within the recorded run.
        """
        if tolerance <= 0.0:
            raise ConfigurationError("tolerance must be positive")
        for start in range(len(self.residuals)):
            if all(abs(r) <= tolerance for r in self.residuals[start:]):
                return start
        return None


class OffsetServo:
    """The integrating offset-correction loop."""

    def __init__(self, settings: ServoSettings = ServoSettings()):
        self.settings = settings
        self.trim = 0.0

    def _measure(self, residual: float) -> float:
        step = self.settings.quantisation_step
        if step <= 0.0:
            return residual
        return round(residual / step) * step

    def _clamp(self, trim: float) -> float:
        limit = self.settings.trim_limit
        if limit <= 0.0:
            return trim
        return max(-limit, min(limit, trim))

    def step(self, raw_offset: float) -> float:
        """One correction period; returns the residual offset after it."""
        residual = raw_offset - self.trim
        measured = self._measure(residual)
        self.trim = self._clamp(self.trim + self.settings.gain * measured)
        return raw_offset - self.trim

    def run(self, raw_offset: float, periods: int) -> ServoHistory:
        """Run the loop for a number of correction periods."""
        if periods < 1:
            raise ConfigurationError("need at least one period")
        residuals, trims = [], []
        for _ in range(periods):
            residuals.append(self.step(raw_offset))
            trims.append(self.trim)
        return ServoHistory(residuals, trims)

    def reset(self) -> None:
        self.trim = 0.0


def predicted_residual(raw_offset: float, gain: float, periods: int) -> float:
    """Analytic residual of the ideal (unquantised) loop after n periods."""
    if periods < 0:
        raise ConfigurationError("periods must be non-negative")
    return raw_offset * (1.0 - gain) ** periods
