"""Closed-form pulse-timing fast path for the analog front-end.

The stepped engine simulates ~37k samples per measurement to find four
numbers per excitation period: the comparator release times that set and
reset the SR latch.  For a *noiseless* budget and the anhysteretic tanh
core those times are analytically computable — the §2.1 arithmetic
(``D = 1/2 + H_ext/(2·Ha)``) taken to edge-time precision:

* The triangular excitation maps time linearly to core field on each
  half-period ramp: ``H(t) = Ha·v_norm(t) + H0`` with
  ``H0 = H_offset + H_ext``, slewing at ``s = 2·Ha/(r·T)`` (rising) and
  ``2·Ha/((1−r)·T)`` (falling).
* The pickup pulse is the magnetisation law's differential permeability
  ridden along that ramp: ``y(t) = G·N_p·A·µ(H(t))·dH/dt`` with
  ``µ(H) = (Bs/HK)·sech²(H/HK)`` for the tanh core.
* A comparator level ``L`` therefore corresponds to a *field* crossing:
  ``µ(H) = L/(G·N_p·A·s)``, i.e. ``H = ±HK·arccosh(1/√q)`` with
  ``q = L·HK/(G·N_p·A·s·Bs)`` — invertible whenever ``0 < q < 1``
  (the pulse actually reaches the level).
* The release crossing (the trailing flank, the edge the SR latch uses)
  happens past the pulse centre: ``H = +H_cross`` on the rising ramp,
  ``H = −H_cross`` on the falling ramp.  Inverting the ramp gives the
  crossing time; the single-pole amplifier adds its discrete-filter ramp
  delay ``τ_d = α·Δt/(1−α)`` plus a curvature correction
  ``−(Var/2)·w''/w'`` (see :func:`_curvature_shift`), and the comparator
  its propagation delay.

The solver emits the same :class:`~repro.analog.pulse_detector
.DetectorOutput` edge stream the counter consumes — no sampled waveform
is ever materialised.  It *refuses* (returns ``None``) whenever the
closed form would not reproduce the stepped engine: noise in the budget,
a non-tanh core, soft-start or nonlinear excitation, an armed
analog-layer fault injector, or an external field that pushes a crossing
out of the guarded validity envelope.  The caller then silently runs the
stepped engine, so enabling the fast path can never change *what* is
measured — only how fast (timing agrees to well below one grid tick;
see ``docs/fastpath.md`` for the error budget).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..physics.magnetics import TanhCore
from ..simulation.engine import TimeGrid
from .pulse_detector import DetectorOutput, LogicEdge

#: Refuse when the comparator level is above this fraction of the pulse
#: peak: near the peak the level crossing becomes tangent and the stepped
#: engine's sample-grid detection of it is no longer sub-tick stable.
PEAK_MARGIN = 0.98

#: Guard distance between a crossing and a ramp corner, in amplifier
#: time constants — inside this zone the pure-delay model of the filter
#: breaks down (the response curls around the corner).
GUARD_FILTER_TAUS = 8.0

#: Additional guard in grid samples, so the stepped engine always has
#: bracketing samples strictly inside the ramp to interpolate between.
GUARD_GRID_SAMPLES = 4.0

#: Require the pulse field-scale time ``HK/s`` to exceed this many
#: amplifier time constants; a slower amplifier reshapes the pulse
#: instead of merely delaying it and the algebra stops being exact.
MIN_BANDWIDTH_RATIO = 20.0


@dataclass
class FastPathStats:
    """Bookkeeping of fast-path routing decisions on one front end."""

    attempted: int = 0
    used: int = 0
    fallbacks: Dict[str, int] = field(default_factory=dict)

    def record_fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    @property
    def fallback_total(self) -> int:
        return sum(self.fallbacks.values())


def _overridden(obj, *method_names: str) -> bool:
    """True when any of ``method_names`` is shadowed on the *instance*.

    Methods live on the class; the fault injectors in
    :mod:`repro.faults.model` arm themselves by planting a wrapper in the
    instance ``__dict__``.  An armed analog-layer fault therefore shows
    up here — and must force the stepped engine, which is what the fault
    actually wraps.
    """
    d = vars(obj)
    return any(name in d for name in method_names)


def ineligibility_reason(front_end, sensor) -> Optional[str]:
    """Device-level reasons the closed form cannot be used (or ``None``).

    Field-dependent (per-measurement) validity is checked separately by
    the solver itself; this covers configuration and armed faults.
    """
    if not front_end.amplifier.budget.is_noiseless:
        return "noise-budget"
    if type(sensor.core) is not TanhCore:
        return "core-model"
    excitation = front_end.excitation
    if excitation.settings.soft_start_periods > 0.0:
        return "soft-start"
    for converter in excitation.converters.values():
        cp = converter.params
        if not cp.linearised and cp.cubic_distortion != 0.0:
            return "nonlinear-converter"
    detector = front_end.detector
    if (
        _overridden(sensor, "simulate", "simulate_batch")
        or _overridden(front_end.amplifier, "amplify", "amplify_batch")
        or _overridden(detector, "detect", "detect_batch")
        or _overridden(
            detector.comparator_positive, "falling_edges", "falling_edges_batch"
        )
        or _overridden(
            detector.comparator_negative, "falling_edges", "falling_edges_batch"
        )
        or _overridden(excitation, "current")
        or _overridden(excitation.oscillator, "generate")
        or any(_overridden(c, "drive") for c in excitation.converters.values())
    ):
        return "armed-fault"
    return None


def _filter_delay_tau_var2(amplifier, dt: float) -> tuple:
    """Delay, time constant and half-variance of the discrete filter.

    Mirrors :meth:`PickupAmplifier._lowpass`: no filtering when the
    bandwidth is ``None`` or at/above Nyquist of the grid.  The filter's
    impulse response ``(1−α)·α^k`` has mean delay ``α·Δt/(1−α)`` (exact
    for a ramp) and variance ``α·Δt²/(1−α)²``; half the variance is the
    coefficient of the curvature correction to a level-crossing time:
    ``y_f(t) ≈ y(t−τ_d) + (Var/2)·y''``, so the crossing shifts by an
    extra ``−(Var/2)·y''/y'``.
    """
    sample_rate = 1.0 / dt
    bandwidth = amplifier.bandwidth_hz
    if bandwidth is None or bandwidth >= sample_rate / 2.0:
        return 0.0, 0.0, 0.0
    alpha = math.exp(-2.0 * math.pi * bandwidth / sample_rate)
    one_minus = 1.0 - alpha
    delay = alpha * dt / one_minus
    var2 = 0.5 * alpha * dt * dt / (one_minus * one_minus)
    return delay, 1.0 / (2.0 * math.pi * bandwidth), var2


def _crossing(
    level: float, volts_per_mu: float, mu_max: float, hk: float
) -> Optional[tuple]:
    """Invert ``µ(H) = level/volts_per_mu`` on the tanh core, or ``None``.

    Returns ``(H_cross, q)``: the positive crossing field
    ``HK·arccosh(1/√q)`` and the level-to-peak ratio ``q = sech²`` at
    the crossing, when the pulse comfortably reaches the level
    (``0 < q ≤ PEAK_MARGIN``).
    """
    if volts_per_mu <= 0.0:
        return None
    q = level / (volts_per_mu * mu_max)
    if q <= 0.0 or q > PEAK_MARGIN:
        return None
    return hk * math.acosh(1.0 / math.sqrt(q)), q


def _curvature_shift(var2: float, slew: float, hk: float, q: float) -> float:
    """Second-order filter correction to a release-crossing time [s].

    On the pulse's trailing flank ``w''/w' = (s/HK)·(sech² − 2·tanh²)/
    tanh``; with ``sech² = q`` at the crossing this is
    ``(s/HK)·(3q − 2)/√(1−q)``, and the crossing shifts by
    ``−(Var/2)·w''/w'`` relative to the pure-delay model.
    """
    return var2 * (slew / hk) * (2.0 - 3.0 * q) / math.sqrt(1.0 - q)


def solve_channel_batch(
    front_end,
    sensor,
    channel: str,
    h_external: np.ndarray,
    grid: TimeGrid,
) -> Optional[List[DetectorOutput]]:
    """Closed-form detector outputs for a batch of external fields.

    Returns one :class:`DetectorOutput` per entry of ``h_external`` —
    equal to the stepped engine's output to well below one grid tick —
    or ``None`` when *any* entry leaves the validity envelope (the
    caller falls back to the stepped engine for the whole batch, keeping
    routing deterministic and trivially diffable).

    ``ineligibility_reason`` must have returned ``None`` first; this
    function only adds the geometry- and field-dependent checks.
    """
    excitation = front_end.excitation
    osc = excitation.oscillator.params
    # The compass builds its grid on the oscillator's own frequency; a
    # grid on any other clock would sample a non-periodic pattern.
    if grid.t_start != 0.0 or grid.frequency_hz != osc.frequency_hz:
        return None
    converter = excitation.converters[channel]
    params = sensor.params
    core_params = sensor.core.params

    gm = converter.params.transconductance
    # Stay clear of the compliance limit: at the margin the stepped
    # engine's sampled-peak check decides, so let it.
    peak_volts = abs(osc.amplitude) + abs(osc.residual_offset)
    if (
        params.series_resistance * abs(gm) * peak_volts
        >= converter.params.compliance_voltage
    ):
        return None

    coil = params.excitation_coil_constant
    h_amp = coil * gm * osc.amplitude
    if h_amp <= 0.0:
        return None
    h_offset = coil * gm * osc.residual_offset

    period = 1.0 / osc.frequency_hz
    rise = 0.5 * (1.0 + osc.slope_asymmetry)
    slew_rise = 2.0 * h_amp / (rise * period)
    slew_fall = 2.0 * h_amp / ((1.0 - rise) * period)

    bs = core_params.saturation_flux_density
    hk = core_params.anisotropy_field
    mu_max = bs / hk
    scale = front_end.amplifier.gain * params.pickup_turns * params.core_area
    delay, tau, var2 = _filter_delay_tau_var2(front_end.amplifier, grid.dt)
    if tau > 0.0 and (
        hk / slew_rise < MIN_BANDWIDTH_RATIO * tau
        or hk / slew_fall < MIN_BANDWIDTH_RATIO * tau
    ):
        return None

    pos = front_end.detector.comparator_positive.params
    neg = front_end.detector.comparator_negative.params
    release_rise = _crossing(pos.release_level, scale * slew_rise, mu_max, hk)
    trip_rise = _crossing(pos.trip_level, scale * slew_rise, mu_max, hk)
    release_fall = _crossing(neg.release_level, scale * slew_fall, mu_max, hk)
    trip_fall = _crossing(neg.trip_level, scale * slew_fall, mu_max, hk)
    if None in (release_rise, trip_rise, release_fall, trip_fall):
        return None
    h_release_rise, q_rise = release_rise
    h_release_fall, q_fall = release_fall
    h_trip_rise = trip_rise[0]
    h_trip_fall = trip_fall[0]
    shift_rise = _curvature_shift(var2, slew_rise, hk, q_rise)
    shift_fall = _curvature_shift(var2, slew_fall, hk, q_fall)

    guard_rise = (GUARD_FILTER_TAUS * tau + GUARD_GRID_SAMPLES * grid.dt) * slew_rise
    guard_fall = (GUARD_FILTER_TAUS * tau + GUARD_GRID_SAMPLES * grid.dt) * slew_fall
    h0 = np.asarray(h_external, dtype=float) + h_offset
    # Both crossings of both ramps must sit strictly inside the guarded
    # ramp: trip after the corner, release before the apex.
    valid = (
        (h0 <= h_amp - h_trip_rise - guard_rise)
        & (h0 >= h_release_rise - h_amp + guard_rise)
        & (h0 >= h_trip_fall - h_amp + guard_fall)
        & (h0 <= h_amp - h_release_fall - guard_fall)
    )
    if not bool(np.all(valid)):
        return None

    # Ramp inversion: normalised triangle value at the crossing → time.
    v_set = (h_release_rise - h0) / h_amp
    v_reset = (-h_release_fall - h0) / h_amp
    periods = np.arange(grid.n_periods, dtype=float) * period
    t_set = (
        periods[None, :]
        + (v_set[:, None] + 1.0) * (0.5 * rise * period)
        + (delay + shift_rise + pos.delay)
    )
    t_reset = (
        periods[None, :]
        + (rise + (1.0 - v_reset[:, None]) * 0.5 * (1.0 - rise)) * period
        + (delay + shift_fall + neg.delay)
    )
    window = (grid.t_start, grid.t_start + float(grid.n_samples - 1) * grid.dt)
    outputs: List[DetectorOutput] = []
    for row in range(h0.size):
        edges: List[LogicEdge] = []
        for j in range(grid.n_periods):
            edges.append(LogicEdge(float(t_set[row, j]), 1))
            edges.append(LogicEdge(float(t_reset[row, j]), 0))
        outputs.append(
            DetectorOutput(edges=tuple(edges), initial_value=0, window=window)
        )
    return outputs


def solve_channel(
    front_end,
    sensor,
    channel: str,
    h_external: float,
    grid: TimeGrid,
) -> Optional[DetectorOutput]:
    """Scalar wrapper around :func:`solve_channel_batch` (one field)."""
    outputs = solve_channel_batch(
        front_end, sensor, channel, np.array([h_external], dtype=float), grid
    )
    return None if outputs is None else outputs[0]
