"""The pulse-position detector (§3.2 of the paper).

"Their position in time with respect to each other is measured by
detecting both the falling edge of the positive pulse and the rising edge
of the falling pulse.  The pulse position detector processes a digital 1
after the falling edge of the positive pulse, which changes to a digital 0
after the rising edge of the negative pulse, and vice versa."

Concretely: two comparators watch the amplified pickup voltage —

* comparator P trips while the voltage exceeds ``+V_th`` (positive pulse),
* comparator N trips while the voltage is below ``−V_th`` (negative pulse)

— and an SR latch is **set** when P releases (the positive pulse's falling
edge) and **reset** when N releases (the negative pulse's recovering,
i.e. rising, edge).  Using the *trailing* edge of both pulses makes the
latch duty cycle equal to the pulse-centre spacing independent of pulse
width, which is why "the fraction of time in a period at which the output
of the pulse detector is high is a direct indication of the field
component measured" and no ADC is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..simulation.signals import Trace
from .comparator import Comparator, ComparatorParameters


@dataclass(frozen=True)
class LogicEdge:
    """One transition of the detector output."""

    time: float
    value: int  # 1 after a set event, 0 after a reset event


@dataclass
class DetectorOutput:
    """The detector's digital-compatible output signal.

    Attributes
    ----------
    edges:
        Time-ordered output transitions.
    initial_value:
        Latch state before the first edge.
    window:
        (start, end) of the observation interval [s].
    """

    edges: Tuple[LogicEdge, ...]
    initial_value: int
    window: Tuple[float, float]

    def value_at(self, time: float) -> int:
        """Latch state at an arbitrary instant."""
        value = self.initial_value
        for edge in self.edges:
            if edge.time > time:
                break
            value = edge.value
        return value

    def duty_cycle(self) -> float:
        """Exact fraction of the window spent high.

        This is the quantity §3.2 calls "a direct indication of the field
        component measured"; the hardware approximates it with the
        up-down counter.
        """
        t_start, t_end = self.window
        if t_end <= t_start:
            raise ConfigurationError("empty observation window")
        high_time = 0.0
        value = self.initial_value
        t_prev = t_start
        for edge in self.edges:
            t_clamped = min(max(edge.time, t_start), t_end)
            if value == 1:
                high_time += t_clamped - t_prev
            t_prev = t_clamped
            value = edge.value
        if value == 1:
            high_time += t_end - t_prev
        return high_time / (t_end - t_start)

    def as_trace(self, n_samples: int = 2048) -> Trace:
        """Render the latch output as a sampled logic trace (for plotting)."""
        t_start, t_end = self.window
        t = np.linspace(t_start, t_end, n_samples)
        v = np.empty_like(t)
        value = self.initial_value
        edge_iter = iter(self.edges)
        edge = next(edge_iter, None)
        for i, ti in enumerate(t):
            while edge is not None and edge.time <= ti:
                value = edge.value
                edge = next(edge_iter, None)
            v[i] = float(value)
        return Trace(t, v)


@dataclass(frozen=True)
class DetectorParameters:
    """Configuration of the pulse-position detector.

    Attributes
    ----------
    threshold:
        Comparator threshold [V], referred to the amplifier output.  The
        default is ~40 % of the ideal-target pulse peak: high enough that
        the comparator releases close to the pulse centre (so the pulse
        tail completes within the excitation ramp even at the 65 µT field
        maximum), low enough for ample noise margin.
    hysteresis:
        Comparator hysteresis [V].  Sized at ~6× the band-limited noise
        at the amplifier output so noise dips during a pulse flank cannot
        cause early release (the classic Schmitt-trigger sizing rule).
    comparator_delay:
        Propagation delay of both comparators [s].
    offset:
        Static input-referred offset of both comparators [V], referred to
        the amplifier output.  A common-mode shift of both thresholds —
        the dominant untrimmed imperfection of a Sea-of-Gates comparator.
    """

    threshold: float = 0.10
    hysteresis: float = 0.040
    comparator_delay: float = 50e-9
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.threshold <= 0.0:
            raise ConfigurationError("detector threshold must be positive")


class PulsePositionDetector:
    """Comparator pair + SR latch converting pickup pulses to a logic signal."""

    def __init__(self, params: Optional[DetectorParameters] = None):
        params = DetectorParameters() if params is None else params
        self.params = params
        p = params
        self.comparator_positive = Comparator(
            ComparatorParameters(
                threshold=p.threshold,
                hysteresis=p.hysteresis,
                offset=p.offset,
                delay=p.comparator_delay,
            )
        )
        # The negative comparator watches -v with the same threshold.
        self.comparator_negative = Comparator(
            ComparatorParameters(
                threshold=p.threshold,
                hysteresis=p.hysteresis,
                offset=p.offset,
                delay=p.comparator_delay,
            )
        )

    def detect(self, amplified_pickup: Trace) -> DetectorOutput:
        """Run the detector over one amplified pickup trace.

        Raises
        ------
        ConfigurationError
            If no pulses cross the comparator thresholds (core not
            saturated, threshold too high, or gain too low) — the
            condition under which the measured Kaw95 sensor fails.
        """
        inverted = amplified_pickup.scaled(-1.0)
        set_times = self.comparator_positive.falling_edges(amplified_pickup)
        reset_times = self.comparator_negative.falling_edges(inverted)
        window = (float(amplified_pickup.t[0]), float(amplified_pickup.t[-1]))
        return self._assemble(set_times, reset_times, window)

    def _assemble(
        self,
        set_times: np.ndarray,
        reset_times: np.ndarray,
        window: Tuple[float, float],
    ) -> DetectorOutput:
        """SR-latch the comparator edge streams into a detector output."""
        if set_times.size == 0 and reset_times.size == 0:
            raise ConfigurationError(
                "pulse-position detector saw no pulses above "
                f"{self.params.threshold} V"
            )

        events: List[LogicEdge] = sorted(
            [LogicEdge(float(t), 1) for t in set_times]
            + [LogicEdge(float(t), 0) for t in reset_times],
            key=lambda e: e.time,
        )
        # SR-latch semantics: repeated sets (or resets) are idempotent.
        deduped: List[LogicEdge] = []
        last_value = None
        for event in events:
            if event.value != last_value:
                deduped.append(event)
                last_value = event.value
        # Before the first edge, the latch held the opposite of that edge.
        initial = 1 - deduped[0].value if deduped else 0
        return DetectorOutput(
            edges=tuple(deduped),
            initial_value=initial,
            window=window,
        )

    def detect_batch(
        self, amplified: np.ndarray, times: np.ndarray
    ) -> List[DetectorOutput]:
        """Run the detector over ``(N, n_samples)`` amplified waveforms.

        All rows share the ``times`` axis; the outputs are bit-identical
        to running :meth:`detect` on each row separately.  The negative
        comparator is evaluated on the negated thresholds instead of a
        materialised ``-amplified`` matrix.
        """
        sets = self.comparator_positive.falling_edges_batch(amplified, times)
        resets = self.comparator_negative.falling_edges_batch(
            amplified, times, negate=True
        )
        window = (float(times[0]), float(times[-1]))
        return [
            self._assemble(set_times, reset_times, window)
            for set_times, reset_times in zip(sets, resets)
        ]

    @staticmethod
    def hardware_cost() -> dict:
        """Analogue hardware of this readout (for the PPOS1 comparison).

        §3.2: "Since the analogue output consists only of one digital
        compatible signal, a complicated AD-converter is not necessary."
        """
        return {
            "comparator_transistors": 2 * 20,
            "latch_transistors": 8,
            "needs_adc": False,
            "needs_precision_references": False,
        }
