"""Sensor multiplexing (§2 and §4).

"The system uses a multiplexing technique by exciting one sensor at a
time.  This reduces both momental power consumption and chip area since
only one oscillator is needed."  The digital control logic "controls the
multiplexing of the two sensors" (§4).

The multiplexer here is a schedule: which channel is excited during which
excitation periods, with optional settling periods after each switch
(discarded by the counter, since the first period after a channel switch
contains the oscillator's restart transient).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ChannelSlot:
    """One multiplexer time slot.

    Attributes
    ----------
    channel:
        ``"x"`` or ``"y"``.
    settle_periods:
        Excitation periods at the start of the slot that the counter must
        ignore.
    count_periods:
        Excitation periods over which the counter integrates.
    """

    channel: str
    settle_periods: int
    count_periods: int

    def __post_init__(self) -> None:
        if self.channel not in ("x", "y"):
            raise ConfigurationError(f"unknown channel {self.channel!r}")
        if self.settle_periods < 0 or self.count_periods < 1:
            raise ConfigurationError("slot period counts invalid")

    @property
    def total_periods(self) -> int:
        return self.settle_periods + self.count_periods


@dataclass(frozen=True)
class MeasurementSchedule:
    """A full x-then-y measurement cycle.

    Attributes
    ----------
    count_periods:
        Integration periods per channel.
    settle_periods:
        Discarded settling periods after each channel switch.
    """

    count_periods: int = 8
    settle_periods: int = 1

    def __post_init__(self) -> None:
        if self.count_periods < 1:
            raise ConfigurationError("need at least one counting period")
        if self.settle_periods < 0:
            raise ConfigurationError("settle periods must be non-negative")

    def slots(self) -> Tuple[ChannelSlot, ChannelSlot]:
        return (
            ChannelSlot("x", self.settle_periods, self.count_periods),
            ChannelSlot("y", self.settle_periods, self.count_periods),
        )

    @property
    def total_periods(self) -> int:
        """Excitation periods per complete heading measurement."""
        return sum(slot.total_periods for slot in self.slots())

    def measurement_time(self, excitation_frequency_hz: float) -> float:
        """Wall-clock time of one heading measurement [s]."""
        if excitation_frequency_hz <= 0.0:
            raise ConfigurationError("frequency must be positive")
        return self.total_periods / excitation_frequency_hz

    def update_rate_hz(self, excitation_frequency_hz: float) -> float:
        """Heading update rate [Hz]."""
        return 1.0 / self.measurement_time(excitation_frequency_hz)


class SensorMultiplexer:
    """Steers the single oscillator to one sensor channel at a time."""

    def __init__(self, schedule: MeasurementSchedule = MeasurementSchedule()):
        self.schedule = schedule
        self._active: str = "x"

    @property
    def active_channel(self) -> str:
        return self._active

    def select(self, channel: str) -> None:
        if channel not in ("x", "y"):
            raise ConfigurationError(f"unknown channel {channel!r}")
        self._active = channel

    def cycle(self) -> Iterator[ChannelSlot]:
        """Iterate the slots of one measurement, switching as we go."""
        for slot in self.schedule.slots():
            self.select(slot.channel)
            yield slot

    def duty_of_channel(self, channel: str) -> float:
        """Fraction of a measurement cycle a channel's converter is live.

        Feeds the power model: with multiplexing each V-I converter runs
        only ~half the time, which is the §2 "momental power" saving.
        """
        if channel not in ("x", "y"):
            raise ConfigurationError(f"unknown channel {channel!r}")
        slot = {s.channel: s for s in self.schedule.slots()}[channel]
        return slot.total_periods / self.schedule.total_periods
