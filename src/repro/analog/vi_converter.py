"""Voltage-to-current converters driving the fluxgate excitation coils (§3.1).

"The current source consists of a triangular waveform generator or
oscillator and two VI-converters to drive the two sensors."  Relevant
hardware constraints from the paper, all modelled here:

* 12 mA peak-to-peak output into the sensor;
* "The sensors have a high series resistance, which requires the use of a
  balanced differential output" — the output swing available is the supply
  minus two saturation headrooms, shared differentially;
* "With the supply voltage at 5 Volt, sensors with a resistance as high as
  800 Ω can be driven" — which pins the headroom at 0.1 V per side
  (5 V − 2·0.1 V = 4.8 V = 6 mA · 800 Ω);
* "The resistive character of the sensors is used to linearise the
  excitation current sources" — an un-linearised converter has a
  compressive cubic term; driving a resistive load closes a degeneration
  loop around it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ComplianceError, ConfigurationError
from ..simulation.signals import Trace
from ..units import SUPPLY_VOLTAGE


@dataclass(frozen=True)
class VIConverterParameters:
    """Electrical parameters of one V-I converter.

    Attributes
    ----------
    transconductance:
        Output current per input volt [A/V].
    supply_voltage:
        Rail-to-rail supply [V].
    headroom:
        Output-stage saturation voltage per side [V].
    cubic_distortion:
        Relative third-order compression at full scale when the
        resistive-load linearisation is not active.
    linearised:
        Whether the resistive-sensor degeneration loop is closed (§3.1).
    """

    transconductance: float = 6.0e-3
    supply_voltage: float = SUPPLY_VOLTAGE
    headroom: float = 0.1
    cubic_distortion: float = 0.05
    linearised: bool = True

    def __post_init__(self) -> None:
        if self.transconductance <= 0.0:
            raise ConfigurationError("transconductance must be positive")
        if self.supply_voltage <= 0.0 or self.headroom < 0.0:
            raise ConfigurationError("supply and headroom must be physical")
        if self.supply_voltage <= 2.0 * self.headroom:
            raise ConfigurationError("no output swing left after headroom")
        if not 0.0 <= self.cubic_distortion < 1.0:
            raise ConfigurationError("cubic distortion must be in [0, 1)")

    @property
    def compliance_voltage(self) -> float:
        """Differential output swing available to the load [V]."""
        return self.supply_voltage - 2.0 * self.headroom

    def max_load_resistance(self, current_amplitude: float) -> float:
        """Largest sensor resistance drivable at a given current [Ω]."""
        if current_amplitude <= 0.0:
            raise ConfigurationError("current amplitude must be positive")
        return self.compliance_voltage / current_amplitude


class VIConverter:
    """One balanced-differential V-I converter channel."""

    def __init__(self, params: VIConverterParameters = VIConverterParameters()):
        self.params = params
        self._enabled = True

    # -- power gating (§4: "enables the analogue section ... only when
    # they are needed") ---------------------------------------------------

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    @property
    def enabled(self) -> bool:
        return self._enabled

    # -- signal path -------------------------------------------------------

    def check_compliance(self, load_resistance: float, current_amplitude: float) -> None:
        """Raise :class:`ComplianceError` if the load cannot be driven."""
        if load_resistance < 0.0:
            raise ConfigurationError("load resistance must be non-negative")
        required = load_resistance * current_amplitude
        if required > self.params.compliance_voltage:
            raise ComplianceError(
                f"driving {load_resistance:.0f} Ω at {current_amplitude * 1e3:.1f} mA "
                f"needs {required:.2f} V but only "
                f"{self.params.compliance_voltage:.2f} V swing is available "
                f"at {self.params.supply_voltage:.1f} V supply"
            )

    def drive(self, voltage: Trace, load_resistance: float) -> Trace:
        """Convert an input voltage trace to the excitation current [A].

        Raises
        ------
        ComplianceError
            If the requested swing exceeds the differential compliance.
        """
        p = self.params
        if not self._enabled:
            return Trace(voltage.t, np.zeros_like(voltage.v))
        peak_in = float(np.max(np.abs(voltage.v)))
        self.check_compliance(load_resistance, p.transconductance * peak_in)

        i_ideal = voltage.v * p.transconductance
        if p.linearised or p.cubic_distortion == 0.0:
            i_out = i_ideal
        else:
            full_scale = p.transconductance * max(peak_in, 1e-30)
            norm = i_ideal / full_scale
            i_out = i_ideal * (1.0 - p.cubic_distortion * norm**2)
        return Trace(voltage.t, i_out)

    def output_voltage(self, current: Trace, load_resistance: float) -> Trace:
        """Differential voltage appearing across the load [V]."""
        return current.scaled(load_resistance)
