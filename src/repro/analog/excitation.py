"""The complete excitation current source (§3.1).

Composes the triangle oscillator and the two V-I converters into the block
of Figure 1 that feeds the sensors: one oscillator shared by both channels
("only one oscillator is needed" thanks to multiplexing, §2), a converter
per sensor, and the DC-offset correction loop that measures the average of
the excitation current.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..simulation.engine import TimeGrid
from ..simulation.signals import Trace
from ..units import EXCITATION_CURRENT_PP
from .vi_converter import VIConverter, VIConverterParameters
from .waveform import OscillatorParameters, TriangularWaveformGenerator


@dataclass(frozen=True)
class ExcitationSettings:
    """Top-level excitation targets from the paper.

    Attributes
    ----------
    current_pp:
        Target excitation current, peak-to-peak [A] (12 mA, §3.1).
    oscillator:
        Oscillator parameter set.
    converter:
        V-I converter parameter set; its transconductance is derived so
        the oscillator amplitude maps to the target current.
    soft_start_periods:
        Enable transient of the power-gated V-I converter: the output
        envelope ramps from zero over this many excitation periods after
        the channel is enabled.  0 models an ideal instant-on source;
        ~0.5 is realistic for a gated bias network and is the physical
        reason the measurement schedule discards settle periods.
    """

    current_pp: float = EXCITATION_CURRENT_PP
    oscillator: OscillatorParameters = field(default_factory=OscillatorParameters)
    converter: VIConverterParameters = field(default_factory=VIConverterParameters)
    soft_start_periods: float = 0.0

    def __post_init__(self) -> None:
        if self.current_pp <= 0.0:
            raise ConfigurationError("excitation current must be positive")
        if self.soft_start_periods < 0.0:
            raise ConfigurationError("soft start must be non-negative")

    @property
    def current_amplitude(self) -> float:
        """Peak current (half the peak-to-peak) [A]."""
        return self.current_pp / 2.0


class ExcitationSource:
    """Oscillator + two V-I converters + offset correction (Figure 1 left).

    Parameters
    ----------
    settings:
        Electrical targets; the converter transconductance is recomputed
        from the oscillator amplitude so that the triangle's ±amplitude
        maps exactly onto ±current_amplitude.
    """

    CHANNELS = ("x", "y")

    def __init__(self, settings: Optional[ExcitationSettings] = None):
        settings = ExcitationSettings() if settings is None else settings
        gm = settings.current_amplitude / settings.oscillator.amplitude
        converter_params = replace(settings.converter, transconductance=gm)
        self.settings = settings
        self.oscillator = TriangularWaveformGenerator(settings.oscillator)
        self.converters = {name: VIConverter(converter_params) for name in self.CHANNELS}
        self._enabled = True

    # -- power gating --------------------------------------------------------

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False
        for conv in self.converters.values():
            conv.disable()

    @property
    def enabled(self) -> bool:
        return self._enabled

    def select_channel(self, channel: str) -> None:
        """Enable exactly one converter — the multiplexing of §2.

        "The system uses a multiplexing technique by exciting one sensor at
        a time.  This reduces both momental power consumption and chip
        area since only one oscillator is needed."
        """
        if channel not in self.converters:
            raise ConfigurationError(f"unknown channel {channel!r}")
        for name, conv in self.converters.items():
            if name == channel:
                conv.enable()
            else:
                conv.disable()

    # -- signal generation -----------------------------------------------------

    def current(
        self, grid: TimeGrid, channel: str, load_resistance: float
    ) -> Trace:
        """Excitation current delivered to one sensor [A].

        Raises :class:`repro.errors.ComplianceError` if the sensor's series
        resistance exceeds what the 5 V supply can drive (800 Ω at 6 mA).
        """
        if channel not in self.converters:
            raise ConfigurationError(f"unknown channel {channel!r}")
        if not self._enabled:
            triangle = self.oscillator.generate(grid)
            return Trace(triangle.t, triangle.v * 0.0)
        triangle = self.oscillator.generate(grid)
        current = self.converters[channel].drive(triangle, load_resistance)
        soft = self.settings.soft_start_periods
        if soft > 0.0:
            ramp_time = soft / self.oscillator.params.frequency_hz
            envelope = (current.t - current.t[0]) / ramp_time
            envelope = np.clip(envelope, 0.0, 1.0)
            current = Trace(current.t, current.v * envelope)
        return current

    def both_currents(
        self, grid: TimeGrid, load_resistance: float
    ) -> Tuple[Trace, Trace]:
        """Currents of both channels with the current enable state.

        Used by the power bench to contrast multiplexed operation (one
        channel live) with a hypothetical simultaneous-drive design.
        """
        return (
            self.current(grid, "x", load_resistance),
            self.current(grid, "y", load_resistance),
        )

    def measured_offset(self, grid: TimeGrid, channel: str, load_resistance: float) -> float:
        """Average of the excitation current — the §3.1 correction signal [A]."""
        return self.current(grid, channel, load_resistance).mean()
