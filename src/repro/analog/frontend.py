"""The complete analogue front-end of Figure 1.

"The system comprises of a analogue front-end which excites the sensors
with a triangular waveform and converts the resulting sensor output to
measurable digital signals."

One :class:`AnalogFrontEnd` owns the excitation source, the pickup
amplifier and the pulse-position detector, and runs a single-channel
measurement: grid in, detector edges (plus all intermediate waveforms)
out.  The digital back-end never touches anything in this module except
the :class:`~repro.analog.pulse_detector.DetectorOutput` — exactly the
"very simple communication between the analogue and digital part" the
pulse-position method was chosen for (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError
from ..observe import DISABLED, Observer
from ..observe.trace import (
    STAGE_CHANNEL,
    STAGE_COMPARATOR,
    STAGE_EXCITATION,
    STAGE_FASTPATH,
    STAGE_PICKUP,
)
from ..physics.noise import NoiseBudget, NOISELESS
from ..sensors.fluxgate import FluxgateSensor, SensorWaveforms
from ..simulation.engine import TimeGrid
from ..simulation.signals import Trace
from . import fastpath
from .excitation import ExcitationSettings, ExcitationSource
from .fastpath import FastPathStats
from .mux import SensorMultiplexer
from .comparator import PickupAmplifier
from .pulse_detector import DetectorOutput, DetectorParameters, PulsePositionDetector


@dataclass
class ChannelMeasurement:
    """Everything produced by one single-channel front-end run.

    A fast-path solve produces only the detector output — no waveform is
    ever materialised, so ``waveforms`` and ``amplified_pickup`` are
    ``None`` for those measurements.
    """

    channel: str
    waveforms: Optional[SensorWaveforms]
    amplified_pickup: Optional[Trace]
    detector_output: DetectorOutput

    @property
    def duty_cycle(self) -> float:
        return self.detector_output.duty_cycle()


@dataclass(frozen=True)
class FrontEndConfig:
    """Front-end configuration knobs gathered in one place.

    ``fastpath`` opts in to the closed-form pulse-timing solver
    (:mod:`repro.analog.fastpath`): noiseless measurements on the tanh
    core skip the sampled simulation entirely and compute the comparator
    edge times algebraically, falling back to the stepped engine
    whenever the closed form would not apply.  Default off — the stepped
    path stays bit-identical to previous releases.
    """

    excitation: ExcitationSettings = field(default_factory=ExcitationSettings)
    detector: DetectorParameters = field(default_factory=DetectorParameters)
    amplifier_gain: float = 100.0
    noise: NoiseBudget = NOISELESS
    noise_seed: int = 0
    fastpath: bool = False


class AnalogFrontEnd:
    """Excitation source + pickup amplifier + pulse-position detector."""

    def __init__(self, config: Optional[FrontEndConfig] = None):
        config = FrontEndConfig() if config is None else config
        self.config = config
        self.excitation = ExcitationSource(config.excitation)
        self.amplifier = PickupAmplifier(
            gain=config.amplifier_gain,
            budget=config.noise,
            seed=config.noise_seed,
        )
        self.detector = PulsePositionDetector(config.detector)
        self.multiplexer = SensorMultiplexer()
        self._enabled = True
        #: Routing decisions of the opt-in fast path (attempts, uses,
        #: fallback reasons) — a test and debugging aid.
        self.fastpath_stats = FastPathStats()
        #: Set by the owning compass; DISABLED means every span/metric
        #: call below is a no-op costing one attribute check.
        self.observer: Observer = DISABLED

    # -- power gating ---------------------------------------------------------

    def enable(self) -> None:
        self._enabled = True
        self.excitation.enable()

    def disable(self) -> None:
        self._enabled = False
        self.excitation.disable()

    @property
    def enabled(self) -> bool:
        return self._enabled

    # -- measurement ------------------------------------------------------------

    def measure_channel(
        self,
        sensor: FluxgateSensor,
        channel: str,
        h_external: float,
        grid: TimeGrid,
    ) -> ChannelMeasurement:
        """Excite one sensor and detect its pulse positions.

        Parameters
        ----------
        sensor:
            The fluxgate on this channel.
        channel:
            ``"x"`` or ``"y"`` — selects which V-I converter is enabled.
        h_external:
            External field along the sensor axis [A/m].
        grid:
            Excitation time grid (integer number of periods).
        """
        if not self._enabled:
            raise ConfigurationError("front-end is powered down")
        if self.config.fastpath:
            fast = self._measure_channel_fastpath(sensor, channel, h_external, grid)
            if fast is not None:
                return fast
        observer = self.observer
        with observer.span(
            f"{STAGE_CHANNEL}.{channel}", channel=channel, h_external=h_external
        ) as span:
            self.excitation.select_channel(channel)
            self.multiplexer.select(channel)
            with observer.span(STAGE_EXCITATION, channel=channel) as exc_span:
                current = self.excitation.current(
                    grid, channel, sensor.params.series_resistance
                )
                exc_span.set(
                    samples=len(current),
                    frequency_hz=self.excitation.oscillator.params.frequency_hz,
                )
            with observer.span(STAGE_PICKUP, channel=channel):
                waveforms = sensor.simulate(current, h_external)
                amplified = self.amplifier.amplify(waveforms.pickup_voltage)
            with observer.span(STAGE_COMPARATOR, channel=channel) as cmp_span:
                detected = self.detector.detect(amplified)
                cmp_span.set(
                    edges=len(detected.edges), duty=detected.duty_cycle()
                )
            span.set(duty=detected.duty_cycle())
        return ChannelMeasurement(
            channel=channel,
            waveforms=waveforms,
            amplified_pickup=amplified,
            detector_output=detected,
        )

    def _measure_channel_fastpath(
        self,
        sensor: FluxgateSensor,
        channel: str,
        h_external: float,
        grid: TimeGrid,
    ) -> Optional[ChannelMeasurement]:
        """Attempt the closed-form solve; ``None`` routes to the stepped path."""
        stats = self.fastpath_stats
        stats.attempted += 1
        reason = fastpath.ineligibility_reason(self, sensor)
        detected: Optional[DetectorOutput] = None
        if reason is None:
            # Keep the multiplexing/power-gating state identical to a
            # stepped measurement — observable via measured_offset etc.
            self.excitation.select_channel(channel)
            self.multiplexer.select(channel)
            detected = fastpath.solve_channel(self, sensor, channel, h_external, grid)
        if detected is None:
            stats.record_fallback(reason or "validity-envelope")
            return None
        stats.used += 1
        observer = self.observer
        with observer.span(
            f"{STAGE_CHANNEL}.{channel}",
            channel=channel,
            h_external=h_external,
            fastpath=True,
        ) as span:
            with observer.span(STAGE_FASTPATH, channel=channel) as fp_span:
                fp_span.set(edges=len(detected.edges))
            span.set(duty=detected.duty_cycle())
        return ChannelMeasurement(
            channel=channel,
            waveforms=None,
            amplified_pickup=None,
            detector_output=detected,
        )
