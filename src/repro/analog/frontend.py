"""The complete analogue front-end of Figure 1.

"The system comprises of a analogue front-end which excites the sensors
with a triangular waveform and converts the resulting sensor output to
measurable digital signals."

One :class:`AnalogFrontEnd` owns the excitation source, the pickup
amplifier and the pulse-position detector, and runs a single-channel
measurement: grid in, detector edges (plus all intermediate waveforms)
out.  The digital back-end never touches anything in this module except
the :class:`~repro.analog.pulse_detector.DetectorOutput` — exactly the
"very simple communication between the analogue and digital part" the
pulse-position method was chosen for (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..observe import DISABLED, Observer
from ..observe.trace import (
    STAGE_CHANNEL,
    STAGE_COMPARATOR,
    STAGE_EXCITATION,
    STAGE_PICKUP,
)
from ..physics.noise import NoiseBudget, NOISELESS
from ..sensors.fluxgate import FluxgateSensor, SensorWaveforms
from ..simulation.engine import TimeGrid
from ..simulation.signals import Trace
from .excitation import ExcitationSettings, ExcitationSource
from .mux import SensorMultiplexer
from .comparator import PickupAmplifier
from .pulse_detector import DetectorOutput, DetectorParameters, PulsePositionDetector


@dataclass
class ChannelMeasurement:
    """Everything produced by one single-channel front-end run."""

    channel: str
    waveforms: SensorWaveforms
    amplified_pickup: Trace
    detector_output: DetectorOutput

    @property
    def duty_cycle(self) -> float:
        return self.detector_output.duty_cycle()


@dataclass(frozen=True)
class FrontEndConfig:
    """Front-end configuration knobs gathered in one place."""

    excitation: ExcitationSettings = ExcitationSettings()
    detector: DetectorParameters = DetectorParameters()
    amplifier_gain: float = 100.0
    noise: NoiseBudget = NOISELESS
    noise_seed: int = 0


class AnalogFrontEnd:
    """Excitation source + pickup amplifier + pulse-position detector."""

    def __init__(self, config: FrontEndConfig = FrontEndConfig()):
        self.config = config
        self.excitation = ExcitationSource(config.excitation)
        self.amplifier = PickupAmplifier(
            gain=config.amplifier_gain,
            budget=config.noise,
            seed=config.noise_seed,
        )
        self.detector = PulsePositionDetector(config.detector)
        self.multiplexer = SensorMultiplexer()
        self._enabled = True
        #: Set by the owning compass; DISABLED means every span/metric
        #: call below is a no-op costing one attribute check.
        self.observer: Observer = DISABLED

    # -- power gating ---------------------------------------------------------

    def enable(self) -> None:
        self._enabled = True
        self.excitation.enable()

    def disable(self) -> None:
        self._enabled = False
        self.excitation.disable()

    @property
    def enabled(self) -> bool:
        return self._enabled

    # -- measurement ------------------------------------------------------------

    def measure_channel(
        self,
        sensor: FluxgateSensor,
        channel: str,
        h_external: float,
        grid: TimeGrid,
    ) -> ChannelMeasurement:
        """Excite one sensor and detect its pulse positions.

        Parameters
        ----------
        sensor:
            The fluxgate on this channel.
        channel:
            ``"x"`` or ``"y"`` — selects which V-I converter is enabled.
        h_external:
            External field along the sensor axis [A/m].
        grid:
            Excitation time grid (integer number of periods).
        """
        if not self._enabled:
            raise ConfigurationError("front-end is powered down")
        observer = self.observer
        with observer.span(
            f"{STAGE_CHANNEL}.{channel}", channel=channel, h_external=h_external
        ) as span:
            self.excitation.select_channel(channel)
            self.multiplexer.select(channel)
            with observer.span(STAGE_EXCITATION, channel=channel) as exc_span:
                current = self.excitation.current(
                    grid, channel, sensor.params.series_resistance
                )
                exc_span.set(
                    samples=len(current),
                    frequency_hz=self.excitation.oscillator.params.frequency_hz,
                )
            with observer.span(STAGE_PICKUP, channel=channel):
                waveforms = sensor.simulate(current, h_external)
                amplified = self.amplifier.amplify(waveforms.pickup_voltage)
            with observer.span(STAGE_COMPARATOR, channel=channel) as cmp_span:
                detected = self.detector.detect(amplified)
                cmp_span.set(
                    edges=len(detected.edges), duty=detected.duty_cycle()
                )
            span.set(duty=detected.duty_cycle())
        return ChannelMeasurement(
            channel=channel,
            waveforms=waveforms,
            amplified_pickup=amplified,
            detector_output=detected,
        )
