"""Triangular waveform generator (§3.1, Figure 7).

The paper's oscillator is a relaxation type built on the Sea-of-Gates with
a 10 pF metal-metal capacitor; its 12.5 MΩ timing resistor is "realised on
the substrate of the MCM" because the array cannot hold such a value.  The
nominal time constant R·C = 12.5 MΩ · 10 pF = 125 µs is exactly the 8 kHz
period — the paper's component values encode the frequency directly.

"The linearity of the waveform is not very essential but the dc-offset is,
and is therefore corrected by measuring the average of the excitation
current."  The generator therefore models:

* frequency set by R·C with component tolerances,
* a raw DC offset plus a finite-gain correction loop that measures the
  waveform average and subtracts it,
* bounded non-linearity (slew asymmetry), which per the paper may be left
  uncorrected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..simulation.engine import TimeGrid
from ..simulation.signals import Trace
from ..units import OSCILLATOR_CAPACITANCE, OSCILLATOR_RESISTANCE


@dataclass(frozen=True)
class OscillatorParameters:
    """Component values and imperfections of the triangle oscillator.

    Attributes
    ----------
    capacitance:
        On-array timing capacitor [F] (10 pF in Figure 7).
    resistance:
        MCM-substrate timing resistor [Ω] (12.5 MΩ).
    amplitude:
        Peak output voltage of the triangle [V].
    raw_offset:
        Uncorrected DC offset of the waveform [V].
    offset_loop_gain:
        DC gain of the average-measuring correction loop; the residual
        offset is ``raw_offset / (1 + loop_gain)``.  0 disables correction.
    slope_asymmetry:
        Relative difference between rising and falling slopes
        (0.05 = rising 5 % faster); period is preserved.
    """

    capacitance: float = OSCILLATOR_CAPACITANCE
    resistance: float = OSCILLATOR_RESISTANCE
    amplitude: float = 1.0
    raw_offset: float = 0.0
    offset_loop_gain: float = 0.0
    slope_asymmetry: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0 or self.resistance <= 0.0:
            raise ConfigurationError("R and C must be positive")
        if self.amplitude <= 0.0:
            raise ConfigurationError("amplitude must be positive")
        if self.offset_loop_gain < 0.0:
            raise ConfigurationError("loop gain must be non-negative")
        if not -0.9 <= self.slope_asymmetry <= 0.9:
            raise ConfigurationError("slope asymmetry must be within ±0.9")

    @property
    def frequency_hz(self) -> float:
        """Oscillation frequency ``1/(R·C)`` [Hz]."""
        return 1.0 / (self.resistance * self.capacitance)

    @property
    def residual_offset(self) -> float:
        """DC offset after the correction loop [V]."""
        return self.raw_offset / (1.0 + self.offset_loop_gain)


class TriangularWaveformGenerator:
    """Behavioural triangle-wave source.

    The output is a voltage waveform; the V-I converters
    (:mod:`repro.analog.vi_converter`) turn it into the ±6 mA excitation
    current.
    """

    def __init__(self, params: OscillatorParameters = OscillatorParameters()):
        self.params = params

    def generate(self, grid: TimeGrid) -> Trace:
        """Produce the triangle on a time grid.

        The grid's frequency is ignored in favour of the oscillator's own
        R·C frequency — exactly like the silicon, where the digital section
        must tolerate the analogue oscillator's tolerance-dependent rate.
        """
        p = self.params
        t = grid.times()
        period = 1.0 / p.frequency_hz
        # Phase within a period, starting at the negative peak so the first
        # rising ramp begins at t = 0 (matches the analytic timing oracles).
        phase = np.mod(t, period) / period

        rise_frac = 0.5 * (1.0 + p.slope_asymmetry)
        rising = phase < rise_frac
        v = np.empty_like(phase)
        v[rising] = -1.0 + 2.0 * phase[rising] / rise_frac
        v[~rising] = 1.0 - 2.0 * (phase[~rising] - rise_frac) / (1.0 - rise_frac)

        return Trace(t, v * p.amplitude + p.residual_offset)

    def measure_average(self, trace: Trace) -> float:
        """The correction loop's sensing element: the waveform average [V].

        §3.1: the DC offset "is therefore corrected by measuring the
        average of the excitation current" — exposed so tests can verify
        the loop actually nulls what it measures.
        """
        return trace.mean()
