"""Comparators and the pickup amplifier of the pulse-position detector path.

The pulse-position detector (§3.2) watches the pickup voltage with two
comparators — one for the positive pulses, one for the negative — whose
edges drive an SR latch.  The comparator model includes the imperfections
that matter to edge timing:

* static input offset (drawn from the noise budget),
* hysteresis (needed to avoid chatter on noisy pulses),
* propagation delay (a common-mode shift of both edges — duty-cycle
  neutral, but modelled for completeness).

The micro-machined pickup delivers only millivolt pulses, so a gain stage
precedes the comparators; its input-referred noise is where the noise
budget enters the timing chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..physics.noise import NoiseBudget, NoiseGenerator, NOISELESS
from ..simulation.signals import Trace


@dataclass(frozen=True)
class ComparatorParameters:
    """Electrical parameters of one comparator.

    Attributes
    ----------
    threshold:
        Nominal switching threshold [V] (sign selects pulse polarity).
    hysteresis:
        Full hysteresis width [V]; the comparator trips at
        ``threshold + hysteresis/2`` and releases at
        ``threshold − hysteresis/2``.
    offset:
        Static input-referred offset [V].
    delay:
        Propagation delay [s].
    """

    threshold: float
    hysteresis: float = 0.0
    offset: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.hysteresis < 0.0 or self.delay < 0.0:
            raise ConfigurationError("hysteresis and delay must be non-negative")

    @property
    def trip_level(self) -> float:
        """Input level that drives the output high [V]."""
        return self.threshold + self.offset + self.hysteresis / 2.0

    @property
    def release_level(self) -> float:
        """Input level that drives the output low [V]."""
        return self.threshold + self.offset - self.hysteresis / 2.0


class Comparator:
    """Threshold comparator with hysteresis, offset and delay.

    The output is a true Schmitt trigger: it goes high only when the
    input exceeds the trip level and low only when it falls below the
    release level — the hold band in between preserves the previous
    state.  This matters under noise: a plain level-crossing detector
    would report spurious "falling edges" wherever noise dips the rising
    flank of a pulse below the release level, even though the comparator
    had not yet tripped.
    """

    def __init__(self, params: ComparatorParameters):
        self.params = params

    def _states(self, v: np.ndarray) -> np.ndarray:
        """Vectorised Schmitt-trigger state per sample (0/1)."""
        p = self.params
        # +1 where the output is forced high, 0 forced low, hold elsewhere.
        forced = np.full(v.shape, -1, dtype=np.int8)
        forced[v > p.trip_level] = 1
        forced[v < p.release_level] = 0
        decided = np.nonzero(forced >= 0)[0]
        states = np.zeros(v.shape, dtype=np.int8)
        if decided.size == 0:
            return states  # never leaves the hold band: stays low
        # Forward-fill the last forced value; before the first forcing
        # point the comparator holds its reset state (low).
        fill_index = np.searchsorted(decided, np.arange(v.size), side="right") - 1
        valid = fill_index >= 0
        states[valid] = forced[decided[fill_index[valid]]]
        return states

    def compare(self, signal: Trace) -> Trace:
        """Produce the logic output trace (0.0 / 1.0) for an input trace."""
        out = self._states(signal.v).astype(float)
        if self.params.delay > 0.0:
            return Trace(signal.t + self.params.delay, out)
        return Trace(signal.t, out)

    def _edge_times(self, signal: Trace, direction: int) -> np.ndarray:
        """Output transition times with sub-sample interpolation."""
        p = self.params
        states = self._states(signal.v)
        change = np.diff(states)
        idx = np.nonzero(change == direction)[0]
        if idx.size == 0:
            return np.empty(0)
        level = p.trip_level if direction == 1 else p.release_level
        v0 = signal.v[idx]
        v1 = signal.v[idx + 1]
        t0 = signal.t[idx]
        t1 = signal.t[idx + 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(v1 != v0, (level - v0) / (v1 - v0), 0.0)
        frac = np.clip(frac, 0.0, 1.0)
        return t0 + frac * (t1 - t0) + p.delay

    def rising_edges(self, signal: Trace) -> np.ndarray:
        """Times at which the output trips high [s]."""
        return self._edge_times(signal, +1)

    def falling_edges(self, signal: Trace) -> np.ndarray:
        """Times at which the output releases low [s]."""
        return self._edge_times(signal, -1)


class PickupAmplifier:
    """Gain stage between the pickup coil and the comparators.

    Parameters
    ----------
    gain:
        Voltage gain [V/V].
    budget:
        Noise budget; white + flicker noise is injected input-referred.
    seed:
        RNG seed for reproducible noise.
    bandwidth_hz:
        Single-pole −3 dB bandwidth of the stage.  This is load-bearing
        for the noise analysis: sampled white noise otherwise integrates
        over the *simulation* bandwidth (tens of MHz), producing
        comparator chatter no real front-end would see.  1 MHz passes the
        ~10 µs pickup pulses essentially undistorted while bounding the
        noise to a physical value.  ``None`` disables filtering.
    """

    def __init__(
        self,
        gain: float = 100.0,
        budget: NoiseBudget = NOISELESS,
        seed: int = 0,
        bandwidth_hz: float = 1.0e6,
    ):
        if gain <= 0.0:
            raise ConfigurationError("amplifier gain must be positive")
        if bandwidth_hz is not None and bandwidth_hz <= 0.0:
            raise ConfigurationError("bandwidth must be positive or None")
        self.gain = gain
        self.budget = budget
        self.bandwidth_hz = bandwidth_hz
        self._seed = seed

    def _lowpass(self, values: np.ndarray, sample_rate: float) -> np.ndarray:
        if self.bandwidth_hz is None or self.bandwidth_hz >= sample_rate / 2.0:
            return values
        import math

        from scipy.signal import lfilter, lfilter_zi

        alpha = math.exp(-2.0 * math.pi * self.bandwidth_hz / sample_rate)
        b, a = [1.0 - alpha], [1.0, -alpha]
        zi = lfilter_zi(b, a) * values[0]
        out, _ = lfilter(b, a, values, zi=zi)
        return out

    def amplify(self, signal: Trace) -> Trace:
        """Band-limit, amplify and add input-referred noise."""
        if self.budget.is_noiseless:
            filtered = self._lowpass(signal.v, signal.sample_rate)
            return Trace(signal.t, filtered * self.gain)
        generator = NoiseGenerator(self.budget, signal.sample_rate, self._seed)
        noise = generator.voltage_noise(len(signal))
        filtered = self._lowpass(signal.v + noise, signal.sample_rate)
        return Trace(signal.t, filtered * self.gain)
