"""Comparators and the pickup amplifier of the pulse-position detector path.

The pulse-position detector (§3.2) watches the pickup voltage with two
comparators — one for the positive pulses, one for the negative — whose
edges drive an SR latch.  The comparator model includes the imperfections
that matter to edge timing:

* static input offset (drawn from the noise budget),
* hysteresis (needed to avoid chatter on noisy pulses),
* propagation delay (a common-mode shift of both edges — duty-cycle
  neutral, but modelled for completeness).

The micro-machined pickup delivers only millivolt pulses, so a gain stage
precedes the comparators; its input-referred noise is where the noise
budget enters the timing chain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..physics.noise import NoiseBudget, NoiseGenerator, NOISELESS
from ..simulation.signals import Trace


@dataclass(frozen=True)
class ComparatorParameters:
    """Electrical parameters of one comparator.

    Attributes
    ----------
    threshold:
        Nominal switching threshold [V] (sign selects pulse polarity).
    hysteresis:
        Full hysteresis width [V]; the comparator trips at
        ``threshold + hysteresis/2`` and releases at
        ``threshold − hysteresis/2``.
    offset:
        Static input-referred offset [V].
    delay:
        Propagation delay [s].
    """

    threshold: float
    hysteresis: float = 0.0
    offset: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.hysteresis < 0.0 or self.delay < 0.0:
            raise ConfigurationError("hysteresis and delay must be non-negative")

    @property
    def trip_level(self) -> float:
        """Input level that drives the output high [V]."""
        return self.threshold + self.offset + self.hysteresis / 2.0

    @property
    def release_level(self) -> float:
        """Input level that drives the output low [V]."""
        return self.threshold + self.offset - self.hysteresis / 2.0


class Comparator:
    """Threshold comparator with hysteresis, offset and delay.

    The output is a true Schmitt trigger: it goes high only when the
    input exceeds the trip level and low only when it falls below the
    release level — the hold band in between preserves the previous
    state.  This matters under noise: a plain level-crossing detector
    would report spurious "falling edges" wherever noise dips the rising
    flank of a pulse below the release level, even though the comparator
    had not yet tripped.
    """

    #: At most this many scratch-buffer shapes are retained; a chunked
    #: batch sweep alternates between the full chunk shape and one
    #: remainder shape, so two entries make every steady-state call a hit
    #: while a long-lived service fed arbitrary chunk sizes stays bounded.
    SCRATCH_CAPACITY = 2

    def __init__(self, params: ComparatorParameters):
        self.params = params
        self._code_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._batch_scratch: Dict[
            Tuple[int, int],
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        ] = {}

    def _batch_buffers(
        self, shape: Tuple[int, int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Persistent per-shape scratch for :meth:`falling_edges_batch`.

        ``(forced_high, forced_low, encoded, parity, fall)`` —
        reallocating these multi-megabyte temporaries per chunk costs
        kernel page faults; none of them escape the method, so reuse is
        safe.  The cache is LRU-bounded at :attr:`SCRATCH_CAPACITY`
        shapes so varying chunk sizes cannot grow memory without bound.
        """
        buffers = self._batch_scratch.pop(shape, None)
        if buffers is None:
            while len(self._batch_scratch) >= self.SCRATCH_CAPACITY:
                self._batch_scratch.pop(next(iter(self._batch_scratch)))
            buffers = (
                np.empty(shape, dtype=bool),
                np.empty(shape, dtype=bool),
                np.empty(shape, dtype=np.int32),
                np.empty(shape, dtype=np.int8),
                np.empty((shape[0], shape[1] - 1), dtype=bool),
            )
        # (Re-)insert so dict order tracks recency: oldest first.
        self._batch_scratch[shape] = buffers
        return buffers

    def _states(self, v: np.ndarray) -> np.ndarray:
        """Vectorised Schmitt-trigger state per sample (0/1)."""
        p = self.params
        # +1 where the output is forced high, 0 forced low, hold elsewhere.
        forced = np.full(v.shape, -1, dtype=np.int8)
        forced[v > p.trip_level] = 1
        forced[v < p.release_level] = 0
        decided = np.nonzero(forced >= 0)[0]
        states = np.zeros(v.shape, dtype=np.int8)
        if decided.size == 0:
            return states  # never leaves the hold band: stays low
        # Forward-fill the last forced value; before the first forcing
        # point the comparator holds its reset state (low).
        fill_index = np.searchsorted(decided, np.arange(v.size), side="right") - 1
        valid = fill_index >= 0
        states[valid] = forced[decided[fill_index[valid]]]
        return states

    def compare(self, signal: Trace) -> Trace:
        """Produce the logic output trace (0.0 / 1.0) for an input trace."""
        out = self._states(signal.v).astype(float)
        if self.params.delay > 0.0:
            return Trace(signal.t + self.params.delay, out)
        return Trace(signal.t, out)

    def _edge_times(self, signal: Trace, direction: int) -> np.ndarray:
        """Output transition times with sub-sample interpolation."""
        p = self.params
        states = self._states(signal.v)
        change = np.diff(states)
        idx = np.nonzero(change == direction)[0]
        if idx.size == 0:
            return np.empty(0)
        level = p.trip_level if direction == 1 else p.release_level
        v0 = signal.v[idx]
        v1 = signal.v[idx + 1]
        t0 = signal.t[idx]
        t1 = signal.t[idx + 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(v1 != v0, (level - v0) / (v1 - v0), 0.0)
        frac = np.clip(frac, 0.0, 1.0)
        return t0 + frac * (t1 - t0) + p.delay

    def rising_edges(self, signal: Trace) -> np.ndarray:
        """Times at which the output trips high [s]."""
        return self._edge_times(signal, +1)

    def falling_edges(self, signal: Trace) -> np.ndarray:
        """Times at which the output releases low [s]."""
        return self._edge_times(signal, -1)

    # -- batched path (repro.batch) -------------------------------------------

    def _codes(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-column event codes for the parity-accumulate state machine."""
        cached = self._code_cache.get(n)
        if cached is None:
            # Odd codes mark a "forced high" sample, even codes "forced
            # low"; later columns always carry larger codes, so a running
            # maximum yields the most recent forcing event and its parity
            # is the Schmitt-trigger state — one accumulate replaces the
            # scalar searchsorted forward-fill.  int32 comfortably holds
            # 2n+3 and halves the matrix memory traffic.
            set_codes = (2 * np.arange(n, dtype=np.int64) + 3).astype(np.int32)
            reset_codes = set_codes - np.int32(1)
            cached = (set_codes, reset_codes)
            self._code_cache[n] = cached
        return cached

    def falling_edges_batch(
        self, values: np.ndarray, times: np.ndarray, negate: bool = False
    ) -> List[np.ndarray]:
        """Batched :meth:`falling_edges` over an ``(N, n_samples)`` matrix.

        Each row is an independent waveform sharing the ``times`` axis;
        the result is one edge-time array per row, bit-identical to the
        scalar path.  ``negate=True`` evaluates the comparator on ``-v``
        without materialising the negated matrix (the pulse-position
        detector's negative comparator watches the inverted pickup).
        """
        p = self.params
        V = values
        if V.ndim != 2 or V.shape[1] != times.size:
            raise ConfigurationError(
                "falling_edges_batch needs an (N, n_samples) matrix on the "
                "shared time axis"
            )
        set_codes, reset_codes = self._codes(times.size)
        forced_high, forced_low, encoded, parity, fall = self._batch_buffers(V.shape)
        if negate:
            np.less(V, -p.trip_level, out=forced_high)
            np.greater(V, -p.release_level, out=forced_low)
        else:
            np.greater(V, p.trip_level, out=forced_high)
            np.less(V, p.release_level, out=forced_low)
        # bool × int32 is the masked select: reset code where forced low,
        # zero elsewhere (bit-identical to np.where, without allocating).
        np.multiply(forced_low, reset_codes, out=encoded)
        np.copyto(encoded, np.broadcast_to(set_codes, encoded.shape), where=forced_high)
        np.maximum.accumulate(encoded, axis=1, out=encoded)
        # The parity (state) is 0/1, so narrowing to int8 is exact and
        # quarters the memory traffic of the edge-detection compare.
        np.bitwise_and(encoded, 1, out=parity)
        # A falling edge is a 1 → 0 state transition between columns.
        np.greater(parity[:, :-1], parity[:, 1:], out=fall)
        # flatnonzero on the contiguous view is a single pass — an order
        # of magnitude faster than 2-D nonzero for these sparse edges.
        rows, cols = divmod(np.flatnonzero(fall.ravel()), fall.shape[1])
        v0 = V[rows, cols]
        v1 = V[rows, cols + 1]
        if negate:
            v0 = -v0
            v1 = -v1
        t0 = times[cols]
        t1 = times[cols + 1]
        level = p.release_level
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(v1 != v0, (level - v0) / (v1 - v0), 0.0)
        frac = np.clip(frac, 0.0, 1.0)
        edge_times = t0 + frac * (t1 - t0) + p.delay
        splits = np.searchsorted(rows, np.arange(1, V.shape[0]))
        return np.split(edge_times, splits)


class PickupAmplifier:
    """Gain stage between the pickup coil and the comparators.

    Parameters
    ----------
    gain:
        Voltage gain [V/V].
    budget:
        Noise budget; white + flicker noise is injected input-referred.
        Every :meth:`amplify` call draws a *fresh* noise realization from
        a persistent stream (``SeedSequence((seed, draw_index))``), so the
        two multiplexed channels and successive measurements see
        statistically independent noise while the whole run stays
        reproducible from ``seed``.
    seed:
        RNG seed for reproducible noise.
    bandwidth_hz:
        Single-pole −3 dB bandwidth of the stage.  This is load-bearing
        for the noise analysis: sampled white noise otherwise integrates
        over the *simulation* bandwidth (tens of MHz), producing
        comparator chatter no real front-end would see.  1 MHz passes the
        ~10 µs pickup pulses essentially undistorted while bounding the
        noise to a physical value.  ``None`` disables filtering.
    """

    def __init__(
        self,
        gain: float = 100.0,
        budget: NoiseBudget = NOISELESS,
        seed: int = 0,
        bandwidth_hz: float = 1.0e6,
    ):
        if gain <= 0.0:
            raise ConfigurationError("amplifier gain must be positive")
        if bandwidth_hz is not None and bandwidth_hz <= 0.0:
            raise ConfigurationError("bandwidth must be positive or None")
        self.gain = gain
        self.budget = budget
        self.bandwidth_hz = bandwidth_hz
        self._seed = seed
        self._noise_draws = 0

    # -- noise stream ---------------------------------------------------------

    @property
    def noise_draws(self) -> int:
        """Number of noise realizations drawn so far (the stream position)."""
        return self._noise_draws

    def noise_realization(
        self, n: int, sample_rate: float, draw_index: int
    ) -> np.ndarray:
        """The ``draw_index``-th input-referred noise realization [V].

        Realizations are independent across draw indices but fully
        determined by ``(seed, draw_index)`` — the batch engine uses this
        for random access into the same stream the scalar path consumes
        sequentially.
        """
        generator = NoiseGenerator(
            self.budget,
            sample_rate,
            np.random.SeedSequence((self._seed, draw_index)),
        )
        return generator.voltage_noise(n)

    def consume_noise_draws(self, count: int) -> int:
        """Advance the stream position by ``count`` draws; returns the old
        position (the base index of the consumed block)."""
        if count < 0:
            raise ConfigurationError("cannot consume a negative draw count")
        base = self._noise_draws
        self._noise_draws += count
        return base

    # -- signal path ----------------------------------------------------------

    def _lowpass(self, values: np.ndarray, sample_rate: float) -> np.ndarray:
        """Single-pole band limit; accepts 1-D or (N, n_samples) input."""
        if self.bandwidth_hz is None or self.bandwidth_hz >= sample_rate / 2.0:
            return values
        from scipy.signal import lfilter, lfilter_zi

        alpha = math.exp(-2.0 * math.pi * self.bandwidth_hz / sample_rate)
        b, a = [1.0 - alpha], [1.0, -alpha]
        if values.ndim == 1:
            zi = lfilter_zi(b, a) * values[0]
            out, _ = lfilter(b, a, values, zi=zi)
        else:
            zi = lfilter_zi(b, a) * values[:, :1]
            out, _ = lfilter(b, a, values, axis=-1, zi=zi)
        return out

    def amplify(self, signal: Trace) -> Trace:
        """Band-limit, amplify and add input-referred noise."""
        if self.budget.is_noiseless:
            filtered = self._lowpass(signal.v, signal.sample_rate)
            return Trace(signal.t, filtered * self.gain)
        draw = self.consume_noise_draws(1)
        noise = self.noise_realization(len(signal), signal.sample_rate, draw)
        filtered = self._lowpass(signal.v + noise, signal.sample_rate)
        return Trace(signal.t, filtered * self.gain)

    def amplify_batch(
        self,
        values: np.ndarray,
        sample_rate: float,
        draw_indices: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Amplify an ``(N, n_samples)`` matrix of pickup waveforms.

        ``draw_indices`` assigns one noise-stream index per row so a batch
        can replicate exactly the draws a scalar call sequence would have
        made (it does **not** advance the stream — the caller accounts for
        the block with :meth:`consume_noise_draws`).  Ignored for a
        noiseless budget.
        """
        if values.ndim != 2:
            raise ConfigurationError("amplify_batch needs an (N, n_samples) matrix")
        if not self.budget.is_noiseless:
            if draw_indices is None or len(draw_indices) != values.shape[0]:
                raise ConfigurationError(
                    "amplify_batch needs one noise draw index per row"
                )
            values = values + np.stack(
                [
                    self.noise_realization(values.shape[1], sample_rate, index)
                    for index in draw_indices
                ]
            )
        filtered = self._lowpass(values, sample_rate)
        if filtered is values:
            return filtered * self.gain
        filtered *= self.gain
        return filtered
