"""Labelled counters, gauges and histograms for the compass runtime.

A deliberately small, zero-dependency metrics model in the Prometheus
idiom: a :class:`MetricsRegistry` owns named instruments, each
instrument fans out into one *series* per label combination, and
``snapshot()`` freezes the whole registry into plain dicts for the CLI,
JSON export or assertions in tests.

Histograms use fixed upper-bound buckets and expose their state as an
immutable :class:`HistogramState` whose :meth:`~HistogramState.merge`
is associative and commutative (property-pinned by
``tests/test_property_observe.py``) — the algebra that makes per-shard
metric aggregation order-independent when many compasses report to one
collector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError

LabelValue = Union[str, int, float, bool]
_SeriesKey = Tuple[str, ...]

#: Default histogram buckets: a generic latency/size ladder; instruments
#: with a natural scale (degrees, microtesla) pass their own.
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)


def _series_key(
    labelnames: Tuple[str, ...], labels: Dict[str, LabelValue], metric: str
) -> _SeriesKey:
    if set(labels) != set(labelnames):
        raise ConfigurationError(
            f"metric {metric!r} wants labels {labelnames}, got "
            f"{tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


@dataclass(frozen=True)
class HistogramState:
    """Immutable histogram contents: bucket counts + sum + count.

    ``bounds`` are inclusive upper bounds; an implicit +inf bucket
    catches the overflow, so ``len(counts) == len(bounds) + 1``.
    """

    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]
    total: float = 0.0
    n: int = 0

    @classmethod
    def empty(cls, bounds: Sequence[float]) -> "HistogramState":
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ConfigurationError("bucket bounds must be strictly increasing")
        return cls(bounds=bounds, counts=(0,) * (len(bounds) + 1))

    def observe(self, value: float) -> "HistogramState":
        """A new state with one more observation recorded."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        counts = list(self.counts)
        counts[index] += 1
        return HistogramState(
            bounds=self.bounds,
            counts=tuple(counts),
            total=self.total + value,
            n=self.n + 1,
        )

    def merge(self, other: "HistogramState") -> "HistogramState":
        """Combine two histograms observed against the same bounds.

        Associative and commutative: merging per-shard histograms in any
        grouping or order yields the same aggregate.
        """
        if self.bounds != other.bounds:
            raise ConfigurationError(
                "cannot merge histograms with different bucket bounds"
            )
        return HistogramState(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            n=self.n + other.n,
        )

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def to_dict(self) -> Dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.n,
        }


class _Instrument:
    """Shared machinery: a named family of label-keyed series."""

    kind = "instrument"

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...]):
        self.name = name
        self.help = help
        self.labelnames = labelnames

    def _key(self, labels: Dict[str, LabelValue]) -> _SeriesKey:
        return _series_key(self.labelnames, labels, self.name)

    def _labels_dict(self, key: _SeriesKey) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))


class Counter(_Instrument):
    """Monotonically increasing count, e.g. measurements served."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...]):
        super().__init__(name, help, labelnames)
        self._series: Dict[_SeriesKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: LabelValue) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: LabelValue) -> float:
        return self._series.get(self._key(labels), 0.0)

    def series(self) -> List[Dict]:
        return [
            {"labels": self._labels_dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Gauge(_Instrument):
    """Last-observed value, e.g. the most recent field estimate."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...]):
        super().__init__(name, help, labelnames)
        self._series: Dict[_SeriesKey, float] = {}

    def set(self, value: float, **labels: LabelValue) -> None:
        self._series[self._key(labels)] = float(value)

    def value(self, **labels: LabelValue) -> float:
        return self._series.get(self._key(labels), 0.0)

    def series(self) -> List[Dict]:
        return [
            {"labels": self._labels_dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Histogram(_Instrument):
    """Distribution of observed values over fixed buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        self._empty = HistogramState.empty(buckets)
        self._series: Dict[_SeriesKey, HistogramState] = {}

    def observe(self, value: float, **labels: LabelValue) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, self._empty).observe(value)

    def state(self, **labels: LabelValue) -> HistogramState:
        return self._series.get(self._key(labels), self._empty)

    def series(self) -> List[Dict]:
        return [
            {"labels": self._labels_dict(key), **state.to_dict()}
            for key, state in sorted(self._series.items())
        ]


class MetricsRegistry:
    """Named instruments with idempotent registration.

    Several subsystems (compass core, health supervisor, batch engine)
    share one registry; re-requesting an instrument with the same
    (kind, labelnames) returns the existing one, while a conflicting
    re-registration raises — silent shadowing would split series across
    two objects.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        labelnames = tuple(labelnames)
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != labelnames:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.labelnames}"
                )
            return existing
        instrument = cls(name, help, labelnames, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict]:
        """Freeze every instrument into plain JSON-friendly dicts."""
        return {
            name: {
                "type": instrument.kind,
                "help": instrument.help,
                "labelnames": list(instrument.labelnames),
                "series": instrument.series(),
            }
            for name, instrument in sorted(self._instruments.items())
        }
