"""Observability configuration and the per-compass :class:`Observer`.

One frozen :class:`Observability` record rides on
:class:`~repro.core.compass.CompassConfig` (disabled by default) and is
resolved once, at compass construction, into an :class:`Observer` — the
nullable bundle of one :class:`~repro.observe.trace.Tracer` and one
:class:`~repro.observe.metrics.MetricsRegistry` that every instrumented
subsystem consults.

The contract call sites rely on:

* ``observer.tracer is None``/``observer.metrics is None`` when the
  corresponding half is off — instrumentation guards on exactly that,
  so the disabled hot path costs one attribute check;
* :data:`DISABLED` is the shared do-nothing observer, safe to attach
  anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .metrics import MetricsRegistry
from .trace import JSONLSink, NULL_SPAN, RingBufferSink, Tracer, VCDSink

# -- metric taxonomy -----------------------------------------------------------
# Every metric the instrumented stack emits, in one place; the labels per
# metric are documented in docs/observability.md and pinned by
# tests/test_observe.py.

M_MEASUREMENTS = "compass_measurements_total"      # {path, status}
M_COUNTER_TICKS = "compass_counter_ticks_total"    # {path, channel}
M_HEADING = "compass_heading_deg"                  # {path} histogram
M_FIELD = "compass_field_estimate_ut"              # {path} histogram
M_HEALTH_CHECKS = "health_checks_total"            # {check, outcome}
M_HEALTH_FALLBACKS = "health_fallbacks_total"      # {kind}
M_BATCH_ROWS = "batch_rows_total"                  # {}
M_BATCH_CHUNKS = "batch_chunks_total"              # {channel}
M_CACHE_EVENTS = "excitation_cache_total"          # {event: hit|miss}
M_CAMPAIGN_CELLS = "campaign_cells_total"          # {path, outcome}
M_CAMPAIGN_ERROR = "campaign_error_deg"            # {path} histogram
M_SERVICE_REQUESTS = "service_requests_total"      # {verdict}
M_SERVICE_ATTEMPTS = "service_attempts_total"      # {replica, outcome}
M_SERVICE_ATTEMPTS_PER_REQUEST = "service_attempts_per_request"  # {} histogram
M_SERVICE_LATENCY = "service_request_latency_s"    # {} histogram
M_VOTE_DISSENT = "service_vote_dissent_deg"        # {} histogram
M_BREAKER_TRANSITIONS = "breaker_transitions_total"  # {replica, to}
M_BREAKER_STATE = "breaker_state"                  # {replica} gauge
M_FLEET_REQUESTS = "fleet_requests_total"          # {outcome}
M_FLEET_SHED = "fleet_shed_total"                  # {reason}
M_FLEET_COALESCE = "fleet_coalesce_total"          # {event: leader|follower|cache-hit|cache-miss}
M_FLEET_QUEUE_DEPTH = "fleet_queue_depth"          # {shard} gauge
M_FLEET_LATENCY = "fleet_request_latency_s"        # {source} histogram
M_FLEET_BROWNOUT = "fleet_brownout_level"          # {} gauge
M_FLEET_BROWNOUT_SHIFTS = "fleet_brownout_transitions_total"  # {to}
M_FACTORY_UNITS = "factory_units_total"            # {disposition}
M_FACTORY_STAGE = "factory_stage_outcomes_total"   # {stage, outcome}
M_SCENARIO_STEPS = "scenario_steps_total"          # {scenario, status}
M_SCENARIO_GUARDS = "scenario_guard_flags_total"   # {scenario, flag}
M_ARRAY_FUSIONS = "array_fusions_total"            # {status}
M_ARRAY_ELEMENTS = "array_elements_total"          # {element, outcome}
M_ARRAY_RESIDUAL = "array_gradiometer_residual"    # {} histogram

#: Heading histogram buckets: the eight compass octants.
HEADING_BUCKETS = (45.0, 90.0, 135.0, 180.0, 225.0, 270.0, 315.0, 360.0)
#: Field-estimate buckets [µT]: below-band, the §1 worldwide 25…65 µT
#: span, and the out-of-band overflow the health supervisor flags.
FIELD_BUCKETS_UT = (10.0, 25.0, 35.0, 45.0, 55.0, 65.0, 97.5, 130.0)
#: Heading-error buckets [deg] for campaign cells: inside the paper's 1°
#: spec, near-misses, and gross failures.
ERROR_BUCKETS_DEG = (0.25, 0.5, 1.0, 2.0, 5.0, 15.0, 45.0, 180.0)
#: Attempt-count buckets for the per-request retry histogram: 1 attempt
#: per replica is the clean path, Fibonacci growth covers retry storms.
ATTEMPT_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0)
#: Request-latency buckets [s]: one measurement is ~2.3 ms, so the grid
#: spans the clean three-replica request through backoff-heavy retries.
LATENCY_BUCKETS_S = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)
#: Vote-dissent buckets [deg]: quantisation-level disagreement between
#: replica headings up to the outlier-rejection threshold and beyond.
DISSENT_BUCKETS_DEG = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 15.0)
#: Gradiometer-residual buckets (fraction of the fused field): counter
#: quantisation noise, the near-field detection threshold region, and
#: gross local disturbances.
RESIDUAL_BUCKETS_FRACTION = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.2,
)


@dataclass(frozen=True)
class Observability:
    """Opt-in switchboard for tracing + metrics on one compass.

    Attributes
    ----------
    enabled:
        Master switch; ``False`` (the default) resolves to
        :data:`DISABLED` and leaves the measurement hot path untouched.
    tracing, metrics:
        Sub-switches for the two halves.
    ring_capacity:
        Root spans (= measurements) kept by the in-memory ring sink.
    jsonl_path:
        When set, every finished span is appended to this JSONL file.
    vcd_path:
        When set, span activity is rendered as VCD waveforms on
        :meth:`Observer.close` via :mod:`repro.simulation.vcd`.
    vcd_timescale_ns:
        Timescale of the VCD export (wall-clock nanoseconds per unit).
    replay_path:
        When set, every measurement is captured at stage boundaries
        into a self-checking replay log at this path (see
        :mod:`repro.replay`); the footer is written on
        :meth:`Observer.close`.
    """

    enabled: bool = False
    tracing: bool = True
    metrics: bool = True
    ring_capacity: int = 256
    jsonl_path: Optional[str] = None
    vcd_path: Optional[str] = None
    vcd_timescale_ns: float = 1000.0
    replay_path: Optional[str] = None

    @classmethod
    def on(cls, **overrides) -> "Observability":
        """Shorthand for an enabled configuration."""
        return cls(enabled=True, **overrides)


class Observer:
    """The resolved (tracer, metrics, recorder) bundle one compass reports into."""

    __slots__ = ("tracer", "metrics", "recorder")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        recorder=None,
    ):
        self.tracer = tracer
        self.metrics = metrics
        #: Optional :class:`repro.replay.LogRecorder`; ``None`` keeps the
        #: measurement hot path capture-free (one attribute check).
        self.recorder = recorder

    @property
    def enabled(self) -> bool:
        return (
            self.tracer is not None
            or self.metrics is not None
            or self.recorder is not None
        )

    def span(self, name: str, **attributes):
        """A traced span, or the shared no-op span when tracing is off."""
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(name, **attributes)

    def ring(self) -> Optional[RingBufferSink]:
        """The tracer's ring-buffer sink, if one is attached."""
        if self.tracer is None:
            return None
        for sink in self.tracer.sinks:
            if isinstance(sink, RingBufferSink):
                return sink
        return None

    def close(self) -> None:
        """Flush file-backed sinks (JSONL, VCD) and the replay recorder."""
        if self.tracer is not None:
            self.tracer.close()
        if self.recorder is not None:
            self.recorder.close()


#: The do-nothing observer every un-instrumented component carries.
DISABLED = Observer()


def build_observer(config: Observability) -> Observer:
    """Resolve an :class:`Observability` record into a live observer."""
    if not config.enabled:
        return DISABLED
    tracer = None
    if config.tracing:
        sinks: list = [RingBufferSink(config.ring_capacity)]
        if config.jsonl_path is not None:
            sinks.append(JSONLSink(config.jsonl_path))
        if config.vcd_path is not None:
            sinks.append(
                VCDSink(config.vcd_path, timescale_ns=config.vcd_timescale_ns)
            )
        tracer = Tracer(sinks=sinks)
    metrics = MetricsRegistry() if config.metrics else None
    recorder = None
    if config.replay_path is not None:
        # Imported here: repro.replay sits above repro.observe in the
        # layering (its format captures health reports, which import
        # this package).
        from ..replay.recorder import LogRecorder

        recorder = LogRecorder(config.replay_path)
    return Observer(tracer=tracer, metrics=metrics, recorder=recorder)


__all__ = [
    "ATTEMPT_BUCKETS",
    "DISABLED",
    "DISSENT_BUCKETS_DEG",
    "ERROR_BUCKETS_DEG",
    "FIELD_BUCKETS_UT",
    "HEADING_BUCKETS",
    "LATENCY_BUCKETS_S",
    "RESIDUAL_BUCKETS_FRACTION",
    "M_ARRAY_ELEMENTS",
    "M_ARRAY_FUSIONS",
    "M_ARRAY_RESIDUAL",
    "M_BATCH_CHUNKS",
    "M_BATCH_ROWS",
    "M_BREAKER_STATE",
    "M_BREAKER_TRANSITIONS",
    "M_CACHE_EVENTS",
    "M_CAMPAIGN_CELLS",
    "M_CAMPAIGN_ERROR",
    "M_COUNTER_TICKS",
    "M_FACTORY_STAGE",
    "M_FACTORY_UNITS",
    "M_FIELD",
    "M_FLEET_BROWNOUT",
    "M_FLEET_BROWNOUT_SHIFTS",
    "M_FLEET_COALESCE",
    "M_FLEET_LATENCY",
    "M_FLEET_QUEUE_DEPTH",
    "M_FLEET_REQUESTS",
    "M_FLEET_SHED",
    "M_HEADING",
    "M_HEALTH_CHECKS",
    "M_HEALTH_FALLBACKS",
    "M_MEASUREMENTS",
    "M_SERVICE_ATTEMPTS",
    "M_SERVICE_ATTEMPTS_PER_REQUEST",
    "M_SCENARIO_GUARDS",
    "M_SCENARIO_STEPS",
    "M_SERVICE_LATENCY",
    "M_SERVICE_REQUESTS",
    "M_VOTE_DISSENT",
    "Observability",
    "Observer",
    "build_observer",
]
