"""Human-readable rendering of span trees and metrics snapshots.

Backs the ``repro trace`` and ``repro metrics`` CLI commands; pure
string formatting so tests can pin the structure without a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .trace import Span


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _format_attributes(span: Span) -> str:
    if not span.attributes:
        return ""
    parts = [
        f"{key}={_format_value(value)}"
        for key, value in span.attributes.items()
    ]
    return "  " + " ".join(parts)


def render_span_tree(root: Span) -> str:
    """One measurement's span tree as an indented box-drawing tree."""
    lines: List[str] = []

    def _render(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        duration_us = span.duration_s * 1e6
        label = (
            f"{span.name} ({duration_us:.0f} us)"
            f"{'' if span.status == 'ok' else ' [' + span.status + ']'}"
            f"{_format_attributes(span)}"
        )
        if is_root:
            lines.append(label)
            child_prefix = ""
        else:
            connector = "`- " if is_last else "|- "
            lines.append(prefix + connector + label)
            child_prefix = prefix + ("   " if is_last else "|  ")
        for i, child in enumerate(span.children):
            _render(child, child_prefix, i == len(span.children) - 1, False)

    _render(root, "", True, True)
    return "\n".join(lines)


def render_span_trees(roots: Sequence[Span]) -> str:
    """Several root spans, blank-line separated."""
    return "\n\n".join(render_span_tree(root) for root in roots)


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_metrics(snapshot: Dict[str, Dict]) -> str:
    """A metrics snapshot in a Prometheus-exposition-like text form."""
    lines: List[str] = []
    for name, record in snapshot.items():
        if record["help"]:
            lines.append(f"# HELP {name} {record['help']}")
        lines.append(f"# TYPE {name} {record['type']}")
        for series in record["series"]:
            labels = _render_labels(series["labels"])
            if record["type"] == "histogram":
                cumulative = 0
                for bound, count in zip(series["bounds"], series["counts"]):
                    cumulative += count
                    bucket_labels = dict(series["labels"], le=f"{bound:g}")
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                bucket_labels = dict(series["labels"], le="+Inf")
                lines.append(
                    f"{name}_bucket{_render_labels(bucket_labels)} "
                    f"{series['count']}"
                )
                lines.append(f"{name}_sum{labels} {series['sum']:g}")
                lines.append(f"{name}_count{labels} {series['count']}")
            else:
                lines.append(f"{name}{labels} {series['value']:g}")
    return "\n".join(lines)
