"""repro.observe — tracing + metrics across the compass signal chain.

The spinning-Hall-probe compass in PAPERS.md wins diagnoses by exposing
its intermediate signals; this package gives the reproduction the same
property at runtime without touching a single output bit:

* :class:`Tracer` — nested spans over every measurement stage
  (excitation → pickup → comparator → counter → CORDIC iterations) with
  pluggable sinks: in-memory ring buffer, JSONL file, and the existing
  :mod:`repro.simulation.vcd` writer as a waveform sink,
* :class:`MetricsRegistry` — labelled counters/gauges/histograms fed by
  the compass core, the batch engine, the health supervisor and the
  fault-campaign engine,
* :class:`Observability` — the opt-in config record carried by
  :class:`~repro.core.compass.CompassConfig`; disabled (the default)
  the hot path is bit-identical and inside the ≤5 % overhead contract
  recorded in ``BENCH_observe.json``.

Quickstart::

    from repro import CompassConfig, IntegratedCompass
    from repro.observe import Observability, render_span_tree

    compass = IntegratedCompass(CompassConfig(observe=Observability.on()))
    compass.measure_heading(45.0)
    print(render_span_tree(compass.observer.ring().roots[-1]))
    print(compass.observer.metrics.snapshot())

See ``docs/observability.md`` for the span taxonomy, metric names and
sink selection guide.
"""

from .config import (
    ATTEMPT_BUCKETS,
    DISABLED,
    DISSENT_BUCKETS_DEG,
    ERROR_BUCKETS_DEG,
    FIELD_BUCKETS_UT,
    HEADING_BUCKETS,
    LATENCY_BUCKETS_S,
    RESIDUAL_BUCKETS_FRACTION,
    M_ARRAY_ELEMENTS,
    M_ARRAY_FUSIONS,
    M_ARRAY_RESIDUAL,
    M_BATCH_CHUNKS,
    M_BATCH_ROWS,
    M_BREAKER_STATE,
    M_BREAKER_TRANSITIONS,
    M_CACHE_EVENTS,
    M_CAMPAIGN_CELLS,
    M_CAMPAIGN_ERROR,
    M_COUNTER_TICKS,
    M_FACTORY_STAGE,
    M_FACTORY_UNITS,
    M_FIELD,
    M_FLEET_BROWNOUT,
    M_FLEET_BROWNOUT_SHIFTS,
    M_FLEET_COALESCE,
    M_FLEET_LATENCY,
    M_FLEET_QUEUE_DEPTH,
    M_FLEET_REQUESTS,
    M_FLEET_SHED,
    M_HEADING,
    M_HEALTH_CHECKS,
    M_HEALTH_FALLBACKS,
    M_MEASUREMENTS,
    M_SCENARIO_GUARDS,
    M_SCENARIO_STEPS,
    M_SERVICE_ATTEMPTS,
    M_SERVICE_ATTEMPTS_PER_REQUEST,
    M_SERVICE_LATENCY,
    M_SERVICE_REQUESTS,
    M_VOTE_DISSENT,
    Observability,
    Observer,
    build_observer,
)
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    HistogramState,
    MetricsRegistry,
)
from .render import render_metrics, render_span_tree, render_span_trees
from .trace import (
    JSONLSink,
    NULL_SPAN,
    RingBufferSink,
    Span,
    SpanSink,
    Tracer,
    VCDSink,
    validate_tree,
)

__all__ = [
    "ATTEMPT_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "DISABLED",
    "DISSENT_BUCKETS_DEG",
    "ERROR_BUCKETS_DEG",
    "FIELD_BUCKETS_UT",
    "Gauge",
    "HEADING_BUCKETS",
    "Histogram",
    "HistogramState",
    "JSONLSink",
    "LATENCY_BUCKETS_S",
    "RESIDUAL_BUCKETS_FRACTION",
    "M_ARRAY_ELEMENTS",
    "M_ARRAY_FUSIONS",
    "M_ARRAY_RESIDUAL",
    "M_BATCH_CHUNKS",
    "M_BATCH_ROWS",
    "M_BREAKER_STATE",
    "M_BREAKER_TRANSITIONS",
    "M_CACHE_EVENTS",
    "M_CAMPAIGN_CELLS",
    "M_CAMPAIGN_ERROR",
    "M_COUNTER_TICKS",
    "M_FACTORY_STAGE",
    "M_FACTORY_UNITS",
    "M_FIELD",
    "M_FLEET_BROWNOUT",
    "M_FLEET_BROWNOUT_SHIFTS",
    "M_FLEET_COALESCE",
    "M_FLEET_LATENCY",
    "M_FLEET_QUEUE_DEPTH",
    "M_FLEET_REQUESTS",
    "M_FLEET_SHED",
    "M_HEADING",
    "M_HEALTH_CHECKS",
    "M_HEALTH_FALLBACKS",
    "M_MEASUREMENTS",
    "M_SCENARIO_GUARDS",
    "M_SCENARIO_STEPS",
    "M_SERVICE_ATTEMPTS",
    "M_SERVICE_ATTEMPTS_PER_REQUEST",
    "M_SERVICE_LATENCY",
    "M_SERVICE_REQUESTS",
    "M_VOTE_DISSENT",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "Observer",
    "RingBufferSink",
    "Span",
    "SpanSink",
    "Tracer",
    "VCDSink",
    "build_observer",
    "render_metrics",
    "render_span_tree",
    "render_span_trees",
    "validate_tree",
]
