"""Structured tracing for the measurement signal chain.

The silicon of the paper is observable on the bench — every block of
Figure 1 has probeable nodes, and the design was debugged by watching
them in the Compass/ELDO waveform viewers.  The software reproduction
hides all of that behind one heading readout; this module restores the
bench view as *spans*: nested, timed, attributed records of every stage
a measurement passes through (excitation → pickup → comparator →
counter → CORDIC iterations).

Design rules, in order of priority:

1. **Transparency** — tracing never touches measurement arithmetic.  A
   traced measurement is bit-identical to an untraced one (pinned by the
   golden-vector suite in ``tests/test_golden_vectors.py``).
2. **Zero cost when off** — the disabled path is a single attribute
   check; the compass hot path stays within the overhead contract of
   ``BENCH_observe.json`` (see ``docs/observability.md``).
3. **Zero dependencies** — plain stdlib; sinks cover an in-memory ring
   buffer, JSONL files and the existing :mod:`repro.simulation.vcd`
   waveform writer.

The tracer is single-threaded by design, like the simulation engine it
observes: one tracer belongs to one compass.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, IO, List, Optional, Tuple, Union

from ..errors import ConfigurationError
from ..simulation.vcd import VCDWriter

#: Span names emitted by the instrumented signal chain, in stage order.
#: ``tests/test_observe.py`` and ``repro trace`` treat this as the
#: taxonomy contract; see docs/observability.md for attribute tables.
STAGE_MEASURE = "measure"
STAGE_CHANNEL = "channel"          # channel.x / channel.y
STAGE_EXCITATION = "excitation"
STAGE_PICKUP = "pickup"
STAGE_COMPARATOR = "comparator"
STAGE_FASTPATH = "fastpath"        # closed-form front-end solve
STAGE_BACKEND = "backend"
STAGE_COUNTER = "counter"          # counter.x / counter.y
STAGE_CORDIC = "cordic"
STAGE_CORDIC_ITER = "cordic.iter"  # cordic.iter.0 … cordic.iter.N-1
STAGE_REQUEST = "service.request"  # one HeadingService request
STAGE_ATTEMPT = "service.attempt"  # service.attempt.<replica>.<n>
STAGE_FLEET_REQUEST = "fleet.request"    # one fleet front-door request
STAGE_FLEET_DISPATCH = "fleet.dispatch"  # fleet.dispatch.<shard>

AttributeValue = Union[str, int, float, bool, None]


@dataclass
class Span:
    """One traced operation: a named interval with attributes.

    Spans form a tree: ``parent_id`` is ``None`` for a root (one
    measurement), children are recorded in creation order.  Attributes
    are scalar-valued (str/int/float/bool) so every sink can serialise
    them without a schema.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    depth: int
    start_s: float
    end_s: Optional[float] = None
    attributes: Dict[str, AttributeValue] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    status: str = "ok"

    @property
    def duration_s(self) -> float:
        """Span duration [s]; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    def set(self, **attributes: AttributeValue) -> "Span":
        """Attach (or overwrite) attributes on this span."""
        self.attributes.update(attributes)
        return self

    def walk(self) -> List["Span"]:
        """This span and every descendant, depth-first pre-order."""
        spans = [self]
        for child in self.children:
            spans.extend(child.walk())
        return spans

    def to_dict(self) -> Dict:
        """Flat JSON-friendly record (children referenced by parent_id)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


class _NullSpan:
    """Reusable no-op stand-in for a span when tracing is disabled.

    Stateless, so one shared instance can be nested and re-entered
    freely; ``set`` swallows attributes that were never computed lazily
    by the caller (call sites must keep their own work behind an
    ``enabled`` check when it is expensive).
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attributes: AttributeValue) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager binding one :class:`Span` to a :class:`Tracer`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.status = "error"
            self._span.attributes.setdefault("error", repr(exc))
        self._tracer._finish(self._span)


class SpanSink:
    """Receives every finished span; subclass for new back-ends."""

    def emit(self, span: Span) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush/close underlying resources (default: nothing)."""


class RingBufferSink(SpanSink):
    """Keeps the most recent finished *root* spans in memory.

    The natural unit of inspection is one measurement (one root span
    with its whole subtree); bounding the buffer by roots keeps the
    memory footprint proportional to recent measurements, not to span
    fan-out.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ConfigurationError("ring buffer capacity must be >= 1")
        self.capacity = capacity
        self._roots: List[Span] = []

    def emit(self, span: Span) -> None:
        if span.parent_id is not None:
            return  # children arrive attached to their root
        self._roots.append(span)
        if len(self._roots) > self.capacity:
            del self._roots[: len(self._roots) - self.capacity]

    @property
    def roots(self) -> Tuple[Span, ...]:
        """Buffered root spans, oldest first."""
        return tuple(self._roots)

    def clear(self) -> None:
        self._roots.clear()


class JSONLSink(SpanSink):
    """Appends one JSON object per finished span to a file (or handle).

    Children are emitted before their parent (completion order), so a
    consumer can rebuild trees by ``parent_id`` once the root arrives.
    """

    def __init__(self, path_or_handle: Union[str, IO[str]]):
        if isinstance(path_or_handle, str):
            self._handle: IO[str] = open(path_or_handle, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = path_or_handle
            self._owns_handle = False

    def emit(self, span: Span) -> None:
        self._handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class VCDSink(SpanSink):
    """Renders span activity as waveforms via :class:`VCDWriter`.

    Each distinct span name becomes a 1-bit wire that is high while a
    span of that name is active — the software equivalent of probing the
    block-enable nets of Figure 1 in GTKWave.  Timestamps are wall-clock
    nanoseconds relative to the earliest span seen.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        timescale_ns: float = 1000.0,
        module: str = "observe",
    ):
        self.path = path
        self.writer = VCDWriter(timescale_ns=timescale_ns, module=module)
        self._roots: List[Span] = []

    def emit(self, span: Span) -> None:
        # Children finish before their root, so the time origin (the
        # earliest root start) is only known once trees are complete;
        # buffer roots and render on close/render().
        if span.parent_id is None and span.finished:
            self._roots.append(span)

    def render(self) -> str:
        """The VCD document for every buffered measurement tree."""
        if not self._roots:
            raise ConfigurationError("VCD sink saw no finished root spans")
        t0 = min(root.start_s for root in self._roots)
        for root in self._roots:
            for span in root.walk():
                if span.name not in self.writer._signals:
                    self.writer.add_wire(span.name)
                self.writer.record(span.start_s - t0, span.name, 1)
                self.writer.record(span.end_s - t0, span.name, 0)
        self._roots.clear()
        return self.writer.render()

    def close(self) -> None:
        if self.path is not None and self._roots:
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(self.render())


class Tracer:
    """Emits well-nested spans describing one compass's activity.

    Usage::

        tracer = Tracer(sinks=[RingBufferSink()])
        with tracer.span("measure", path="scalar") as root:
            with tracer.span("channel.x", channel="x") as ch:
                ch.set(edges=18)
            root.set(heading_deg=45.0)

    Nesting is tracked with an explicit stack, so spans are *always*
    well nested and balanced — the property-test suite drives arbitrary
    interleavings through this class and asserts exactly that.
    """

    def __init__(
        self,
        sinks: Optional[List[SpanSink]] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.sinks: List[SpanSink] = list(sinks) if sinks else []
        self._clock = clock
        self._stack: List[Span] = []
        self._next_id = 0
        self._finished_spans = 0

    # -- span lifecycle --------------------------------------------------------

    def span(self, name: str, **attributes: AttributeValue) -> _ActiveSpan:
        """Open a child span of the innermost active span."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            depth=len(self._stack),
            start_s=self._clock(),
            attributes=dict(attributes),
        )
        self._next_id += 1
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ConfigurationError(
                f"span {span.name!r} closed out of order; the tracer "
                "stack is corrupted"
            )
        self._stack.pop()
        span.end_s = self._clock()
        self._finished_spans += 1
        for sink in self.sinks:
            sink.emit(span)

    # -- bookkeeping -----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    @property
    def balanced(self) -> bool:
        """True when every opened span has been closed."""
        return not self._stack

    @property
    def finished_spans(self) -> int:
        """Total spans closed over this tracer's lifetime."""
        return self._finished_spans

    def add_sink(self, sink: SpanSink) -> None:
        self.sinks.append(sink)

    def close(self) -> None:
        """Close every sink (flushes files, writes the VCD)."""
        if self._stack:
            raise ConfigurationError(
                f"cannot close tracer with {len(self._stack)} open span(s)"
            )
        for sink in self.sinks:
            sink.close()


def validate_tree(root: Span) -> None:
    """Assert the structural invariants of one finished span tree.

    Raises :class:`ConfigurationError` on the first violation; used by
    tests and by ``repro trace`` before rendering.  Invariants:

    * every span is finished with ``end_s >= start_s``,
    * every child's interval nests inside its parent's,
    * depths increase by exactly one per tree level,
    * ``parent_id`` links match the containment structure.
    """
    for span in root.walk():
        if not span.finished:
            raise ConfigurationError(f"span {span.name!r} never finished")
        if span.end_s < span.start_s:
            raise ConfigurationError(f"span {span.name!r} ends before it starts")
        for child in span.children:
            if child.parent_id != span.span_id:
                raise ConfigurationError(
                    f"span {child.name!r} parent link does not match the tree"
                )
            if child.depth != span.depth + 1:
                raise ConfigurationError(
                    f"span {child.name!r} depth {child.depth} under parent "
                    f"depth {span.depth}"
                )
            if child.start_s < span.start_s or (
                child.end_s is not None
                and span.end_s is not None
                and child.end_s > span.end_s
            ):
                raise ConfigurationError(
                    f"span {child.name!r} interval escapes its parent "
                    f"{span.name!r}"
                )
