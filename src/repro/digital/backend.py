"""The complete digital back-end of Figure 1 (§4).

Counter + CORDIC + control logic + display + watch, composed exactly as
the block diagram shows: the back-end consumes the two detector outputs
(one per multiplexed channel slot), produces the integer pair (x, y), runs
the arctangent, and hands the result to the display driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..analog.mux import MeasurementSchedule
from ..analog.pulse_detector import DetectorOutput
from ..errors import ProtocolError
from ..observe import DISABLED, Observer
from ..observe.trace import (
    STAGE_BACKEND,
    STAGE_CORDIC,
    STAGE_CORDIC_ITER,
    STAGE_COUNTER,
)
from ..units import CORDIC_ITERATIONS, EXCITATION_FREQUENCY_HZ
from .control import CompassController
from .cordic import CordicArctan, CordicStep
from .counter import CounterConfig, CountResult, UpDownCounter
from .display import DisplayDriver, DisplayFrame
from .watch import WatchTimekeeper


@dataclass(frozen=True)
class BackEndResult:
    """One complete digital measurement."""

    x_count: int
    y_count: int
    heading_deg: float
    cordic_cycles: int
    x_result: CountResult
    y_result: CountResult
    #: Per-iteration CORDIC state; populated only when a tracer or
    #: replay recorder asked the datapath to record its steps.
    cordic_steps: Tuple[CordicStep, ...] = ()


class DigitalBackEnd:
    """Pulse count + arctan + control + watch/display (Figure 1 right)."""

    #: Minimum counter magnitude (on the larger axis) for a heading to be
    #: trusted: below this the counts are dominated by the ±1 window
    #: quantisation and the arctangent would be noise.  16 counts is
    #: ~0.4 % of the default 8-period full scale (≈ 0.3 µT) — far below
    #: any terrestrial operating point.
    MINIMUM_COUNT = 16

    def __init__(
        self,
        counter_config: CounterConfig = CounterConfig(),
        cordic_iterations: int = CORDIC_ITERATIONS,
        schedule: MeasurementSchedule = MeasurementSchedule(),
        excitation_frequency_hz: Optional[float] = None,
    ):
        self.counter = UpDownCounter(counter_config)
        self.cordic = CordicArctan(iterations=cordic_iterations)
        # The sequencer is clocked off the excitation oscillator (a
        # comparator on the triangle wave), so its state durations track
        # the *actual* RC-drifted frequency, not the design constant.
        # That drift is what makes the measurement period usable as an
        # on-chip thermometer (repro.scenario's oscillator cross-check).
        self.controller = CompassController(
            schedule=schedule,
            excitation_frequency_hz=(
                EXCITATION_FREQUENCY_HZ
                if excitation_frequency_hz is None
                else excitation_frequency_hz
            ),
            cordic_iterations=cordic_iterations,
            clock_hz=counter_config.clock_hz,
        )
        self.display = DisplayDriver()
        self.watch = WatchTimekeeper(crystal_hz=counter_config.clock_hz)
        self.schedule = schedule
        self._last_result: Optional[BackEndResult] = None
        #: Set by the owning compass; DISABLED keeps this path span-free.
        self.observer: Observer = DISABLED

    def process_measurement(
        self,
        detector_x: DetectorOutput,
        detector_y: DetectorOutput,
        window_x: Optional[Tuple[float, float]] = None,
        window_y: Optional[Tuple[float, float]] = None,
    ) -> BackEndResult:
        """Count both channels and compute the heading.

        The controller sequences the power enables; the counter integrates
        each channel over its (settled) window; the CORDIC turns the
        integer pair into a heading.
        """
        observer = self.observer
        tracing = observer.tracer is not None
        record_steps = tracing or observer.recorder is not None
        with observer.span(STAGE_BACKEND):
            self.controller.run_measurement()
            self.counter.enable()
            with observer.span(f"{STAGE_COUNTER}.x", channel="x") as span_x:
                x_result = self.counter.count_window(detector_x, window_x)
                span_x.set(count=x_result.count, ticks=x_result.total_ticks)
            with observer.span(f"{STAGE_COUNTER}.y", channel="y") as span_y:
                y_result = self.counter.count_window(detector_y, window_y)
                span_y.set(count=y_result.count, ticks=y_result.total_ticks)
            self.counter.disable()

            if max(abs(x_result.count), abs(y_result.count)) < self.MINIMUM_COUNT:
                raise ProtocolError(
                    f"field too weak: counter pair ({x_result.count}, "
                    f"{y_result.count}) below the {self.MINIMUM_COUNT}-count "
                    "trust threshold — no heading computed"
                )
            with observer.span(STAGE_CORDIC) as cordic_span:
                cordic_result = self.cordic.arctan_first_quadrant(
                    abs(-y_result.count), abs(x_result.count),
                    record_steps=record_steps,
                )
                heading = self.cordic.heading_degrees(
                    x_result.count, y_result.count
                )
                cordic_span.set(
                    iterations=cordic_result.cycles,
                    angle_deg=cordic_result.angle_deg,
                    heading_deg=heading,
                )
                for step in cordic_result.steps:
                    # Retrospective per-iteration spans: the datapath is
                    # combinational, so structure (not wall time) is the
                    # information — residuals sensitise ROM/datapath bugs.
                    with observer.span(
                        f"{STAGE_CORDIC_ITER}.{step.iteration}"
                    ) as it:
                        it.set(
                            shift=step.shift,
                            rotated=step.rotated,
                            residual_y=step.y_reg,
                            x_reg=step.x_reg,
                            angle_fixed=step.angle_fixed,
                        )

        result = BackEndResult(
            x_count=x_result.count,
            y_count=y_result.count,
            heading_deg=heading,
            cordic_cycles=cordic_result.cycles,
            x_result=x_result,
            y_result=y_result,
            cordic_steps=cordic_result.steps,
        )
        self._last_result = result
        return result

    @property
    def last_result(self) -> Optional[BackEndResult]:
        return self._last_result

    def render_display(self) -> DisplayFrame:
        """Render the LCD with the latest heading (or the time)."""
        heading = self._last_result.heading_deg if self._last_result else 0.0
        return self.display.render(
            heading_deg=heading,
            hours=self.watch.time.hours,
            minutes=self.watch.time.minutes,
            blink_phase=self.watch.blink_phase,
        )
