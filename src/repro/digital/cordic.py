"""Bit-accurate CORDIC-like arctangent datapath (Figure 8, §4).

"The arctangent part gets an x- and an y-value from the up-down counter
and computes arctan(x/y), using a cordic-like algorithm [Spa76].  It used
only 8 cycles to calculate the direction with an accuracy of one degree."

The VHDL of Figure 8, transliterated:

.. code-block:: vhdl

    y_reg := y * 128;  x_reg := x * 128;
    res := 0;  count := 0;  shift := 1;
    while count /= 8 loop
      if y_reg >= (x_reg / shift) then
        y_reg := y_prev - x_prev / shift;
        x_reg := x_prev + y_prev / shift;
        res   := res + atanrom(shift);
      end if;
      count := count + 1;  shift := shift * 2;
    end loop;

Properties worth noting (all reproduced bit-exactly here):

* the rotations are **greedy and unidirectional** — the datapath only
  rotates clockwise, when doing so keeps ``y`` non-negative; this saves
  the sign-tracking of a conventional CORDIC at the cost of a slightly
  larger residual,
* the ``·128`` input scaling provides 7 fractional bits so the truncating
  integer divisions by ``shift`` (up to 128) do not starve late
  iterations,
* the angle accumulates in ROM units (fixed-point degrees),
* the quadrant is recovered from the input signs before the core runs —
  this is the "calculation method is insensitive to local variations of
  the magnitude of the earths magnetic field" (§4): only the *ratio* of
  the counter values enters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError, ProtocolError
from ..units import CORDIC_ITERATIONS
from .atan_rom import ANGLE_FRAC_BITS, build_rom, max_representable_angle_deg
from .fixed_point import from_fixed, require_fits, truncating_shift_right


@dataclass(frozen=True)
class CordicStep:
    """State after one CORDIC iteration (for tests and the FIG8 bench)."""

    iteration: int
    shift: int
    rotated: bool
    x_reg: int
    y_reg: int
    angle_fixed: int


@dataclass(frozen=True)
class CordicResult:
    """Output of one arctangent computation."""

    angle_deg: float
    angle_fixed: int
    cycles: int
    steps: Tuple[CordicStep, ...]


class CordicArctan:
    """The Figure 8 datapath with configurable precision knobs.

    Parameters
    ----------
    iterations:
        Number of rotation cycles; the paper uses 8.  §4: "The pulse count
        part and the arctan part can be modified easily to compute the
        direction with an arbitrary precision" — raising this is that
        modification.
    input_scale_bits:
        The pre-shift applied to the counter inputs (7 → the paper's
        ``· 128``).
    angle_frac_bits:
        Fixed-point resolution of the angle accumulator and ROM.
    register_width:
        Width of the x/y working registers; overflow raises
        :class:`~repro.errors.ProtocolError` like a lint-stage assertion
        in the original design flow would.
    """

    def __init__(
        self,
        iterations: int = CORDIC_ITERATIONS,
        input_scale_bits: int = 7,
        angle_frac_bits: int = ANGLE_FRAC_BITS,
        register_width: int = 24,
    ):
        if iterations < 1:
            raise ConfigurationError("need at least one CORDIC iteration")
        if not 0 <= input_scale_bits <= 16:
            raise ConfigurationError("input scale bits must be 0..16")
        self.iterations = iterations
        self.input_scale_bits = input_scale_bits
        self.angle_frac_bits = angle_frac_bits
        self.register_width = register_width
        self.rom = build_rom(iterations, angle_frac_bits)

    # -- core first-quadrant datapath ------------------------------------------

    def arctan_first_quadrant(
        self, y: int, x: int, record_steps: bool = False
    ) -> CordicResult:
        """``atan(y/x)`` for non-negative integer inputs, bit-accurate.

        Raises
        ------
        ProtocolError
            If both inputs are zero (no field — the hardware flags this as
            an invalid measurement) or a register overflows.
        """
        if y < 0 or x < 0:
            raise ConfigurationError(
                "first-quadrant datapath needs non-negative inputs; "
                "use arctan_degrees for signed values"
            )
        if y == 0 and x == 0:
            raise ProtocolError("arctan(0/0): no field measured on either axis")

        width = self.register_width
        y_reg = require_fits(y << self.input_scale_bits, width, "y_reg")
        x_reg = require_fits(x << self.input_scale_bits, width, "x_reg")
        res = 0
        steps: List[CordicStep] = []

        for i in range(self.iterations):
            rotated = False
            if y_reg >= truncating_shift_right(x_reg, i):
                y_prev, x_prev = y_reg, x_reg
                y_reg = y_prev - truncating_shift_right(x_prev, i)
                x_reg = x_prev + truncating_shift_right(y_prev, i)
                require_fits(x_reg, width, "x_reg")
                require_fits(y_reg, width, "y_reg")
                res += self.rom[i]
                rotated = True
            if record_steps:
                steps.append(
                    CordicStep(
                        iteration=i,
                        shift=1 << i,
                        rotated=rotated,
                        x_reg=x_reg,
                        y_reg=y_reg,
                        angle_fixed=res,
                    )
                )

        return CordicResult(
            angle_deg=from_fixed(res, self.angle_frac_bits),
            angle_fixed=res,
            cycles=self.iterations,
            steps=tuple(steps),
        )

    # -- full-circle wrappers -------------------------------------------------

    def arctan_degrees(self, y: int, x: int) -> float:
        """Four-quadrant ``atan2(y, x)`` in compass range [0, 360) degrees.

        The quadrant folder is two sign checks and a subtraction — the
        cheap combinational logic wrapped around the Figure 8 core.
        """
        core = self.arctan_first_quadrant(abs(y), abs(x)).angle_deg
        if x >= 0 and y >= 0:
            angle = core
        elif x < 0 <= y:
            angle = 180.0 - core
        elif x < 0 and y < 0:
            angle = 180.0 + core
        else:
            angle = 360.0 - core
        return angle % 360.0

    def heading_degrees(self, x_count: int, y_count: int) -> float:
        """Compass heading from the two up-down counter values [degrees].

        With the conventions of :mod:`repro.sensors.pair` —
        ``x_count ∝ H·cos(heading)``, ``y_count ∝ −H·sin(heading)`` — the
        heading is ``atan2(−y_count, x_count)`` mapped to [0, 360).
        """
        return self.arctan_degrees(-y_count, x_count)

    # -- characterisation helpers ------------------------------------------------

    def max_angle_deg(self) -> float:
        """Largest first-quadrant angle the datapath can emit."""
        return max_representable_angle_deg(self.iterations, self.angle_frac_bits)

    def worst_case_error_deg(
        self, magnitude: int = 1000, step_deg: float = 0.25
    ) -> float:
        """Empirical worst-case heading error over a dense angle sweep.

        Sweeps ideal integer inputs of a given magnitude around the full
        circle and compares against ``math.atan2`` — the experiment behind
        the paper's "accuracy of one degree" claim (bench FIG8).
        """
        if magnitude < 1:
            raise ConfigurationError("magnitude must be >= 1")
        worst = 0.0
        angle = 0.0
        while angle < 360.0:
            rad = math.radians(angle)
            x = int(round(magnitude * math.cos(rad)))
            y = int(round(magnitude * math.sin(rad)))
            if x == 0 and y == 0:
                angle += step_deg
                continue
            got = self.arctan_degrees(y, x)
            ref = math.degrees(math.atan2(y, x)) % 360.0
            err = abs((got - ref + 180.0) % 360.0 - 180.0)
            worst = max(worst, err)
            angle += step_deg
        return worst


def greedy_arctan_float(y: float, x: float, iterations: int) -> float:
    """The same greedy algorithm with an infinite-precision datapath.

    Separates the *algorithmic* residual (greedy unidirectional rotations)
    from the *quantisation* residual (the ``·128`` scaling and truncating
    divisions) in the FIG8 ablation.
    """
    if y < 0.0 or x < 0.0:
        raise ConfigurationError("first-quadrant inputs required")
    if y == 0.0 and x == 0.0:
        raise ProtocolError("arctan(0/0) undefined")
    res = 0.0
    for i in range(iterations):
        scale = 2.0**-i
        if y >= x * scale:
            y, x = y - x * scale, x + y * scale
            res += math.degrees(math.atan(scale))
    return res
