"""LCD display driver (§4).

"The digital part contains also common watch options as added features.
The display driver selects either the direction or the time to display."

The driver models a four-digit seven-segment LCD (the classic compass-
watch glass): segment encoding, display multiplexing between DIRECTION and
TIME modes, and the formatting rules:

* DIRECTION mode shows the heading as three digits (``000``–``359``) plus
  a cardinal letter in the leftmost digit (N/E/S/W for the nearest
  cardinal),
* TIME mode shows ``HH:MM`` with the colon driven by the 1 Hz blink
  signal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ConfigurationError
from ..units import wrap_degrees

#: Segment bit order: (a, b, c, d, e, f, g) packed LSB-first into an int.
SEGMENT_NAMES = ("a", "b", "c", "d", "e", "f", "g")

#: Seven-segment glyphs.  Digits plus the letters the compass needs.
_GLYPHS: Dict[str, int] = {
    "0": 0b0111111,
    "1": 0b0000110,
    "2": 0b1011011,
    "3": 0b1001111,
    "4": 0b1100110,
    "5": 0b1101101,
    "6": 0b1111101,
    "7": 0b0000111,
    "8": 0b1111111,
    "9": 0b1101111,
    "N": 0b0110111,  # approximated as an inverted-U on 7 segments
    "E": 0b1111001,
    "S": 0b1101101,  # same glyph as 5
    "W": 0b0111110,  # approximated as a U (shared with V)
    "-": 0b1000000,
    " ": 0b0000000,
}


def encode_glyph(char: str) -> int:
    """Seven-segment pattern for one character (LSB = segment a)."""
    if char not in _GLYPHS:
        known = "".join(sorted(_GLYPHS))
        raise ConfigurationError(f"no 7-segment glyph for {char!r}; have {known!r}")
    return _GLYPHS[char]


def decode_glyph(pattern: int) -> str:
    """Inverse of :func:`encode_glyph` (first match wins; S/5 alias to '5')."""
    for char, bits in _GLYPHS.items():
        if bits == pattern:
            return char
    raise ConfigurationError(f"unknown segment pattern {pattern:#09b}")


class DisplayMode(enum.Enum):
    """What the driver shows — §4's "direction or the time" selector."""

    DIRECTION = "direction"
    TIME = "time"


CARDINALS = ("N", "E", "S", "W")


def nearest_cardinal(heading_deg: float) -> str:
    """The cardinal letter shown next to the numeric heading."""
    wrapped = wrap_degrees(heading_deg)
    index = int((wrapped + 45.0) // 90.0) % 4
    return CARDINALS[index]


@dataclass(frozen=True)
class DisplayFrame:
    """One rendered frame of the 4-digit LCD.

    Attributes
    ----------
    text:
        Human-readable contents, 4 characters.
    segments:
        Per-digit segment patterns (LSB = segment a).
    colon:
        Whether the colon annunciator is lit.
    """

    text: str
    segments: Tuple[int, int, int, int]
    colon: bool


class DisplayDriver:
    """Formats headings and times into LCD frames."""

    DIGITS = 4

    def __init__(self) -> None:
        self.mode = DisplayMode.DIRECTION

    def select_mode(self, mode: DisplayMode) -> None:
        if not isinstance(mode, DisplayMode):
            raise ConfigurationError(f"not a display mode: {mode!r}")
        self.mode = mode

    def toggle_mode(self) -> DisplayMode:
        """The watch's mode button."""
        self.mode = (
            DisplayMode.TIME
            if self.mode is DisplayMode.DIRECTION
            else DisplayMode.DIRECTION
        )
        return self.mode

    # -- rendering ------------------------------------------------------------

    def _frame_from_text(self, text: str, colon: bool) -> DisplayFrame:
        if len(text) != self.DIGITS:
            raise ConfigurationError(f"display text must be 4 chars: {text!r}")
        segments = tuple(encode_glyph(c) for c in text)
        return DisplayFrame(text=text, segments=segments, colon=colon)

    def render_direction(self, heading_deg: float) -> DisplayFrame:
        """DIRECTION mode: cardinal letter + rounded 3-digit heading.

        359.7° rounds to 000, not 360 — the display wraps with the
        compass.
        """
        wrapped = wrap_degrees(heading_deg)
        rounded = int(round(wrapped)) % 360
        text = f"{nearest_cardinal(wrapped)}{rounded:03d}"
        return self._frame_from_text(text, colon=False)

    def render_time(self, hours: int, minutes: int, blink_phase: bool = True) -> DisplayFrame:
        """TIME mode: HH:MM with the 1 Hz colon blink."""
        if not 0 <= hours <= 23 or not 0 <= minutes <= 59:
            raise ConfigurationError(f"invalid time {hours:02d}:{minutes:02d}")
        text = f"{hours:02d}{minutes:02d}"
        return self._frame_from_text(text, colon=blink_phase)

    def render(
        self,
        heading_deg: float,
        hours: int,
        minutes: int,
        blink_phase: bool = True,
    ) -> DisplayFrame:
        """Render whatever the current mode selects."""
        if self.mode is DisplayMode.DIRECTION:
            return self.render_direction(heading_deg)
        return self.render_time(hours, minutes, blink_phase)
