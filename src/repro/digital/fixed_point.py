"""Fixed-point register arithmetic helpers for the digital section.

The compass's digital datapath (Figure 8) is integer hardware: counter
values scaled by 128 (7 fractional bits), shift-and-add pseudo-rotations,
and an angle accumulator fed from a ROM.  These helpers capture the
register semantics — width checks, two's-complement wrapping, truncating
shifts — so the CORDIC and counter models are bit-accurate rather than
float approximations.
"""

from __future__ import annotations

from ..errors import ConfigurationError, ProtocolError


def check_bits(bits: int) -> None:
    """Validate a register width."""
    if not isinstance(bits, int) or bits < 1 or bits > 64:
        raise ConfigurationError(f"register width {bits!r} out of range 1..64")


def signed_min(bits: int) -> int:
    """Most negative value of a signed register."""
    check_bits(bits)
    return -(1 << (bits - 1))


def signed_max(bits: int) -> int:
    """Most positive value of a signed register."""
    check_bits(bits)
    return (1 << (bits - 1)) - 1


def fits_signed(value: int, bits: int) -> bool:
    """Whether ``value`` is representable in a signed register."""
    return signed_min(bits) <= value <= signed_max(bits)


def wrap_signed(value: int, bits: int) -> int:
    """Two's-complement wrap of ``value`` into ``bits`` bits.

    This is what a hardware register does on overflow; the counter model
    uses it in non-strict mode.
    """
    check_bits(bits)
    mask = (1 << bits) - 1
    wrapped = value & mask
    if wrapped > signed_max(bits):
        wrapped -= 1 << bits
    return wrapped


def saturate_signed(value: int, bits: int) -> int:
    """Clamp ``value`` to the signed register range."""
    return max(signed_min(bits), min(signed_max(bits), value))


def require_fits(value: int, bits: int, register: str) -> int:
    """Assert a value fits a register, naming the register in the error."""
    if not fits_signed(value, bits):
        raise ProtocolError(
            f"register {register!r} ({bits} bits) overflowed with value {value}"
        )
    return value


def truncating_shift_right(value: int, shift: int) -> int:
    """Shift right with truncation toward zero — VHDL integer division.

    Figure 8 divides registers by ``shift`` with VHDL ``/``, which rounds
    toward zero for both signs; Python's ``>>`` floors instead, so
    negative operands need the explicit form.
    """
    if shift < 0:
        raise ConfigurationError("shift must be non-negative")
    divisor = 1 << shift
    quotient = abs(value) >> shift
    return -quotient if value < 0 else quotient


def to_fixed(value: float, frac_bits: int) -> int:
    """Quantise a real value to a fixed-point integer (round to nearest)."""
    if frac_bits < 0:
        raise ConfigurationError("fractional bits must be non-negative")
    return int(round(value * (1 << frac_bits)))


def from_fixed(value: int, frac_bits: int) -> float:
    """Fixed-point integer back to a real value."""
    if frac_bits < 0:
        raise ConfigurationError("fractional bits must be non-negative")
    return value / float(1 << frac_bits)
