"""Watch timekeeping (§4's "common watch options as added features").

The counter clock of 4.194304 MHz is 2^22 Hz — the standard watch-crystal
family — so a 22-stage ripple divider yields exactly 1 Hz.  This module
implements that divider chain bit-accurately plus the time-of-day counter,
a settable alarm and a stopwatch: the feature set of a 1997 compass watch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError, ProtocolError
from ..units import COUNTER_CLOCK_HZ

#: 2^22 Hz → 1 Hz needs exactly 22 divider stages.
DIVIDER_STAGES = 22


class RippleDivider:
    """A chain of divide-by-two stages clocked at the crystal rate.

    Bit-accurate: the stage outputs are the bits of an up-counter, and the
    1 Hz tick is the carry out of the last stage.
    """

    def __init__(self, stages: int = DIVIDER_STAGES):
        if not 1 <= stages <= 32:
            raise ConfigurationError("divider stages must be 1..32")
        self.stages = stages
        self._count = 0

    @property
    def modulus(self) -> int:
        return 1 << self.stages

    @property
    def count(self) -> int:
        """Current divider state (the raw counter bits)."""
        return self._count

    def stage_output(self, stage: int) -> int:
        """Logic level of one divider stage (0-indexed)."""
        if not 0 <= stage < self.stages:
            raise ConfigurationError(f"stage {stage} out of range")
        return (self._count >> stage) & 1

    def clock(self, cycles: int = 1) -> int:
        """Advance by ``cycles`` crystal periods; return 1 Hz ticks emitted."""
        if cycles < 0:
            raise ConfigurationError("cannot clock backwards")
        total = self._count + cycles
        ticks = total // self.modulus
        self._count = total % self.modulus
        return ticks

    def output_frequency_hz(self, crystal_hz: float = COUNTER_CLOCK_HZ) -> float:
        """Frequency of the final stage [Hz]."""
        return crystal_hz / self.modulus


@dataclass
class TimeOfDay:
    """A 24-hour wall-clock value."""

    hours: int = 0
    minutes: int = 0
    seconds: int = 0

    def __post_init__(self) -> None:
        if not (0 <= self.hours <= 23 and 0 <= self.minutes <= 59 and 0 <= self.seconds <= 59):
            raise ConfigurationError(
                f"invalid time {self.hours:02d}:{self.minutes:02d}:{self.seconds:02d}"
            )

    def advance(self, seconds: int) -> "TimeOfDay":
        """A new time ``seconds`` later (wraps at midnight)."""
        if seconds < 0:
            raise ConfigurationError("time only advances")
        total = (self.hours * 3600 + self.minutes * 60 + self.seconds + seconds) % 86400
        return TimeOfDay(total // 3600, (total % 3600) // 60, total % 60)

    def total_seconds(self) -> int:
        return self.hours * 3600 + self.minutes * 60 + self.seconds

    def __str__(self) -> str:
        return f"{self.hours:02d}:{self.minutes:02d}:{self.seconds:02d}"


class Stopwatch:
    """A 1/100 s stopwatch driven from the divider chain.

    The hardware taps the divider 7 stages up from 1 Hz (2^7 = 128 Hz) and
    scales; we model centiseconds directly from crystal cycles.
    """

    def __init__(self, crystal_hz: float = COUNTER_CLOCK_HZ):
        self.crystal_hz = crystal_hz
        self._running = False
        self._elapsed_cycles = 0

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            raise ProtocolError("stopwatch already running")
        self._running = True

    def stop(self) -> None:
        if not self._running:
            raise ProtocolError("stopwatch not running")
        self._running = False

    def reset(self) -> None:
        if self._running:
            raise ProtocolError("stop the stopwatch before resetting")
        self._elapsed_cycles = 0

    def clock(self, cycles: int) -> None:
        """Feed crystal cycles; they accumulate only while running."""
        if cycles < 0:
            raise ConfigurationError("cannot clock backwards")
        if self._running:
            self._elapsed_cycles += cycles

    @property
    def elapsed_seconds(self) -> float:
        return self._elapsed_cycles / self.crystal_hz

    @property
    def centiseconds(self) -> int:
        """Displayed value: whole centiseconds."""
        return int(self.elapsed_seconds * 100.0)


class WatchTimekeeper:
    """Divider + time-of-day + alarm: the watch core of the compass chip."""

    def __init__(self, crystal_hz: float = COUNTER_CLOCK_HZ):
        if crystal_hz <= 0.0:
            raise ConfigurationError("crystal frequency must be positive")
        self.crystal_hz = crystal_hz
        self.divider = RippleDivider()
        self.time = TimeOfDay()
        self.alarm_time: Optional[TimeOfDay] = None
        self.alarm_fired = False
        self.stopwatch = Stopwatch(crystal_hz)

    # -- setting -----------------------------------------------------------

    def set_time(self, hours: int, minutes: int, seconds: int = 0) -> None:
        self.time = TimeOfDay(hours, minutes, seconds)

    def set_alarm(self, hours: int, minutes: int) -> None:
        self.alarm_time = TimeOfDay(hours, minutes, 0)
        self.alarm_fired = False

    def clear_alarm(self) -> None:
        self.alarm_time = None
        self.alarm_fired = False

    # -- running -----------------------------------------------------------

    def clock(self, cycles: int) -> int:
        """Advance by crystal cycles; returns the 1 Hz ticks produced."""
        ticks = self.divider.clock(cycles)
        self.stopwatch.clock(cycles)
        if ticks > 0:
            old = self.time
            self.time = self.time.advance(ticks)
            if self.alarm_time is not None and not self.alarm_fired:
                if self._crossed_alarm(old, ticks):
                    self.alarm_fired = True
        return ticks

    def advance_seconds(self, seconds: int) -> None:
        """Convenience: clock forward a whole number of seconds."""
        if seconds < 0:
            raise ConfigurationError("time only advances")
        self.clock(int(seconds * int(self.crystal_hz)))

    def _crossed_alarm(self, old: TimeOfDay, ticks: int) -> bool:
        alarm_s = self.alarm_time.total_seconds()
        start_s = old.total_seconds()
        offset = (alarm_s - start_s) % 86400
        # Alarm at the current second counts as crossed only if we moved.
        return 0 < offset <= ticks or (offset == 0 and ticks >= 86400)

    @property
    def blink_phase(self) -> bool:
        """The 1 Hz colon-blink signal: the divider's last stage."""
        return bool(self.divider.stage_output(self.divider.stages - 1))
