"""Digital back-end: counter, CORDIC, control, display, watch."""

from .atan_rom import (
    ANGLE_FRAC_BITS,
    algorithmic_residual_deg,
    build_rom,
    max_representable_angle_deg,
    rotation_angle_deg,
)
from .backend import BackEndResult, DigitalBackEnd
from .bcd import BCDChain, BCDDigit, BCDTimeCounter
from .control import CompassController, ControllerState, EnableSignals
from .cordic import CordicArctan, CordicResult, CordicStep, greedy_arctan_float
from .counter import CounterConfig, CountResult, UpDownCounter
from .display import (
    CARDINALS,
    DisplayDriver,
    DisplayFrame,
    DisplayMode,
    decode_glyph,
    encode_glyph,
    nearest_cardinal,
)
from .fixed_point import (
    fits_signed,
    from_fixed,
    require_fits,
    saturate_signed,
    to_fixed,
    truncating_shift_right,
    wrap_signed,
)
from .watch import (
    DIVIDER_STAGES,
    RippleDivider,
    Stopwatch,
    TimeOfDay,
    WatchTimekeeper,
)

__all__ = [
    "ANGLE_FRAC_BITS",
    "BackEndResult",
    "BCDChain",
    "BCDDigit",
    "BCDTimeCounter",
    "CARDINALS",
    "CompassController",
    "ControllerState",
    "CordicArctan",
    "CordicResult",
    "CordicStep",
    "CountResult",
    "CounterConfig",
    "DIVIDER_STAGES",
    "DigitalBackEnd",
    "DisplayDriver",
    "DisplayFrame",
    "DisplayMode",
    "EnableSignals",
    "RippleDivider",
    "Stopwatch",
    "TimeOfDay",
    "UpDownCounter",
    "WatchTimekeeper",
    "algorithmic_residual_deg",
    "build_rom",
    "decode_glyph",
    "encode_glyph",
    "fits_signed",
    "from_fixed",
    "greedy_arctan_float",
    "max_representable_angle_deg",
    "nearest_cardinal",
    "require_fits",
    "rotation_angle_deg",
    "saturate_signed",
    "to_fixed",
    "truncating_shift_right",
    "wrap_signed",
]
