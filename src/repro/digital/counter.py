"""The high-speed up-down counter of the digital section (§4).

"The pulse count part contains a high-frequency (4.194304 MHz) up-down
counter, which transforms the output of the pulse detector into two
integer values x and y, each indicating the field component of the x- and
y-sensor."

Operating principle: the counter samples the pulse-position latch every
clock tick, counting **up while the latch is high and down while it is
low**.  Over a window of ``n`` ticks containing a duty cycle ``D`` the
count converges to ``n·(2·D − 1)``; with the triangular excitation duty
``D = 1/2 + H_ext/(2·Ha)`` the count is ``n·H_ext/Ha`` — a signed integer
directly proportional to the field component, with the no-field 50 % duty
exactly cancelled.

The model is exact rather than tick-looped: the number of clock ticks that
fall inside each latch-high interval is a floor-difference, so counts are
bit-identical to sampling 4.2 million times per second without doing so.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..analog.pulse_detector import DetectorOutput
from ..errors import ConfigurationError
from ..units import COUNTER_CLOCK_HZ
from .fixed_point import fits_signed, wrap_signed


@dataclass(frozen=True)
class CounterConfig:
    """Up-down counter hardware parameters.

    Attributes
    ----------
    clock_hz:
        Sampling clock [Hz]; the paper's 4.194304 MHz (= 2^22).
    width_bits:
        Register width; 16 bits comfortably holds the ±4200-count swing of
        an 8-period measurement.
    strict_overflow:
        If true, overflow raises; if false, the register wraps like the
        silicon would.
    """

    clock_hz: float = COUNTER_CLOCK_HZ
    width_bits: int = 16
    strict_overflow: bool = True

    def __post_init__(self) -> None:
        if self.clock_hz <= 0.0:
            raise ConfigurationError("clock frequency must be positive")
        if not 4 <= self.width_bits <= 48:
            raise ConfigurationError("counter width must be 4..48 bits")

    @property
    def tick(self) -> float:
        """Clock period [s]."""
        return 1.0 / self.clock_hz


@dataclass(frozen=True)
class CountResult:
    """Outcome of one counting window."""

    count: int
    total_ticks: int
    high_ticks: int
    overflowed: bool

    @property
    def duty_cycle(self) -> float:
        """Duty cycle as the counter saw it (tick-quantised)."""
        if self.total_ticks == 0:
            raise ConfigurationError("empty counting window")
        return self.high_ticks / self.total_ticks


class UpDownCounter:
    """Bit-accurate model of the 4.194304 MHz up-down counter."""

    def __init__(self, config: CounterConfig = CounterConfig()):
        self.config = config
        self._enabled = True

    # -- power gating (§4) ---------------------------------------------------

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    @property
    def enabled(self) -> bool:
        return self._enabled

    # -- counting ----------------------------------------------------------------

    def _ticks_in(self, t_start: float, t_end: float, t_origin: float) -> int:
        """Number of clock ticks in ``[t_start, t_end)``.

        Ticks occur at ``t_origin + k·T_clk``; the count is an exact
        floor-difference, avoiding a 4.2 MHz sample loop.
        """
        if t_end <= t_start:
            return 0
        tick = self.config.tick
        first = math.ceil((t_start - t_origin) / tick - 1e-12)
        last = math.ceil((t_end - t_origin) / tick - 1e-12)
        return max(0, last - first)

    def count_window(
        self,
        detector: DetectorOutput,
        window: Optional[Tuple[float, float]] = None,
    ) -> CountResult:
        """Integrate the detector output over a window.

        Parameters
        ----------
        detector:
            The pulse-position latch signal.
        window:
            (start, end) [s]; defaults to the detector's own window.  The
        counter is assumed clock-aligned to the window start (the control
        logic releases the counter reset synchronously).
        """
        if not self._enabled:
            raise ConfigurationError("counter is powered down")
        if window is None:
            window = detector.window
        t_start, t_end = window
        if t_end <= t_start:
            raise ConfigurationError("empty counting window")

        total_ticks = self._ticks_in(t_start, t_end, t_start)
        high_ticks = 0
        value = detector.value_at(t_start)
        t_prev = t_start
        for edge in detector.edges:
            if edge.time <= t_start:
                value = edge.value
                continue
            if edge.time >= t_end:
                break
            if value == 1:
                high_ticks += self._ticks_in(t_prev, edge.time, t_start)
            t_prev = edge.time
            value = edge.value
        if value == 1:
            high_ticks += self._ticks_in(t_prev, t_end, t_start)

        count = 2 * high_ticks - total_ticks
        overflowed = not fits_signed(count, self.config.width_bits)
        if overflowed:
            if self.config.strict_overflow:
                raise ConfigurationError(
                    f"counter overflow: {count} does not fit "
                    f"{self.config.width_bits} bits"
                )
            count = wrap_signed(count, self.config.width_bits)
        return CountResult(
            count=count,
            total_ticks=total_ticks,
            high_ticks=high_ticks,
            overflowed=overflowed,
        )

    # -- analytic helpers ---------------------------------------------------------

    def expected_count(self, duty_cycle: float, window_seconds: float) -> float:
        """Ideal (unquantised) count for a duty cycle over a window."""
        if not 0.0 <= duty_cycle <= 1.0:
            raise ConfigurationError("duty cycle must be within [0, 1]")
        ticks = window_seconds * self.config.clock_hz
        return ticks * (2.0 * duty_cycle - 1.0)

    def count_resolution_ticks(self, window_seconds: float) -> int:
        """Total ticks in a window — the count's full-scale reference."""
        if window_seconds <= 0.0:
            raise ConfigurationError("window must be positive")
        return int(round(window_seconds * self.config.clock_hz))
