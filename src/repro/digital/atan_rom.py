"""The arctangent ROM of the CORDIC datapath (Figure 8's ``atanrom``).

Each CORDIC iteration ``i`` rotates by ``atan(1/2^i)``; the ROM stores
those angles as fixed-point integers.  The paper's datapath reaches 1°
accuracy in 8 cycles, which needs the ROM quantisation to sit well below
1°: with 8 fractional bits (1/256°) the worst accumulated ROM error over
8 iterations is ~0.016°, negligible against the algorithmic residual
``atan(1/128) ≈ 0.45°``.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..errors import ConfigurationError
from .fixed_point import from_fixed, to_fixed

#: Fixed-point fractional bits of the angle accumulator (1 LSB = 1/256°).
ANGLE_FRAC_BITS = 8

#: Largest iteration count any configuration of the datapath supports.
MAX_ITERATIONS = 20


def rotation_angle_deg(iteration: int) -> float:
    """Exact rotation angle of iteration ``i``: ``atan(2^-i)`` [degrees]."""
    if iteration < 0:
        raise ConfigurationError("iteration index must be non-negative")
    return math.degrees(math.atan(2.0**-iteration))


def build_rom(
    iterations: int, frac_bits: int = ANGLE_FRAC_BITS
) -> Tuple[int, ...]:
    """Quantised ROM contents for a given iteration count.

    Entry ``i`` is ``round(atan(2^-i) · 2^frac_bits)`` — degrees in
    fixed point, matching the ``res := res + atanrom(shift)`` accumulation
    of Figure 8.
    """
    if not 1 <= iterations <= MAX_ITERATIONS:
        raise ConfigurationError(
            f"iterations must be 1..{MAX_ITERATIONS}, got {iterations}"
        )
    if not 1 <= frac_bits <= 24:
        raise ConfigurationError("frac_bits must be 1..24")
    return tuple(
        to_fixed(rotation_angle_deg(i), frac_bits) for i in range(iterations)
    )


def rom_entry_degrees(entry: int, frac_bits: int = ANGLE_FRAC_BITS) -> float:
    """Convert one ROM word back to degrees."""
    return from_fixed(entry, frac_bits)


def max_representable_angle_deg(
    iterations: int, frac_bits: int = ANGLE_FRAC_BITS
) -> float:
    """Largest angle the greedy accumulation can reach [degrees].

    The sum of all ROM angles; for 8 iterations ≈ 99.9°, comfortably
    covering the 0–90° octant the quadrant folder hands to the core.
    """
    rom = build_rom(iterations, frac_bits)
    return from_fixed(sum(rom), frac_bits)


def algorithmic_residual_deg(iterations: int) -> float:
    """Residual angle resolution after ``n`` iterations [degrees].

    The finest rotation the datapath can apply is the last ROM entry
    ``atan(2^-(n-1))``; headings can be off by up to about half of it even
    with perfect inputs.  For the paper's 8 iterations this is
    ``atan(1/128) ≈ 0.448°`` — the source of the "accuracy of one degree"
    figure.
    """
    return rotation_angle_deg(iterations - 1)
