"""BCD counters — how a watch chip actually counts time.

The time-of-day model in :mod:`repro.digital.watch` is behavioural
(binary seconds).  Real watch chips count in binary-coded decimal so the
digits feed the segment decoder directly, with per-digit wrap limits
(units-of-seconds wraps at 9, tens-of-seconds at 5, tens-of-hours
jointly with hours at 23).  This module provides the BCD digit chain and
a drop-in time counter whose digit outputs connect one-to-one to the
display driver's glyphs — plus an equivalence check against the
behavioural model in the tests.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ConfigurationError
from .watch import TimeOfDay


class BCDDigit:
    """One decade counter with a configurable wrap value."""

    def __init__(self, wrap_at: int = 9):
        if not 1 <= wrap_at <= 9:
            raise ConfigurationError("BCD digit wraps between 1 and 9")
        self.wrap_at = wrap_at
        self.value = 0

    def increment(self) -> bool:
        """Count one; returns True on carry (wrap to zero)."""
        if self.value >= self.wrap_at:
            self.value = 0
            return True
        self.value += 1
        return False

    def reset(self) -> None:
        self.value = 0

    @property
    def bits(self) -> Tuple[int, int, int, int]:
        """The 8-4-2-1 output lines."""
        return (
            (self.value >> 3) & 1,
            (self.value >> 2) & 1,
            (self.value >> 1) & 1,
            self.value & 1,
        )


class BCDChain:
    """Cascaded BCD digits with ripple carry (least significant first)."""

    def __init__(self, wraps: List[int]):
        if not wraps:
            raise ConfigurationError("chain needs at least one digit")
        self.digits = [BCDDigit(w) for w in wraps]

    def increment(self) -> bool:
        """Count one; returns True if the whole chain wrapped."""
        for digit in self.digits:
            if not digit.increment():
                return False
        return True

    def value(self) -> int:
        """The chain's decimal value."""
        total = 0
        for digit in reversed(self.digits):
            total = total * 10 + digit.value
        return total

    def set_value(self, value: int) -> None:
        if value < 0:
            raise ConfigurationError("BCD value must be non-negative")
        for digit in self.digits:
            digit.value = value % 10
            if digit.value > digit.wrap_at:
                raise ConfigurationError(
                    f"digit value {digit.value} exceeds wrap {digit.wrap_at}"
                )
            value //= 10
        if value:
            raise ConfigurationError("value does not fit the chain")

    def reset(self) -> None:
        for digit in self.digits:
            digit.reset()


class BCDTimeCounter:
    """HH:MM:SS in BCD, exactly as the watch silicon holds it.

    Seconds and minutes are two independent 59-wrapping chains; the hour
    pair wraps jointly at 23 (the tens-of-hours digit cannot use a fixed
    per-digit wrap, the classic BCD-clock special case).
    """

    def __init__(self) -> None:
        self.seconds = BCDChain([9, 5])   # units wrap 9, tens wrap 5
        self.minutes = BCDChain([9, 5])
        self.hours = BCDChain([9, 2])     # joint 23 handled in tick()

    def tick_second(self) -> None:
        """Advance one second with all the cascaded carries."""
        if not self.seconds.increment():
            return
        if not self.minutes.increment():
            return
        self.hours.increment()
        if self.hours.value() == 24:
            self.hours.reset()

    def set_time(self, hours: int, minutes: int, seconds: int = 0) -> None:
        TimeOfDay(hours, minutes, seconds)  # reuse the validation
        self.hours.set_value(hours)
        self.minutes.set_value(minutes)
        self.seconds.set_value(seconds)

    def as_time_of_day(self) -> TimeOfDay:
        return TimeOfDay(
            self.hours.value(), self.minutes.value(), self.seconds.value()
        )

    def display_digits(self) -> str:
        """The four HH:MM characters the display driver shows."""
        return f"{self.hours.value():02d}{self.minutes.value():02d}"
