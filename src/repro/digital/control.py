"""The digital control logic (§4).

"The digital control logic has two main functions.  It enables the
analogue section and the digital high speed up-down counter only when they
are needed, in order to diminish the power consumption further, and it
controls the multiplexing of the two sensors."

The controller is a small synchronous FSM clocked (conceptually) at the
excitation rate.  One heading measurement walks through:

    IDLE → SETTLE_X → COUNT_X → SETTLE_Y → COUNT_Y → COMPUTE → IDLE

Enable signals for the analogue front-end, the counter and the CORDIC are
asserted only in the states that need them; the recorded enable intervals
feed the power model (:mod:`repro.core.power`) and the GATE1 bench.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analog.mux import MeasurementSchedule
from ..errors import ProtocolError
from ..units import CORDIC_ITERATIONS, COUNTER_CLOCK_HZ, EXCITATION_FREQUENCY_HZ


class ControllerState(enum.Enum):
    """States of the measurement FSM."""

    IDLE = "idle"
    SETTLE_X = "settle_x"
    COUNT_X = "count_x"
    SETTLE_Y = "settle_y"
    COUNT_Y = "count_y"
    COMPUTE = "compute"


@dataclass(frozen=True)
class EnableSignals:
    """The controller's output enables in a given state."""

    analog_front_end: bool
    counter: bool
    cordic: bool
    active_channel: str  # "x", "y" or "-" when neither is excited


#: Enable map: which blocks are powered in which state (§4's gating).
_STATE_ENABLES: Dict[ControllerState, EnableSignals] = {
    ControllerState.IDLE: EnableSignals(False, False, False, "-"),
    ControllerState.SETTLE_X: EnableSignals(True, False, False, "x"),
    ControllerState.COUNT_X: EnableSignals(True, True, False, "x"),
    ControllerState.SETTLE_Y: EnableSignals(True, False, False, "y"),
    ControllerState.COUNT_Y: EnableSignals(True, True, False, "y"),
    ControllerState.COMPUTE: EnableSignals(False, False, True, "-"),
}


@dataclass
class StateDwell:
    """One visited state and how long the FSM stayed there [s]."""

    state: ControllerState
    duration: float


class CompassController:
    """Cycle-level measurement sequencer with power-gating outputs.

    Parameters
    ----------
    schedule:
        Settle/count period allocation per channel.
    excitation_frequency_hz:
        Excitation rate that paces the settle/count states.
    cordic_iterations:
        Cycles the COMPUTE state occupies at the counter clock.
    """

    def __init__(
        self,
        schedule: MeasurementSchedule = MeasurementSchedule(),
        excitation_frequency_hz: float = EXCITATION_FREQUENCY_HZ,
        cordic_iterations: int = CORDIC_ITERATIONS,
        clock_hz: float = COUNTER_CLOCK_HZ,
    ):
        self.schedule = schedule
        self.excitation_frequency_hz = excitation_frequency_hz
        self.cordic_iterations = cordic_iterations
        self.clock_hz = clock_hz
        self.state = ControllerState.IDLE
        self.history: List[StateDwell] = []

    # -- timing ---------------------------------------------------------------

    def _periods_seconds(self, n_periods: int) -> float:
        return n_periods / self.excitation_frequency_hz

    def state_duration(self, state: ControllerState) -> float:
        """Dwell time of each state in one measurement [s]."""
        s = self.schedule
        durations = {
            ControllerState.SETTLE_X: self._periods_seconds(s.settle_periods),
            ControllerState.COUNT_X: self._periods_seconds(s.count_periods),
            ControllerState.SETTLE_Y: self._periods_seconds(s.settle_periods),
            ControllerState.COUNT_Y: self._periods_seconds(s.count_periods),
            ControllerState.COMPUTE: self.cordic_iterations / self.clock_hz,
        }
        if state not in durations:
            raise ProtocolError(f"state {state} has no fixed duration")
        return durations[state]

    @property
    def measurement_sequence(self) -> Tuple[ControllerState, ...]:
        """The state walk of one heading measurement (IDLE excluded)."""
        states = []
        if self.schedule.settle_periods > 0:
            states.append(ControllerState.SETTLE_X)
        states.append(ControllerState.COUNT_X)
        if self.schedule.settle_periods > 0:
            states.append(ControllerState.SETTLE_Y)
        states.append(ControllerState.COUNT_Y)
        states.append(ControllerState.COMPUTE)
        return tuple(states)

    # -- execution ----------------------------------------------------------------

    def enables(self) -> EnableSignals:
        """Current enable outputs."""
        return _STATE_ENABLES[self.state]

    def run_measurement(self) -> List[StateDwell]:
        """Walk one full measurement and record the dwell history.

        Returns the dwells of this measurement; the cumulative history is
        kept on :attr:`history` for duty-cycle analysis across a session.
        """
        if self.state is not ControllerState.IDLE:
            raise ProtocolError(
                f"measurement started while controller in {self.state}"
            )
        dwells: List[StateDwell] = []
        for state in self.measurement_sequence:
            self.state = state
            dwells.append(StateDwell(state, self.state_duration(state)))
        self.state = ControllerState.IDLE
        self.history.extend(dwells)
        return dwells

    def measurement_duration(self) -> float:
        """Active time of one measurement [s]."""
        return sum(
            self.state_duration(state) for state in self.measurement_sequence
        )

    def block_duty_cycles(self, repetition_period: float) -> Dict[str, float]:
        """Fraction of time each gated block is enabled.

        Parameters
        ----------
        repetition_period:
            Time between the starts of consecutive measurements [s]
            (e.g. 1.0 for a once-per-second compass watch).  Must not be
            shorter than the measurement itself.
        """
        total = self.measurement_duration()
        if repetition_period < total:
            raise ProtocolError(
                f"repetition period {repetition_period} s shorter than one "
                f"measurement ({total:.6f} s)"
            )
        on_time = {"analog_front_end": 0.0, "counter": 0.0, "cordic": 0.0}
        for state in self.measurement_sequence:
            enables = _STATE_ENABLES[state]
            duration = self.state_duration(state)
            if enables.analog_front_end:
                on_time["analog_front_end"] += duration
            if enables.counter:
                on_time["counter"] += duration
            if enables.cordic:
                on_time["cordic"] += duration
        return {name: t / repetition_period for name, t in on_time.items()}
