"""Differential conformance: one log, many execution paths, zero drift.

The repo now has four ways to compute a heading — the scalar
:class:`~repro.core.compass.IntegratedCompass`, the vectorized
:class:`~repro.batch.engine.BatchCompass`, a service replica, and any of
them with observability armed.  They are all *supposed* to be
bit-identical; this module makes that claim mechanically checkable:
replay one recorded log through any pair of paths and compare every
stage boundary with ``==``.

A mismatch is reported as a :class:`Divergence` naming the **first
divergent stage in signal-chain order** (``inputs`` → ``pulse`` →
``counter`` → ``cordic.iter.N`` → ``heading`` → ``field`` →
``health``), so the most upstream defect is what you see — a wrong
CORDIC ROM entry shows up as ``cordic.iter.3.angle_fixed``, not as a
mysteriously rotated heading.

Divergences are classified:

``metadata``
    Only the health verdict differs; every numeric output matches.
``tolerated-noise``
    The served heading agrees within ``tolerance_deg`` (default 0.0 —
    with the tolerance at zero this class only covers *internally*
    divergent records whose final outputs still match exactly).
``silent-wrong``
    Anything else: the compass served a different answer with no error
    raised.  This is the class CI fails on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import DivergenceError, ReplayError
from .format import (
    KIND_MEASURED,
    MeasurementRecord,
    STAGE_CORDIC,
    STAGE_COUNTER,
    STAGE_FIELD,
    STAGE_HEADING,
    STAGE_HEALTH,
    STAGE_INPUTS,
    STAGE_PULSE,
)
from .player import ReplayLogReader, ReplayPlayer, replay_full

CLASS_METADATA = "metadata"
CLASS_TOLERATED = "tolerated-noise"
CLASS_SILENT_WRONG = "silent-wrong"

#: Paths whose edge times are *analytically* computed rather than
#: sample-grid interpolated; diffing them against a stepped path uses a
#: sub-tick :class:`TimingTolerance` instead of bit-exact ``==``.
TIMING_TOLERANT_PATHS = frozenset({"fastpath"})


def circular_delta_deg(a: float, b: float) -> float:
    """Smallest absolute angular distance between two headings [deg]."""
    delta = abs(a - b) % 360.0
    return min(delta, 360.0 - delta)


@dataclass(frozen=True)
class TimingTolerance:
    """Bounds for comparing an analytic path against a stepped one.

    The fast path computes edge times in closed form; the stepped engine
    interpolates them on the sample grid.  They agree to well under one
    analogue grid tick — but not to the last ulp, so the counter can
    round an edge across a 238 ns clock boundary and shift a count by
    ±2 per affected edge.  These bounds accept exactly that noise and
    nothing more:

    * ``edge_time_s`` — per-edge time difference (edge values and edge
      *counts* still compare exactly),
    * ``counter_ticks`` — allowed |Δ| on ``high_ticks`` and ``count``
      (``total_ticks`` and ``overflowed`` still compare exactly: the
      window is identical),
    * ``heading_deg`` — circular heading difference (when counts moved,
      the CORDIC register trace legitimately differs, so per-iteration
      registers are only compared when all counts matched exactly),
    * ``field_rel`` — relative field-estimate difference.
    """

    edge_time_s: float
    counter_ticks: int
    heading_deg: float
    field_rel: float

    @classmethod
    def sub_tick(cls, header) -> "TimingTolerance":
        """One analogue grid tick of the recorded design point.

        A few counter ticks of slack cover an edge rounding across a
        counter-clock boundary; the heading bound covers the resulting
        count shift at the smallest (25 µT) field plus CORDIC
        quantisation.
        """
        tick = 1.0 / (header.excitation_frequency_hz * header.samples_per_period)
        return cls(
            edge_time_s=tick,
            counter_ticks=6,
            heading_deg=0.7,
            field_rel=0.02,
        )


@dataclass(frozen=True)
class Divergence:
    """One record's first point of disagreement between two paths."""

    seq: int
    stage: str
    recorded: object
    replayed: object
    classification: str

    def describe(self) -> str:
        return (
            f"record {self.seq} diverges at stage {self.stage!r} "
            f"({self.classification}): {self.recorded!r} != {self.replayed!r}"
        )

    def to_dict(self) -> Dict:
        return {
            "seq": self.seq,
            "stage": self.stage,
            "recorded": repr(self.recorded),
            "replayed": repr(self.replayed),
            "classification": self.classification,
        }


def _classify(
    stage: str,
    a: MeasurementRecord,
    b: MeasurementRecord,
    tolerance_deg: float,
) -> str:
    if stage.startswith(STAGE_HEALTH):
        return CLASS_METADATA
    if circular_delta_deg(a.heading_deg, b.heading_deg) <= tolerance_deg and (
        a.field_estimate_a_per_m == b.field_estimate_a_per_m
        or tolerance_deg > 0.0
    ):
        return CLASS_TOLERATED
    return CLASS_SILENT_WRONG


def _first_mismatch(
    a: MeasurementRecord,
    b: MeasurementRecord,
    compare_health: bool,
    timing: Optional[TimingTolerance] = None,
) -> Optional[Tuple[str, object, object]]:
    """The first divergent ``(stage, value_a, value_b)`` in chain order.

    With ``timing`` set, edge times, counts, heading and field compare
    within the given bounds instead of with ``==`` — everything within
    tolerance is *not* a mismatch at all (the pair counts as clean).
    """
    if a.kind != b.kind:
        return ("kind", a.kind, b.kind)
    if (a.h_x, a.h_y) != (b.h_x, b.h_y):
        return (STAGE_INPUTS, (a.h_x, a.h_y), (b.h_x, b.h_y))
    if a.window != b.window:
        return (f"{STAGE_INPUTS}.window", a.window, b.window)
    for channel in sorted(set(a.channels) | set(b.channels)):
        cap_a = a.channels.get(channel)
        cap_b = b.channels.get(channel)
        if cap_a is None or cap_b is None:
            return (f"{STAGE_PULSE}.{channel}", cap_a, cap_b)
        if cap_a.initial_value != cap_b.initial_value:
            return (
                f"{STAGE_PULSE}.{channel}.initial",
                cap_a.initial_value,
                cap_b.initial_value,
            )
        for i, (edge_a, edge_b) in enumerate(zip(cap_a.edges, cap_b.edges)):
            if edge_a != edge_b:
                if (
                    timing is not None
                    and edge_a[1] == edge_b[1]
                    and abs(edge_a[0] - edge_b[0]) <= timing.edge_time_s
                ):
                    continue
                return (f"{STAGE_PULSE}.{channel}.edge.{i}", edge_a, edge_b)
        if len(cap_a.edges) != len(cap_b.edges):
            return (
                f"{STAGE_PULSE}.{channel}.edge.count",
                len(cap_a.edges),
                len(cap_b.edges),
            )
    counts_exact = True
    for channel in sorted(set(a.counter) | set(b.counter)):
        cnt_a = a.counter.get(channel)
        cnt_b = b.counter.get(channel)
        if cnt_a is None or cnt_b is None:
            return (f"{STAGE_COUNTER}.{channel}", cnt_a, cnt_b)
        for field_name in ("total_ticks", "high_ticks", "count", "overflowed"):
            val_a = getattr(cnt_a, field_name)
            val_b = getattr(cnt_b, field_name)
            if val_a != val_b:
                if (
                    timing is not None
                    and field_name in ("high_ticks", "count")
                    and abs(val_a - val_b) <= timing.counter_ticks
                ):
                    counts_exact = False
                    continue
                return (f"{STAGE_COUNTER}.{channel}.{field_name}", val_a, val_b)
    if (a.cordic is None) != (b.cordic is None):
        return (STAGE_CORDIC, a.cordic, b.cordic)
    # A tolerated count shift feeds the CORDIC different (but equally
    # valid) operands, so the per-iteration register trace is only
    # compared when every count matched exactly.
    if a.cordic is not None and b.cordic is not None and counts_exact:
        registers = ("iteration", "shift", "rotated", "x_reg", "y_reg",
                     "angle_fixed")
        for step_a, step_b in zip(a.cordic.steps, b.cordic.steps):
            if step_a != step_b:
                iteration = step_a[0]
                for reg_index, reg_name in enumerate(registers):
                    if step_a[reg_index] != step_b[reg_index]:
                        return (
                            f"{STAGE_CORDIC}.iter.{iteration}.{reg_name}",
                            step_a[reg_index],
                            step_b[reg_index],
                        )
        if len(a.cordic.steps) != len(b.cordic.steps):
            return (
                f"{STAGE_CORDIC}.iter.count",
                len(a.cordic.steps),
                len(b.cordic.steps),
            )
        if a.cordic.cycles != b.cordic.cycles:
            return (f"{STAGE_CORDIC}.cycles", a.cordic.cycles, b.cordic.cycles)
    if a.heading_deg != b.heading_deg:
        if not (
            timing is not None
            and circular_delta_deg(a.heading_deg, b.heading_deg)
            <= timing.heading_deg
        ):
            return (STAGE_HEADING, a.heading_deg, b.heading_deg)
    if a.field_estimate_a_per_m != b.field_estimate_a_per_m:
        reference = max(
            abs(a.field_estimate_a_per_m), abs(b.field_estimate_a_per_m)
        )
        if not (
            timing is not None
            and abs(a.field_estimate_a_per_m - b.field_estimate_a_per_m)
            <= timing.field_rel * reference
        ):
            return (
                STAGE_FIELD, a.field_estimate_a_per_m, b.field_estimate_a_per_m
            )
    if compare_health and a.health != b.health:
        return (STAGE_HEALTH, a.health, b.health)
    return None


def diff_record(
    a: MeasurementRecord,
    b: MeasurementRecord,
    tolerance_deg: float = 0.0,
    compare_health: bool = True,
    timing: Optional[TimingTolerance] = None,
) -> Optional[Divergence]:
    """Compare two records stage by stage; ``None`` means bit-identical.

    The ``path`` field is deliberately *not* compared — the whole point
    is comparing the same measurement across different paths.  With
    ``timing`` set, differences within the sub-tick bounds also return
    ``None`` (used when one side is an analytic path).
    """
    mismatch = _first_mismatch(a, b, compare_health, timing=timing)
    if mismatch is None:
        return None
    stage, val_a, val_b = mismatch
    return Divergence(
        seq=a.seq,
        stage=stage,
        recorded=val_a,
        replayed=val_b,
        classification=_classify(stage, a, b, tolerance_deg),
    )


# -- execution paths -----------------------------------------------------------


def _run_recorded(reader: ReplayLogReader) -> List[MeasurementRecord]:
    return reader.records()


def _run_backend(reader: ReplayLogReader) -> List[MeasurementRecord]:
    return ReplayPlayer(reader.header).replay(reader)


def _run_scalar(reader: ReplayLogReader) -> List[MeasurementRecord]:
    return replay_full(reader)


def _run_instrumented(reader: ReplayLogReader) -> List[MeasurementRecord]:
    from ..core.compass import IntegratedCompass
    from ..observe import Observability

    config = dataclasses.replace(
        reader.header.rebuild_config(), observe=Observability.on()
    )
    return replay_full(reader, compass=IntegratedCompass(config))


def _run_batch(reader: ReplayLogReader) -> List[MeasurementRecord]:
    import numpy as np

    from ..batch.engine import BatchCompass
    from .recorder import LogRecorder, attach_recorder

    batch = BatchCompass(reader.header.rebuild_config())
    recorder = LogRecorder()
    attach_recorder(batch.compass, recorder)
    records = reader.records()
    missing = [r.seq for r in records if r.h_x is None or r.h_y is None]
    if missing:
        raise ReplayError(
            f"records {missing} carry no axis-field inputs; the batch "
            "path cannot replay them"
        )
    batch.measure_components_batch(
        np.array([r.h_x for r in records], dtype=float),
        np.array([r.h_y for r in records], dtype=float),
    )
    return recorder.records


def _run_fastpath(reader: ReplayLogReader) -> List[MeasurementRecord]:
    from ..core.compass import IntegratedCompass

    config = reader.header.rebuild_config()
    config = dataclasses.replace(
        config,
        front_end=dataclasses.replace(config.front_end, fastpath=True),
    )
    return replay_full(reader, compass=IntegratedCompass(config))


def _run_service(reader: ReplayLogReader) -> List[MeasurementRecord]:
    from ..service.service import HeadingService, ServiceConfig

    service = HeadingService(
        ServiceConfig(compass=reader.header.rebuild_config())
    )
    # Drive replica 0's compass directly: voting and latency draws sit
    # *around* the measurement, not inside it, so the replica's signal
    # chain must still be bit-identical to the recorded one.  (The
    # replica re-seeds its noise stream, which under the default
    # noiseless budget never draws.)
    return replay_full(reader, compass=service.replicas[0].compass)


#: Named execution paths the conformance runner can replay a log through.
PATHS: Dict[str, Callable[[ReplayLogReader], List[MeasurementRecord]]] = {
    "recorded": _run_recorded,
    "backend": _run_backend,
    "scalar": _run_scalar,
    "instrumented": _run_instrumented,
    "batch": _run_batch,
    "service": _run_service,
    "fastpath": _run_fastpath,
}


@dataclass(frozen=True)
class DiffResult:
    """Outcome of diffing one log across one pair of paths."""

    path_a: str
    path_b: str
    n_records: int
    divergences: Tuple[Divergence, ...]

    @property
    def clean(self) -> bool:
        return not self.divergences

    @property
    def silent_wrong(self) -> Tuple[Divergence, ...]:
        return tuple(
            d for d in self.divergences
            if d.classification == CLASS_SILENT_WRONG
        )

    def to_dict(self) -> Dict:
        return {
            "path_a": self.path_a,
            "path_b": self.path_b,
            "n_records": self.n_records,
            "clean": self.clean,
            "divergences": [d.to_dict() for d in self.divergences],
        }


def diff_records(
    path_a: str,
    records_a: Sequence[MeasurementRecord],
    path_b: str,
    records_b: Sequence[MeasurementRecord],
    tolerance_deg: float = 0.0,
    timing: Optional[TimingTolerance] = None,
) -> DiffResult:
    """Diff two already-executed record streams, record by record.

    ``timing`` is applied only when exactly one of the two paths is an
    analytic (timing-tolerant) one — two stepped paths always compare
    bit-exactly.
    """
    divergences: List[Divergence] = []
    if len(records_a) != len(records_b):
        divergences.append(
            Divergence(
                seq=min(len(records_a), len(records_b)),
                stage="length",
                recorded=len(records_a),
                replayed=len(records_b),
                classification=CLASS_SILENT_WRONG,
            )
        )
    compare_health = path_a != "backend" and path_b != "backend"
    tolerant_sides = sum(
        1 for p in (path_a, path_b) if p in TIMING_TOLERANT_PATHS
    )
    pair_timing = timing if tolerant_sides == 1 else None
    for a, b in zip(records_a, records_b):
        divergence = diff_record(
            a,
            b,
            tolerance_deg=tolerance_deg,
            compare_health=compare_health,
            timing=pair_timing,
        )
        if divergence is not None:
            divergences.append(divergence)
    return DiffResult(
        path_a=path_a,
        path_b=path_b,
        n_records=min(len(records_a), len(records_b)),
        divergences=tuple(divergences),
    )


def run_conformance(
    reader: ReplayLogReader,
    paths: Sequence[str] = ("recorded", "scalar"),
    tolerance_deg: float = 0.0,
    timing: Optional[TimingTolerance] = None,
) -> List[DiffResult]:
    """Replay one log through several paths and diff every pair.

    Each named path executes exactly once; the first path is the
    baseline every other path is diffed against, and the remaining
    paths are additionally diffed pairwise so a report covers all
    combinations.

    When a timing-tolerant path (``fastpath``) is among ``paths`` and no
    explicit ``timing`` is given, a sub-tick tolerance derived from the
    log header is applied to the pairs involving it; all other pairs
    still compare bit-exactly.
    """
    if len(paths) < 2:
        raise ReplayError("conformance needs at least two paths to diff")
    unknown = [p for p in paths if p not in PATHS]
    if unknown:
        raise ReplayError(
            f"unknown execution paths {unknown}; choose from "
            f"{sorted(PATHS)}"
        )
    if timing is None and any(p in TIMING_TOLERANT_PATHS for p in paths):
        timing = TimingTolerance.sub_tick(reader.header)
    executed = {name: PATHS[name](reader) for name in dict.fromkeys(paths)}
    names = list(executed)
    results: List[DiffResult] = []
    for i, name_a in enumerate(names):
        for name_b in names[i + 1:]:
            results.append(
                diff_records(
                    name_a, executed[name_a],
                    name_b, executed[name_b],
                    tolerance_deg=tolerance_deg,
                    timing=timing,
                )
            )
    return results


def require_conformance(results: Sequence[DiffResult]) -> int:
    """Raise :class:`DivergenceError` on any silent-wrong divergence.

    Returns the total number of record comparisons performed, so
    callers can assert the check actually covered something.
    """
    for result in results:
        wrong = result.silent_wrong
        if wrong:
            raise DivergenceError(
                f"paths {result.path_a!r} and {result.path_b!r} disagree "
                f"on {len(wrong)} of {result.n_records} records; first: "
                f"{wrong[0].describe()}"
            )
    return sum(result.n_records for result in results)


__all__ = [
    "CLASS_METADATA",
    "CLASS_SILENT_WRONG",
    "CLASS_TOLERATED",
    "DiffResult",
    "Divergence",
    "PATHS",
    "TIMING_TOLERANT_PATHS",
    "TimingTolerance",
    "circular_delta_deg",
    "diff_record",
    "diff_records",
    "require_conformance",
    "run_conformance",
]
