"""The capture layer: records measurements at stage boundaries.

A :class:`LogRecorder` rides on the compass's
:class:`~repro.observe.Observer` (the same opt-in switchboard that
carries the tracer and metrics registry), so capture follows the
observability contract: **opt-in**, **transparent** (a recorded
measurement is bit-identical to an unrecorded one — pinned by the
golden-vector suite) and **zero cost when off** (one attribute check on
the hot path).

Two ways to arm it:

* declaratively, via :attr:`Observability.replay_path`::

      config = CompassConfig(observe=Observability.on(replay_path="run.rplog"))
      compass = IntegratedCompass(config)
      compass.measure_heading(45.0)
      compass.observer.close()          # flushes header + footer

* imperatively, on an existing compass (file- or memory-backed)::

      recorder = LogRecorder()          # in-memory
      attach_recorder(compass, recorder)
      compass.measure_heading(45.0)
      records = recorder.records

The instrumented call sites live in
:meth:`~repro.core.compass.IntegratedCompass.measure_components` /
``assemble_measurement`` and the batch engine's per-row loop; the
digital back-end records its per-iteration CORDIC state whenever a
recorder (or tracer) is attached.
"""

from __future__ import annotations

from typing import IO, List, Optional, Union

from ..errors import ReplayError
from .format import (
    ChannelCapture,
    CordicCapture,
    CounterCapture,
    HealthCapture,
    KIND_FALLBACK,
    KIND_MEASURED,
    LogHeader,
    MeasurementRecord,
    encode_line,
)


class LogRecorder:
    """Serialises measurements into a replay log (file or memory).

    Parameters
    ----------
    path_or_handle:
        ``None`` (default) keeps every :class:`MeasurementRecord` in
        :attr:`records`; a path or text handle streams self-checking
        JSONL lines instead (header lazily on the first record, footer
        on :meth:`close`).
    """

    def __init__(self, path_or_handle: Union[str, IO[str], None] = None):
        self._handle: Optional[IO[str]] = None
        self._owns_handle = False
        if isinstance(path_or_handle, str):
            self._handle = open(path_or_handle, "w", encoding="utf-8")
            self._owns_handle = True
        elif path_or_handle is not None:
            self._handle = path_or_handle
        self.header: Optional[LogHeader] = None
        self.records: List[MeasurementRecord] = []
        self.records_written = 0
        self._header_written = False
        self._closed = False
        self._pending_inputs: Optional[tuple] = None

    @property
    def in_memory(self) -> bool:
        return self._handle is None

    # -- header ----------------------------------------------------------------

    def bind(self, config) -> None:
        """Pin the log to one compass configuration.

        A recorder serialises *one* execution context; binding a second,
        differently-fingerprinted config would silently mix design
        points in one log, so it raises instead.
        """
        header = LogHeader.from_config(config)
        if self.header is None:
            self.header = header
            return
        if header.fingerprint != self.header.fingerprint:
            raise ReplayError(
                "recorder is already bound to a different compass "
                f"configuration ({self.header.fingerprint} != "
                f"{header.fingerprint}); use one recorder per design point"
            )

    def _require_header(self) -> LogHeader:
        if self.header is None:
            raise ReplayError(
                "recorder was never bound to a compass configuration; "
                "attach it with attach_recorder() or Observability.replay_path"
            )
        return self.header

    def _emit(self, record: MeasurementRecord) -> None:
        if self._closed:
            raise ReplayError("recorder is closed; no further records accepted")
        header = self._require_header()
        if self._handle is not None:
            if not self._header_written:
                self._handle.write(encode_line("header", header.to_dict()) + "\n")
                self._header_written = True
            self._handle.write(encode_line("record", record.to_dict()) + "\n")
        else:
            self.records.append(record)
        self.records_written += 1

    # -- capture hooks (called by the instrumented signal chain) ---------------

    def on_inputs(self, h_x: float, h_y: float) -> None:
        """Stage the axis-field inputs of the measurement being taken."""
        self._pending_inputs = (float(h_x), float(h_y))

    def _take_inputs(self) -> tuple:
        pending, self._pending_inputs = self._pending_inputs, None
        if pending is None:
            return (None, None)
        return pending

    def on_measurement(
        self, path, detector_x, detector_y, count_window, result, measurement
    ) -> None:
        """Capture one fully-measured record (the normal path)."""
        h_x, h_y = self._take_inputs()
        self._emit(
            MeasurementRecord(
                seq=self.records_written,
                path=path,
                kind=KIND_MEASURED,
                h_x=h_x,
                h_y=h_y,
                window=(count_window[0], count_window[1]),
                channels={
                    "x": ChannelCapture.from_detector_output(detector_x),
                    "y": ChannelCapture.from_detector_output(detector_y),
                },
                counter={
                    "x": CounterCapture.from_result(result.x_result),
                    "y": CounterCapture.from_result(result.y_result),
                },
                cordic=CordicCapture.from_steps(
                    result.cordic_cycles, result.cordic_steps
                ),
                heading_deg=measurement.heading_deg,
                field_estimate_a_per_m=measurement.field_estimate_a_per_m,
                health=(
                    None if measurement.health is None
                    else HealthCapture.from_report(measurement.health)
                ),
            )
        )

    def on_fallback(self, path, channels, count_window, measurement) -> None:
        """Capture a degraded serve (stale heading or single-axis).

        ``channels`` maps channel name → the detector outputs that *were*
        observed; the digital stages are absent because the served
        heading did not come from a fresh back-end pass.
        """
        h_x, h_y = self._take_inputs()
        self._emit(
            MeasurementRecord(
                seq=self.records_written,
                path=path,
                kind=KIND_FALLBACK,
                h_x=h_x,
                h_y=h_y,
                window=(count_window[0], count_window[1]),
                channels={
                    name: ChannelCapture.from_detector_output(output)
                    for name, output in channels.items()
                },
                heading_deg=measurement.heading_deg,
                field_estimate_a_per_m=measurement.field_estimate_a_per_m,
                health=(
                    None if measurement.health is None
                    else HealthCapture.from_report(measurement.health)
                ),
            )
        )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Write the footer and release the file handle (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._handle is not None:
            if not self._header_written and self.header is not None:
                self._handle.write(
                    encode_line("header", self.header.to_dict()) + "\n"
                )
                self._header_written = True
            self._handle.write(
                encode_line("footer", {"n_records": self.records_written}) + "\n"
            )
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()


def attach_recorder(compass, recorder: LogRecorder) -> LogRecorder:
    """Arm a recorder on an existing compass (any observability state).

    If the compass carries the shared do-nothing observer, a fresh
    recorder-only :class:`~repro.observe.Observer` is installed on the
    compass and both halves of the signal chain; an already-enabled
    observer simply gains the recorder.  Returns the recorder.
    """
    from ..observe import DISABLED, Observer

    recorder.bind(compass.config)
    if compass.observer is DISABLED:
        observer = Observer(recorder=recorder)
        compass.observer = observer
        compass.front_end.observer = observer
        compass.back_end.observer = observer
    else:
        compass.observer.recorder = recorder
    return recorder


__all__ = ["LogRecorder", "attach_recorder"]
