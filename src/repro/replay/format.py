"""The replay-log format: versioned, checksummed, seekable JSONL.

The paper spends silicon on *verifiability* — boundary-scan structures
[Oli96] exist so the assembled compass can be exercised and checked.
This module is the software analogue's file format: one measurement is
one self-checking JSONL record capturing the signal chain at every
stage boundary the silicon exposes on the bench —

* the **inputs** (per-axis field components [A/m]),
* the **pulse edges** leaving the comparator/SR-latch per channel,
* the **counter** integers (count, total ticks, high ticks),
* the **CORDIC state** after every iteration (registers + angle
  accumulator),
* the final **heading**, **field estimate** and **health verdict**.

Layout of a ``.rplog`` file::

    {"crc": ..., "header": {"magic": "repro-rplog", "version": 1, ...}}
    {"crc": ..., "record": {"seq": 0, ...}}
    {"crc": ..., "record": {"seq": 1, ...}}
    ...
    {"crc": ..., "footer": {"n_records": 2}}

Design rules:

* **Self-checking** — every line carries a CRC-32 of the canonical JSON
  of its body; any corruption raises
  :class:`~repro.errors.ReplayError`, never a wrong heading.
* **Truncation-evident** — the footer pins the record count, so a log
  cut at any byte (even cleanly at a newline) fails validation.
* **Bit-exact round-trip** — floats are serialised with ``repr``
  semantics (Python's ``json``), which round-trips every IEEE-754
  double exactly; replays compare with ``==``, never ``approx``.
* **Seekable** — one record per line; readers index line offsets and
  fetch any record without parsing the rest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analog.pulse_detector import DetectorOutput, LogicEdge
from ..digital.cordic import CordicStep
from ..digital.counter import CountResult
from ..errors import ReplayError

#: File-format identity; bump ``FORMAT_VERSION`` on any breaking change.
MAGIC = "repro-rplog"
FORMAT_VERSION = 1

#: Stage names in signal-chain order — the vocabulary of every
#: divergence report.  ``repro.replay.diff`` walks records in exactly
#: this order so the *first* divergent stage is the most upstream one.
STAGE_INPUTS = "inputs"
STAGE_PULSE = "pulse"          # pulse.x / pulse.y (.edge.<i> for one edge)
STAGE_COUNTER = "counter"      # counter.x / counter.y
STAGE_CORDIC = "cordic"        # cordic.iter.<i>.<register>
STAGE_HEADING = "heading"
STAGE_FIELD = "field"
STAGE_HEALTH = "health"

#: Record kinds: a fully-measured record carries every stage; a
#: fallback record (stale serve or single-axis degradation) carries only
#: the channels that were observed plus the served measurement.
KIND_MEASURED = "measured"
KIND_FALLBACK = "fallback"


def _canonical(body: Dict) -> str:
    """The canonical JSON text a line's CRC is computed over."""
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def encode_line(key: str, body: Dict) -> str:
    """One self-checking log line (no trailing newline)."""
    return _canonical({"crc": zlib.crc32(_canonical(body).encode("utf-8")),
                       key: body})


def decode_line(line: str, expect: Optional[str] = None) -> Tuple[str, Dict]:
    """Parse and CRC-verify one log line → ``(key, body)``.

    Raises
    ------
    ReplayError
        On malformed JSON, missing/unknown keys, a CRC mismatch, or a
        body key different from ``expect`` (when given).
    """
    try:
        wrapper = json.loads(line)
    except ValueError as exc:
        raise ReplayError(f"unparseable replay-log line: {exc}") from exc
    if not isinstance(wrapper, dict) or "crc" not in wrapper:
        raise ReplayError("replay-log line has no checksum envelope")
    keys = [k for k in wrapper if k != "crc"]
    if len(keys) != 1 or keys[0] not in ("header", "record", "footer"):
        raise ReplayError(f"replay-log line has unknown body keys {keys!r}")
    key = keys[0]
    body = wrapper[key]
    crc = zlib.crc32(_canonical(body).encode("utf-8"))
    if crc != wrapper["crc"]:
        raise ReplayError(
            f"replay-log {key} line failed its CRC check "
            f"(stored {wrapper['crc']}, computed {crc}) — the log is corrupted"
        )
    if expect is not None and key != expect:
        raise ReplayError(f"expected a {expect} line, found {key}")
    return key, body


def config_fingerprint(config) -> str:
    """Stable fingerprint of a :class:`~repro.core.compass.CompassConfig`.

    Excludes the ``observe`` block — attaching a recorder or tracer must
    not change a compass's replay identity (the clean path is
    bit-identical either way).
    """
    from ..observe import Observability

    neutral = dataclasses.replace(config, observe=Observability())
    return hashlib.sha256(repr(neutral).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class LogHeader:
    """Everything a replayer needs to rebuild the digital back-end.

    The header pins the *digital* design point exactly (counter clock
    and width, CORDIC iterations, measurement schedule) plus the
    analogue scale factors that turn counts back into a field estimate.
    ``config_fingerprint`` additionally pins the full compass
    configuration, so full-chain replay can refuse a config it cannot
    reconstruct instead of replaying subtly wrong physics.
    """

    settle_periods: int
    count_periods: int
    samples_per_period: int
    counter_clock_hz: float
    counter_width_bits: int
    counter_strict_overflow: bool
    cordic_iterations: int
    excitation_current_pp: float
    excitation_frequency_hz: float
    coil_constant: float
    sensor_name: str
    core_model: str
    noise_seed: int
    noiseless: bool
    health_enabled: bool
    health_degrade: bool
    fingerprint: str
    version: int = FORMAT_VERSION

    @classmethod
    def from_config(cls, config) -> "LogHeader":
        """Capture the header fields from a live compass configuration."""
        excitation = config.front_end.excitation
        return cls(
            settle_periods=config.schedule.settle_periods,
            count_periods=config.schedule.count_periods,
            samples_per_period=config.samples_per_period,
            counter_clock_hz=config.counter.clock_hz,
            counter_width_bits=config.counter.width_bits,
            counter_strict_overflow=config.counter.strict_overflow,
            cordic_iterations=config.cordic_iterations,
            excitation_current_pp=excitation.current_pp,
            excitation_frequency_hz=excitation.oscillator.frequency_hz,
            coil_constant=config.sensor.excitation_coil_constant,
            sensor_name=config.sensor.name,
            core_model=config.core_model,
            noise_seed=config.front_end.noise_seed,
            noiseless=config.front_end.noise.is_noiseless,
            health_enabled=config.health.enabled,
            health_degrade=config.health.degrade,
            fingerprint=config_fingerprint(config),
        )

    def to_dict(self) -> Dict:
        body = dataclasses.asdict(self)
        body["magic"] = MAGIC
        return body

    @classmethod
    def from_dict(cls, body: Dict) -> "LogHeader":
        if body.get("magic") != MAGIC:
            raise ReplayError(
                f"not a replay log: magic {body.get('magic')!r} != {MAGIC!r}"
            )
        if body.get("version") != FORMAT_VERSION:
            raise ReplayError(
                f"replay-log version {body.get('version')!r} is not the "
                f"supported version {FORMAT_VERSION}"
            )
        fields = {f.name for f in dataclasses.fields(cls)}
        missing = fields - set(body)
        if missing:
            raise ReplayError(f"replay-log header is missing {sorted(missing)}")
        return cls(**{name: body[name] for name in fields})

    # -- reconstruction --------------------------------------------------------

    @property
    def current_amplitude(self) -> float:
        """Peak excitation current [A] (half the recorded peak-to-peak)."""
        return self.excitation_current_pp / 2.0

    @property
    def h_amplitude(self) -> float:
        """Peak excitation field [A/m] — the count-to-field scale factor."""
        return self.coil_constant * self.current_amplitude

    def rebuild_config(self):
        """Reconstruct the :class:`CompassConfig` this log was captured on.

        Starts from the default configuration and applies every recorded
        knob, then verifies the fingerprint.  A mismatch means the
        original run used settings the header does not carry (custom
        sensor, detector thresholds, imperfections…); full-chain replay
        then needs the caller to supply the config explicitly.
        """
        from ..analog.mux import MeasurementSchedule
        from ..core.compass import CompassConfig
        from ..digital.counter import CounterConfig
        from ..sensors.parameters import PRESETS

        sensor = PRESETS.get(self.sensor_name)
        if sensor is None:
            # Presets are keyed by short alias; the header records the
            # device's own name, so match on that too.
            matches = [p for p in PRESETS.values() if p.name == self.sensor_name]
            if len(matches) != 1:
                raise ReplayError(
                    f"recorded sensor {self.sensor_name!r} is not a known "
                    "preset; pass the original CompassConfig to the "
                    "replayer explicitly"
                )
            sensor = matches[0]
        base = CompassConfig()
        config = dataclasses.replace(
            base,
            sensor=sensor,
            core_model=self.core_model,
            schedule=MeasurementSchedule(
                count_periods=self.count_periods,
                settle_periods=self.settle_periods,
            ),
            samples_per_period=self.samples_per_period,
            counter=CounterConfig(
                clock_hz=self.counter_clock_hz,
                width_bits=self.counter_width_bits,
                strict_overflow=self.counter_strict_overflow,
            ),
            cordic_iterations=self.cordic_iterations,
            front_end=dataclasses.replace(
                base.front_end,
                excitation=dataclasses.replace(
                    base.front_end.excitation,
                    current_pp=self.excitation_current_pp,
                ),
                noise_seed=self.noise_seed,
            ),
            health=dataclasses.replace(
                base.health,
                enabled=self.health_enabled,
                degrade=self.health_degrade,
            ),
        )
        actual = config_fingerprint(config)
        if actual != self.fingerprint:
            raise ReplayError(
                "the recorded compass configuration cannot be rebuilt from "
                f"the header (fingerprint {self.fingerprint} != {actual}); "
                "pass the original CompassConfig to the replayer explicitly"
            )
        return config

    def build_backend(self):
        """A fresh :class:`DigitalBackEnd` at the recorded design point."""
        from ..analog.mux import MeasurementSchedule
        from ..digital.backend import DigitalBackEnd
        from ..digital.counter import CounterConfig

        return DigitalBackEnd(
            counter_config=CounterConfig(
                clock_hz=self.counter_clock_hz,
                width_bits=self.counter_width_bits,
                strict_overflow=self.counter_strict_overflow,
            ),
            cordic_iterations=self.cordic_iterations,
            schedule=MeasurementSchedule(
                count_periods=self.count_periods,
                settle_periods=self.settle_periods,
            ),
        )


@dataclass(frozen=True)
class ChannelCapture:
    """One channel's pulse-position latch signal, edge-exact."""

    edges: Tuple[Tuple[float, int], ...]
    initial_value: int
    window: Tuple[float, float]

    @classmethod
    def from_detector_output(cls, output: DetectorOutput) -> "ChannelCapture":
        return cls(
            edges=tuple((edge.time, edge.value) for edge in output.edges),
            initial_value=output.initial_value,
            window=(output.window[0], output.window[1]),
        )

    def to_detector_output(self) -> DetectorOutput:
        """Rebuild the latch signal the digital back-end consumes."""
        return DetectorOutput(
            edges=tuple(LogicEdge(time, int(value)) for time, value in self.edges),
            initial_value=self.initial_value,
            window=(self.window[0], self.window[1]),
        )

    def to_dict(self) -> Dict:
        return {
            "edges": [[time, value] for time, value in self.edges],
            "initial": self.initial_value,
            "window": list(self.window),
        }

    @classmethod
    def from_dict(cls, body: Dict) -> "ChannelCapture":
        return cls(
            edges=tuple((float(t), int(v)) for t, v in body["edges"]),
            initial_value=int(body["initial"]),
            window=(float(body["window"][0]), float(body["window"][1])),
        )


@dataclass(frozen=True)
class CounterCapture:
    """One channel's up-down counter outcome."""

    count: int
    total_ticks: int
    high_ticks: int
    overflowed: bool

    @classmethod
    def from_result(cls, result: CountResult) -> "CounterCapture":
        return cls(
            count=result.count,
            total_ticks=result.total_ticks,
            high_ticks=result.high_ticks,
            overflowed=result.overflowed,
        )

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, body: Dict) -> "CounterCapture":
        return cls(
            count=int(body["count"]),
            total_ticks=int(body["total_ticks"]),
            high_ticks=int(body["high_ticks"]),
            overflowed=bool(body["overflowed"]),
        )


@dataclass(frozen=True)
class CordicCapture:
    """The arctangent datapath, iteration by iteration."""

    cycles: int
    steps: Tuple[Tuple[int, int, int, int, int, int], ...]
    #: step layout: (iteration, shift, rotated, x_reg, y_reg, angle_fixed)

    @classmethod
    def from_steps(cls, cycles: int, steps: Tuple[CordicStep, ...]) -> "CordicCapture":
        return cls(
            cycles=cycles,
            steps=tuple(
                (s.iteration, s.shift, int(s.rotated), s.x_reg, s.y_reg,
                 s.angle_fixed)
                for s in steps
            ),
        )

    def to_dict(self) -> Dict:
        return {"cycles": self.cycles, "steps": [list(s) for s in self.steps]}

    @classmethod
    def from_dict(cls, body: Dict) -> "CordicCapture":
        return cls(
            cycles=int(body["cycles"]),
            steps=tuple(tuple(int(x) for x in s) for s in body["steps"]),
        )


@dataclass(frozen=True)
class HealthCapture:
    """The supervisor's verdict, as served with the measurement."""

    status: str
    flags: Tuple[str, ...]
    fallback: Optional[str]
    quadrant_ambiguity: bool
    stale_measurements: int
    staleness_s: float

    @classmethod
    def from_report(cls, report) -> "HealthCapture":
        return cls(
            status=report.status,
            flags=tuple(report.flags),
            fallback=report.fallback,
            quadrant_ambiguity=report.quadrant_ambiguity,
            stale_measurements=report.stale_measurements,
            staleness_s=report.staleness_s,
        )

    def to_dict(self) -> Dict:
        body = dataclasses.asdict(self)
        body["flags"] = list(self.flags)
        return body

    @classmethod
    def from_dict(cls, body: Dict) -> "HealthCapture":
        return cls(
            status=str(body["status"]),
            flags=tuple(body["flags"]),
            fallback=body["fallback"],
            quadrant_ambiguity=bool(body["quadrant_ambiguity"]),
            stale_measurements=int(body["stale_measurements"]),
            staleness_s=float(body["staleness_s"]),
        )


@dataclass(frozen=True)
class MeasurementRecord:
    """One measurement, captured at every stage boundary.

    ``kind == "measured"`` records carry the full chain and can be
    replayed through the digital back-end; ``kind == "fallback"``
    records (stale serve, single-axis degradation) carry whatever
    channels were observed plus the *served* measurement, and are
    compared on their final fields only.
    """

    seq: int
    path: str
    kind: str
    h_x: Optional[float]
    h_y: Optional[float]
    window: Tuple[float, float]
    channels: Dict[str, ChannelCapture]
    counter: Dict[str, CounterCapture] = field(default_factory=dict)
    cordic: Optional[CordicCapture] = None
    heading_deg: float = 0.0
    field_estimate_a_per_m: float = 0.0
    health: Optional[HealthCapture] = None

    def to_dict(self) -> Dict:
        return {
            "seq": self.seq,
            "path": self.path,
            "kind": self.kind,
            "h_x": self.h_x,
            "h_y": self.h_y,
            "window": list(self.window),
            "channels": {
                name: capture.to_dict()
                for name, capture in sorted(self.channels.items())
            },
            "counter": {
                name: capture.to_dict()
                for name, capture in sorted(self.counter.items())
            },
            "cordic": None if self.cordic is None else self.cordic.to_dict(),
            "heading_deg": self.heading_deg,
            "field_estimate_a_per_m": self.field_estimate_a_per_m,
            "health": None if self.health is None else self.health.to_dict(),
        }

    @classmethod
    def from_dict(cls, body: Dict) -> "MeasurementRecord":
        try:
            return cls(
                seq=int(body["seq"]),
                path=str(body["path"]),
                kind=str(body["kind"]),
                h_x=body["h_x"],
                h_y=body["h_y"],
                window=(float(body["window"][0]), float(body["window"][1])),
                channels={
                    name: ChannelCapture.from_dict(capture)
                    for name, capture in body["channels"].items()
                },
                counter={
                    name: CounterCapture.from_dict(capture)
                    for name, capture in body["counter"].items()
                },
                cordic=(
                    None if body["cordic"] is None
                    else CordicCapture.from_dict(body["cordic"])
                ),
                heading_deg=float(body["heading_deg"]),
                field_estimate_a_per_m=float(body["field_estimate_a_per_m"]),
                health=(
                    None if body["health"] is None
                    else HealthCapture.from_dict(body["health"])
                ),
            )
        except (KeyError, TypeError, IndexError) as exc:
            raise ReplayError(
                f"replay-log record is structurally invalid: {exc!r}"
            ) from exc


def true_heading_from_components(h_x: float, h_y: float) -> float:
    """Invert the sensor-pair geometry: axis fields → true heading [deg].

    With the conventions of :mod:`repro.sensors.pair` (``h_x ∝
    cos(heading)``, ``h_y ∝ −sin(heading)``) the truth behind a recorded
    input pair is ``atan2(−h_y, h_x)`` — lets the conformance runner
    re-derive sweep truths from a log without a side channel.
    """
    import math

    if h_x == 0.0 and h_y == 0.0:
        raise ReplayError("cannot derive a heading from a zero field record")
    return math.degrees(math.atan2(-h_y, h_x)) % 360.0


__all__ = [
    "FORMAT_VERSION",
    "KIND_FALLBACK",
    "KIND_MEASURED",
    "MAGIC",
    "ChannelCapture",
    "CordicCapture",
    "CounterCapture",
    "HealthCapture",
    "LogHeader",
    "MeasurementRecord",
    "STAGE_CORDIC",
    "STAGE_COUNTER",
    "STAGE_FIELD",
    "STAGE_HEADING",
    "STAGE_HEALTH",
    "STAGE_INPUTS",
    "STAGE_PULSE",
    "config_fingerprint",
    "decode_line",
    "encode_line",
    "true_heading_from_components",
]
