"""Divergence localisation: from "a record differs" to *where* exactly.

:mod:`repro.replay.diff` already names the first divergent stage inside
one record (down to a CORDIC iteration register, because the log
carries every iteration).  This module covers the two localisation
problems the per-record diff cannot:

* **Which record first diverges** in a long log, without replaying all
  of it — :func:`bisect_onset` for regression-shaped divergence (a code
  change or injected fault makes every record from some index on
  diverge), :func:`first_divergent_record` as the assumption-free
  linear fallback.
* **Which clock tick** inside a counting window first disagrees —
  :func:`bisect_counter_tick` re-counts prefix windows of the recorded
  pulse train through a reference and a suspect counter, narrowing the
  first differing tick with a galloping + binary search.  The counter
  log records only the window totals (as the silicon only exposes the
  final register on the bench), so tick-level localisation is a
  re-execution problem, not a lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ReplayError
from .format import ChannelCapture, LogHeader, MeasurementRecord
from .player import ReplayLogReader


def first_divergent_record(
    n_records: int, is_divergent: Callable[[int], bool]
) -> Optional[int]:
    """Linear scan: the lowest index where ``is_divergent`` holds.

    Makes no assumption about the divergence pattern; costs one replay
    per record up to the first hit.
    """
    for index in range(n_records):
        if is_divergent(index):
            return index
    return None


def bisect_onset(
    n_records: int, is_divergent: Callable[[int], bool]
) -> Optional[int]:
    """Galloping + binary search for the onset of a persistent divergence.

    Assumes the regression shape: records before some onset index
    agree, records from the onset on diverge.  Under that assumption
    this costs ``O(log n)`` replays instead of ``O(n)``.  The found
    onset is verified (divergent itself, predecessor clean); if the
    pattern is not actually monotonic the verification walks backwards
    to the true first divergence, degrading gracefully toward the
    linear scan.
    """
    if n_records == 0:
        return None
    if not is_divergent(n_records - 1):
        # No divergence at the end: under the persistence assumption the
        # log is clean; fall back to a linear sweep to be sure.
        return first_divergent_record(n_records - 1, is_divergent)
    # Gallop backwards from the end to bracket the onset.
    span = 1
    high = n_records - 1
    low = high
    while low > 0 and is_divergent(low - 1):
        high = low - 1
        low = max(0, high - span)
        span *= 2
        if is_divergent(low):
            continue
        break
    # Invariant: is_divergent(high), and (low == 0 or not is_divergent(low)).
    while low < high:
        mid = (low + high) // 2
        if is_divergent(mid):
            high = mid
        else:
            low = mid + 1
    # Non-monotonic patterns can leave earlier divergent records behind
    # the bracket; walk back until the predecessor is clean.
    while high > 0 and is_divergent(high - 1):
        high -= 1
    return high


@dataclass(frozen=True)
class TickDivergence:
    """The first clock tick where two counters disagree on one channel."""

    channel: str
    tick: int
    total_ticks: int
    reference_count: int
    suspect_count: int

    def describe(self) -> str:
        return (
            f"counter.{self.channel} first diverges at tick "
            f"{self.tick}/{self.total_ticks} (reference running count "
            f"{self.reference_count}, suspect {self.suspect_count})"
        )


def _prefix_count(counter, detector, t_start: float, ticks: int) -> int:
    """Running count after the first ``ticks`` clock ticks of the window."""
    prefix_end = t_start + ticks * counter.config.tick
    return counter.count_window(detector, (t_start, prefix_end)).count


def bisect_counter_tick(
    header: LogHeader,
    suspect_counter,
    record: MeasurementRecord,
    channel: str,
) -> Optional[TickDivergence]:
    """First clock tick where a suspect counter departs from the design.

    Re-counts prefix windows ``[t0, t0 + k·T_clk)`` of the recorded
    pulse train through a reference counter (rebuilt from the log
    header) and the suspect, galloping then bisecting on the first
    ``k`` where the running counts differ.  Assumes the divergence is
    persistent once it appears (a stuck bit, wrong increment, or
    truncated register keeps disagreeing) — the minimal ``k`` is then
    exact, verified by checking tick ``k − 1`` agrees.

    Returns ``None`` when the full-window counts already agree.
    """
    capture = record.channels.get(channel)
    if capture is None:
        raise ReplayError(
            f"record {record.seq} has no recorded {channel!r} channel"
        )
    reference = header.build_backend().counter
    reference.enable()
    if hasattr(suspect_counter, "enable"):
        suspect_counter.enable()
    if reference.config.clock_hz != suspect_counter.config.clock_hz:
        raise ReplayError(
            "reference and suspect counters run different clocks; "
            "tick indices would not be comparable"
        )
    detector = capture.to_detector_output()
    t_start = record.window[0]
    total = reference.count_window(detector, record.window).total_ticks
    if total < 1:
        raise ReplayError(
            f"record {record.seq} has an empty {channel!r} counting window"
        )

    def differs(ticks: int) -> bool:
        return _prefix_count(
            reference, detector, t_start, ticks
        ) != _prefix_count(suspect_counter, detector, t_start, ticks)

    if not differs(total):
        return None
    # Gallop from the start to bracket the first divergent tick count.
    low, high = 0, 1
    while high < total and not differs(high):
        low, high = high, min(total, high * 2)
    while low < high - 1:
        mid = (low + high) // 2
        if differs(mid):
            high = mid
        else:
            low = mid
    while high > 1 and differs(high - 1):
        high -= 1
    return TickDivergence(
        channel=channel,
        tick=high,
        total_ticks=total,
        reference_count=_prefix_count(reference, detector, t_start, high),
        suspect_count=_prefix_count(suspect_counter, detector, t_start, high),
    )


def localize_backend_fault(
    reader: ReplayLogReader,
    suspect_backend,
    tolerance_deg: float = 0.0,
):
    """End-to-end localisation of a faulted back-end against a log.

    Finds the first divergent record (onset bisection, linear-verified),
    then the first divergent stage inside it; when that stage is a
    counter, drills further to the first divergent clock tick.  Returns
    ``(record_index, Divergence, Optional[TickDivergence])`` or ``None``
    when the suspect back-end conforms.
    """
    from .diff import diff_record
    from .player import ReplayPlayer

    player = ReplayPlayer(reader.header, back_end=suspect_backend)
    replayed = {}

    def divergence_at(index: int):
        if index not in replayed:
            replayed[index] = player.replay_record(reader.record(index))
        return diff_record(
            reader.record(index),
            replayed[index],
            tolerance_deg=tolerance_deg,
            compare_health=False,
        )

    onset = bisect_onset(len(reader), lambda i: divergence_at(i) is not None)
    if onset is None:
        return None
    divergence = divergence_at(onset)
    tick = None
    if divergence.stage.startswith("counter."):
        channel = divergence.stage.split(".")[1]
        tick = bisect_counter_tick(
            reader.header, suspect_backend.counter, reader.record(onset),
            channel,
        )
    return onset, divergence, tick


__all__ = [
    "TickDivergence",
    "bisect_counter_tick",
    "bisect_onset",
    "first_divergent_record",
    "localize_backend_fault",
]
