"""The replay engine: re-executes recorded measurements deterministically.

Two replay depths, matching the two halves of Figure 1:

* **Back-end replay** (:meth:`ReplayPlayer.replay_record`) re-runs the
  *digital* section — counter, CORDIC, quadrant folder, field-estimate
  arithmetic — from the recorded analogue pulse edges.  No analogue
  simulation happens, which is why it is an order of magnitude faster
  than live measurement (``BENCH_replay.json``), yet every count,
  register and heading must come out bit-identical.
* **Full-chain replay** (:func:`replay_full`) rebuilds the whole
  compass from the log header and re-measures the recorded axis-field
  inputs through the analogue front-end as well.  This reproduces a run
  from nothing but its log — provided the log covers the compass's
  whole life (the noise stream and health history are positional
  state), which is exactly how the recorder is attached.

Both depths verify against the log with ``==`` on every field; any
mismatch raises :class:`~repro.errors.DivergenceError` naming the first
divergent stage.
"""

from __future__ import annotations

import io
from typing import IO, Iterator, List, Optional, Union

from ..errors import DivergenceError, ReplayError
from .format import (
    CordicCapture,
    CounterCapture,
    KIND_MEASURED,
    LogHeader,
    MeasurementRecord,
    decode_line,
)


class ReplayLogReader:
    """Seekable, validating reader over one ``.rplog`` document.

    The constructor indexes the lines and validates the envelope: magic,
    version, header CRC, footer presence and record count.  Records are
    parsed (and CRC-checked) lazily per access, so seeking to record
    ``i`` of a long log costs one line parse.

    Raises
    ------
    ReplayError
        On any structural defect: missing header/footer, CRC mismatch,
        version skew, out-of-order sequence numbers, or truncation.
    """

    def __init__(self, path_or_handle: Union[str, IO[str]]):
        if isinstance(path_or_handle, str):
            with open(path_or_handle, "r", encoding="utf-8") as handle:
                text = handle.read()
        else:
            text = path_or_handle.read()
        lines = text.splitlines()
        if not lines:
            raise ReplayError("replay log is empty — not even a header line")
        _, header_body = decode_line(lines[0], expect="header")
        self.header = LogHeader.from_dict(header_body)
        if len(lines) < 2:
            raise ReplayError("replay log has no footer — truncated mid-write")
        key, footer_body = decode_line(lines[-1])
        if key != "footer":
            raise ReplayError(
                "replay log has no footer — truncated, or the recorder "
                "was never closed"
            )
        self._record_lines = lines[1:-1]
        declared = footer_body.get("n_records")
        if declared != len(self._record_lines):
            raise ReplayError(
                f"replay log declares {declared} records but contains "
                f"{len(self._record_lines)} — truncated or spliced"
            )
        self._cache: dict = {}

    def __len__(self) -> int:
        return len(self._record_lines)

    def record(self, index: int) -> MeasurementRecord:
        """Record ``index``, parsed and CRC-verified on first access."""
        if not 0 <= index < len(self._record_lines):
            raise ReplayError(
                f"record index {index} out of range for a "
                f"{len(self._record_lines)}-record log"
            )
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        _, body = decode_line(self._record_lines[index], expect="record")
        record = MeasurementRecord.from_dict(body)
        if record.seq != index:
            raise ReplayError(
                f"replay log is out of order: record at line {index + 2} "
                f"carries seq {record.seq}"
            )
        self._cache[index] = record
        return record

    def __iter__(self) -> Iterator[MeasurementRecord]:
        for index in range(len(self)):
            yield self.record(index)

    def records(self) -> List[MeasurementRecord]:
        """Every record, fully validated."""
        return list(self)


def read_log(path_or_handle: Union[str, IO[str]]) -> ReplayLogReader:
    """Open and envelope-validate a replay log."""
    return ReplayLogReader(path_or_handle)


def reader_from_records(
    header: LogHeader, records: List[MeasurementRecord]
) -> ReplayLogReader:
    """An in-memory reader over records captured by a memory recorder.

    Serialises through the real line format so in-memory diffing
    exercises the same CRC/envelope machinery as file logs.
    """
    from .format import encode_line

    buffer = io.StringIO()
    buffer.write(encode_line("header", header.to_dict()) + "\n")
    for record in records:
        buffer.write(encode_line("record", record.to_dict()) + "\n")
    buffer.write(encode_line("footer", {"n_records": len(records)}) + "\n")
    buffer.seek(0)
    return ReplayLogReader(buffer)


class ReplayPlayer:
    """Re-executes the digital back-end from recorded pulse edges."""

    def __init__(self, header: LogHeader, back_end=None):
        self.header = header
        #: The back-end under test.  Injectable so the conformance suite
        #: can replay a log through a *deliberately faulted* back-end
        #: and watch the diff localise the first divergent stage.
        self.back_end = back_end if back_end is not None else header.build_backend()

    def replay_record(self, record: MeasurementRecord) -> MeasurementRecord:
        """One recorded measurement → a freshly recomputed record.

        Fallback records pass through unchanged (their heading was
        served from supervisor state, not a back-end pass — there is
        nothing digital to re-execute).
        """
        if record.kind != KIND_MEASURED:
            return record
        if "x" not in record.channels or "y" not in record.channels:
            raise ReplayError(
                f"record {record.seq} is marked measured but lacks a "
                "channel capture"
            )
        import math

        detector_x = record.channels["x"].to_detector_output()
        detector_y = record.channels["y"].to_detector_output()
        result = self.back_end.process_measurement(
            detector_x,
            detector_y,
            window_x=record.window,
            window_y=record.window,
        )
        x_ticks = result.x_result.total_ticks
        y_ticks = result.y_result.total_ticks
        if x_ticks == 0 or y_ticks == 0:
            raise ReplayError(
                f"record {record.seq} replays to a degenerate counting "
                "window (zero ticks)"
            )
        h_amp = self.header.h_amplitude
        field_estimate = math.hypot(
            result.x_count * h_amp / x_ticks,
            result.y_count * h_amp / y_ticks,
        )
        steps = result.cordic_steps
        if not steps:
            # The injected back-end may not have been asked to record
            # steps (no recorder/tracer attached); re-run the datapath
            # arithmetic once more purely for the capture.
            steps = self.back_end.cordic.arctan_first_quadrant(
                abs(-result.y_count), abs(result.x_count), record_steps=True
            ).steps
        return MeasurementRecord(
            seq=record.seq,
            path=record.path,
            kind=KIND_MEASURED,
            h_x=record.h_x,
            h_y=record.h_y,
            window=record.window,
            channels=record.channels,
            counter={
                "x": CounterCapture.from_result(result.x_result),
                "y": CounterCapture.from_result(result.y_result),
            },
            cordic=CordicCapture.from_steps(result.cordic_cycles, steps),
            heading_deg=result.heading_deg,
            field_estimate_a_per_m=field_estimate,
            health=record.health,
        )

    def replay(self, reader: ReplayLogReader) -> List[MeasurementRecord]:
        """Replay every record of a log through the back-end."""
        return [self.replay_record(record) for record in reader]

    def verify(self, reader: ReplayLogReader, tolerance_deg: float = 0.0) -> int:
        """Replay and assert bit-exactness against the log.

        Returns the number of records verified; raises
        :class:`~repro.errors.DivergenceError` at the first divergent
        stage.  Health verdicts are not compared — back-end replay does
        not re-run the supervisor.
        """
        from .diff import diff_record

        verified = 0
        for record in reader:
            replayed = self.replay_record(record)
            divergence = diff_record(
                record,
                replayed,
                tolerance_deg=tolerance_deg,
                compare_health=False,
            )
            if divergence is not None:
                raise DivergenceError(
                    f"replay diverged from the log: {divergence.describe()}"
                )
            verified += 1
        return verified


def replay_full(
    reader: ReplayLogReader,
    compass=None,
) -> List[MeasurementRecord]:
    """Re-execute the *whole* chain from the recorded inputs.

    Rebuilds a compass from the log header (or uses ``compass``), arms
    an in-memory recorder, and re-measures every recorded ``(h_x,
    h_y)`` input pair in order.  Because noise draws and health history
    are positional state, the log must cover the compass's whole life —
    which it does whenever the recorder was attached at construction.

    Returns the freshly captured records; raises
    :class:`~repro.errors.ReplayError` if a recorded input is missing
    or a measurement fails where the original succeeded.
    """
    from ..core.compass import IntegratedCompass
    from ..errors import ReproError
    from .recorder import LogRecorder, attach_recorder

    if compass is None:
        compass = IntegratedCompass(reader.header.rebuild_config())
    recorder = LogRecorder()
    attach_recorder(compass, recorder)
    for record in reader:
        if record.h_x is None or record.h_y is None:
            raise ReplayError(
                f"record {record.seq} carries no axis-field inputs; "
                "full-chain replay is impossible (back-end replay still works)"
            )
        try:
            compass.measure_components(record.h_x, record.h_y)
        except ReproError as exc:
            raise ReplayError(
                f"full-chain replay of record {record.seq} failed where the "
                f"original run served a heading: {type(exc).__name__}: {exc}"
            ) from exc
    return recorder.records


def verify_full(reader: ReplayLogReader, compass=None,
                tolerance_deg: float = 0.0) -> int:
    """Full-chain replay + bit-exact comparison against the log."""
    from .diff import diff_record

    replayed = replay_full(reader, compass=compass)
    originals = reader.records()
    if len(replayed) != len(originals):
        raise DivergenceError(
            f"full-chain replay produced {len(replayed)} records for a "
            f"{len(originals)}-record log"
        )
    for original, fresh in zip(originals, replayed):
        divergence = diff_record(
            original, fresh, tolerance_deg=tolerance_deg
        )
        if divergence is not None:
            raise DivergenceError(
                f"full-chain replay diverged: {divergence.describe()}"
            )
    return len(originals)


__all__ = [
    "ReplayLogReader",
    "ReplayPlayer",
    "read_log",
    "reader_from_records",
    "replay_full",
    "verify_full",
]
