"""Deterministic record/replay and differential conformance.

The bench analogue of the paper's boundary-scan investment: every
measurement can be captured at its stage boundaries into a
self-checking log (:mod:`repro.replay.format`,
:mod:`repro.replay.recorder`), re-executed bit-exactly from that log
(:mod:`repro.replay.player`), diffed across execution paths
(:mod:`repro.replay.diff`) and, when something disagrees, localised to
the first divergent CORDIC iteration or counter tick
(:mod:`repro.replay.bisect`).

See ``docs/replay.md`` for the format specification and workflows.
"""

from .diff import (
    CLASS_METADATA,
    CLASS_SILENT_WRONG,
    CLASS_TOLERATED,
    DiffResult,
    Divergence,
    PATHS,
    circular_delta_deg,
    diff_record,
    diff_records,
    require_conformance,
    run_conformance,
)
from .format import (
    FORMAT_VERSION,
    KIND_FALLBACK,
    KIND_MEASURED,
    MAGIC,
    ChannelCapture,
    CordicCapture,
    CounterCapture,
    HealthCapture,
    LogHeader,
    MeasurementRecord,
    config_fingerprint,
    true_heading_from_components,
)
from .bisect import (
    TickDivergence,
    bisect_counter_tick,
    bisect_onset,
    first_divergent_record,
    localize_backend_fault,
)
from .player import (
    ReplayLogReader,
    ReplayPlayer,
    read_log,
    reader_from_records,
    replay_full,
    verify_full,
)
from .recorder import LogRecorder, attach_recorder

__all__ = [
    "CLASS_METADATA",
    "CLASS_SILENT_WRONG",
    "CLASS_TOLERATED",
    "ChannelCapture",
    "CordicCapture",
    "CounterCapture",
    "DiffResult",
    "Divergence",
    "FORMAT_VERSION",
    "HealthCapture",
    "KIND_FALLBACK",
    "KIND_MEASURED",
    "LogHeader",
    "LogRecorder",
    "MAGIC",
    "MeasurementRecord",
    "PATHS",
    "ReplayLogReader",
    "ReplayPlayer",
    "TickDivergence",
    "attach_recorder",
    "bisect_counter_tick",
    "bisect_onset",
    "circular_delta_deg",
    "config_fingerprint",
    "diff_record",
    "diff_records",
    "first_divergent_record",
    "localize_backend_fault",
    "read_log",
    "reader_from_records",
    "replay_full",
    "require_conformance",
    "run_conformance",
    "true_heading_from_components",
    "verify_full",
]
