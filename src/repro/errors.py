"""Exception hierarchy for the compass reproduction library.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
violations of hardware constraints.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with physically meaningless parameters."""


class ComplianceError(ReproError):
    """An analogue block was driven outside its operating envelope.

    Example: asking the 5 V excitation source to drive a sensor whose series
    resistance exceeds the 800 Ω compliance limit stated in §3.1.
    """


class ResourceError(ReproError):
    """A design does not fit the Sea-of-Gates / MCM resource budget."""


class ProtocolError(ReproError):
    """A digital interface was exercised out of protocol.

    Example: shifting a boundary-scan register while the TAP controller is
    not in the Shift-DR state, or reading a CORDIC result before ``ready``.
    """


class CalibrationError(ReproError):
    """Sensor calibration could not be computed from the supplied samples."""


class FaultError(ProtocolError):
    """A runtime health check found the measurement data implausible.

    Raised by the :class:`~repro.core.health.HealthSupervisor` when a
    per-measurement plausibility check fails: counter ticks outside the
    scheduled window, counter value inconsistent with the detector duty
    cycle, missing pulse activity, a corrupted CORDIC ROM, or a field
    magnitude far outside the worldwide band.  Subclasses
    :class:`ProtocolError` because a health violation is a runtime
    protocol breach of the measurement contract — existing handlers that
    catch :class:`ProtocolError` keep working.
    """


class DegradedOperationError(FaultError):
    """Graceful degradation was required but no fallback exists.

    Example: both sensor channels failed so not even a single-axis
    heading can be produced, or a health check failed before any
    last-known-good heading was recorded.
    """


class EscapeError(FaultError):
    """A factory lot finished with test escapes — silent-wrong shipped.

    Raised by :meth:`repro.factory.LotReport.raise_for_escapes` (and the
    ``factory`` CLI verb, exit code 18) when any defective unit passed
    the full staged test program *and* the field-audit oracle shows it
    would serve an unflagged heading beyond the product tolerance.  An
    escape is the one outcome the production claim forbids: a caught
    unit costs yield, a latent unit costs margin, an escape lies to a
    customer.  The offending :class:`~repro.factory.LotReport` is
    attached as :attr:`report` when available.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class ReplayError(ReproError):
    """A replay log cannot be trusted or used.

    Raised by :mod:`repro.replay` whenever a recorded log fails
    structural validation: bad magic/version, a CRC mismatch on any
    record, a missing footer (truncated file), out-of-order sequence
    numbers, or a header whose configuration fingerprint cannot be
    reconstructed.  The contract is *fail loud*: a corrupted log must
    never replay into a plausible-but-wrong heading.
    """


class DivergenceError(ReplayError):
    """A replayed execution did not reproduce the recorded one bit-exactly.

    Raised by the replay verifier and the differential conformance
    runner when two executions of the same inputs disagree at any stage
    — down to a specific counter tick count or CORDIC iteration
    register.  Carries the first :class:`~repro.replay.diff.Divergence`
    when raised by the diff machinery.
    """


class ScenarioError(ReproError):
    """A mission scenario could not be served within its contract.

    Raised by :mod:`repro.scenario` (and the ``scenario`` CLI verb,
    exit code 19) when a compensation-integrity guard trips in strict
    mode: the temperature telemetry contradicts the oscillator-period
    thermometer, the calibration table fails its CRC, or the
    environment-compensation chain cannot produce a heading it is
    willing to serve.  The contract is the same one the health seam
    enforces one layer down: a wrong heading must be *loud*, never
    plausible.
    """


class EnvelopeError(ScenarioError):
    """Operating conditions left the envelope the compensation was fitted for.

    Raised when a scenario drives the instrument outside the domain its
    compensators are valid in — a sensed temperature beyond the
    polynomial fit range, a tilt beyond the compensable cone, or a
    calibration table older than its staleness budget in strict mode.
    Inside the envelope the chain corrects; outside it the honest answer
    is a refusal, not an extrapolation.
    """


class ArrayFusionError(ReproError):
    """The sensor array could not fuse a heading it is willing to serve.

    Raised by :mod:`repro.array` (and the ``array`` CLI verb, exit code
    20) when least-squares fusion over the surviving elements is
    impossible or untrustworthy: fewer healthy elements than the
    configured minimum after health screening and K-of-N vote
    rejection, or — in strict mode — a gradiometer residual above the
    near-field threshold, meaning the elements disagree about the field
    in a way a uniform Earth field cannot explain.  The array's
    contract matches every other layer's: a heading the instrument
    cannot defend is refused loudly, never served plausibly.
    """


class ServiceError(ReproError):
    """A request to the replicated :mod:`repro.service` layer failed.

    The base class for request-level failures of the
    :class:`~repro.service.HeadingService`: the service exhausted its
    resilience budget (replicas, retries, deadline) without assembling
    an answer it is willing to serve.
    """


class CircuitOpenError(ServiceError):
    """Every replica's circuit breaker is open — the request fast-fails.

    Raised before any measurement is attempted: the breaker layer has
    ejected all replicas and none has reached its half-open probe window
    yet, so trying would only add load to a sick fleet.
    """


class QuorumError(ServiceError):
    """The service could not assemble K agreeing replicas in time.

    Raised when, within the request deadline, fewer than ``quorum``
    vote-eligible headings were collected, or the collected headings
    disagreed so thoroughly that no K-of-N inlier set exists.
    """


class OverloadError(ServiceError):
    """The fleet shed this request instead of queueing it unboundedly.

    Raised by :mod:`repro.fleet` admission control when accepting the
    request would only make things worse: the token bucket is dry
    (``reason="rate-limit"``), the shard queue is full even after
    evicting dead work (``reason="queue-full"``), or the request can no
    longer meet its deadline and serving it would be dead work
    (``reason="deadline"``).  Load shedding is *loud by design* — a
    request the fleet cannot serve within its SLO is refused up front,
    never silently queued into a latency it would have rejected.
    """

    def __init__(self, message: str, reason: str = "overload"):
        super().__init__(message)
        #: Which rung of the admission ladder shed the request:
        #: ``rate-limit`` | ``queue-full`` | ``deadline``.
        self.reason = reason


class SLOViolationError(ServiceError):
    """A fleet soak finished with a service-level objective broken.

    Raised by the ``fleet-soak`` CLI verb (exit code 17) when the
    deterministic storm ramp ends with an invariant violated:
    availability below the floor at rated load, any silent-wrong
    response at any load level, a missing overload shed past
    saturation, or admitted-request p99 latency beyond the SLO.  The
    report that failed is attached as :attr:`report` when available.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report
