"""Exception hierarchy for the compass reproduction library.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
violations of hardware constraints.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with physically meaningless parameters."""


class ComplianceError(ReproError):
    """An analogue block was driven outside its operating envelope.

    Example: asking the 5 V excitation source to drive a sensor whose series
    resistance exceeds the 800 Ω compliance limit stated in §3.1.
    """


class ResourceError(ReproError):
    """A design does not fit the Sea-of-Gates / MCM resource budget."""


class ProtocolError(ReproError):
    """A digital interface was exercised out of protocol.

    Example: shifting a boundary-scan register while the TAP controller is
    not in the Shift-DR state, or reading a CORDIC result before ``ready``.
    """


class CalibrationError(ReproError):
    """Sensor calibration could not be computed from the supplied samples."""
