"""Dead-reckoning navigation on top of the compass.

The paper's opening sentence places the work among "magnetic sensor
systems for navigational use" [Pet86]; this package closes that loop: a
walker (or vehicle, as in Peters' automotive paper) follows legs of
known length using the compass for direction, and we track how heading
errors integrate into position error.

Conventions: a local flat-earth tangent plane with x = north [m],
y = east [m]; headings in degrees clockwise from *magnetic* north, with
an optional declination correction to geographic north.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Position:
    """A point on the local tangent plane [m]."""

    north: float
    east: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.north - other.north, self.east - other.east)

    def bearing_to(self, other: "Position") -> float:
        """Geographic bearing toward another point [deg, 0..360)."""
        bearing = math.degrees(
            math.atan2(other.east - self.east, other.north - self.north)
        )
        return bearing % 360.0

    def moved(self, bearing_deg: float, distance_m: float) -> "Position":
        """The position after travelling a leg."""
        if distance_m < 0.0:
            raise ConfigurationError("leg distance must be non-negative")
        rad = math.radians(bearing_deg)
        return Position(
            self.north + distance_m * math.cos(rad),
            self.east + distance_m * math.sin(rad),
        )


ORIGIN = Position(0.0, 0.0)


@dataclass(frozen=True)
class Leg:
    """One route leg: a geographic bearing and a distance."""

    bearing_deg: float
    distance_m: float

    def __post_init__(self) -> None:
        if self.distance_m <= 0.0:
            raise ConfigurationError("leg distance must be positive")


class DeadReckoner:
    """Integrates compass headings and distances into a track.

    Parameters
    ----------
    declination_deg:
        Local magnetic declination; compass headings (magnetic) are
        converted to geographic bearings by *adding* it.
    start:
        Starting position.
    """

    def __init__(self, declination_deg: float = 0.0, start: Position = ORIGIN):
        self.declination_deg = declination_deg
        self.track: List[Position] = [start]

    @property
    def position(self) -> Position:
        return self.track[-1]

    def advance(self, magnetic_heading_deg: float, distance_m: float) -> Position:
        """Walk one leg on a compass heading; returns the new position."""
        bearing = magnetic_heading_deg + self.declination_deg
        new_position = self.position.moved(bearing, distance_m)
        self.track.append(new_position)
        return new_position

    def total_distance(self) -> float:
        """Path length walked so far [m]."""
        return sum(
            a.distance_to(b) for a, b in zip(self.track, self.track[1:])
        )

    def closure_error(self, intended_end: Position) -> float:
        """Distance between where we are and where we meant to be [m]."""
        return self.position.distance_to(intended_end)


def route_positions(legs: Sequence[Leg], start: Position = ORIGIN) -> List[Position]:
    """The exact waypoint list of a route (the ground truth)."""
    positions = [start]
    for leg in legs:
        positions.append(positions[-1].moved(leg.bearing_deg, leg.distance_m))
    return positions


def follow_route(
    legs: Sequence[Leg],
    compass,
    field_magnitude_t: float = 50.0e-6,
    declination_deg: float = 0.0,
    start: Position = ORIGIN,
) -> Tuple[DeadReckoner, List[float]]:
    """Walk a route steering by compass; returns the reckoner and the
    per-leg heading errors [deg].

    ``compass`` is an :class:`~repro.core.compass.IntegratedCompass`.
    For each leg the walker *intends* the leg's bearing, the compass is
    read at the corresponding magnetic heading, and the walker then
    walks the *measured* heading — so every instrument error bends the
    track exactly as it would in the field.
    """
    if len(legs) == 0:
        raise ConfigurationError("route needs at least one leg")
    reckoner = DeadReckoner(declination_deg, start)
    heading_errors: List[float] = []
    for leg in legs:
        magnetic_target = (leg.bearing_deg - declination_deg) % 360.0
        measurement = compass.measure_heading(magnetic_target, field_magnitude_t)
        heading_errors.append(measurement.error_against(magnetic_target))
        reckoner.advance(measurement.heading_deg, leg.distance_m)
    return reckoner, heading_errors


def worst_case_drift(
    total_distance_m: float, heading_error_deg: float
) -> float:
    """Cross-track drift bound for a constant heading error [m].

    ``drift ≈ distance · sin(error)`` — the number that turns the
    paper's 1° budget into "17 m per kilometre walked".
    """
    if total_distance_m < 0.0:
        raise ConfigurationError("distance must be non-negative")
    return total_distance_m * math.sin(math.radians(abs(heading_error_deg)))
