"""Declination handling: converting compass headings to geographic ones.

The compass reads *magnetic* headings.  For navigation against a map the
user applies the local declination — which this module derives from the
same dipole field model the physics package provides, with a
precomputed lookup grid for the fast path (a real device would carry
exactly such a table in ROM).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..physics.earth_field import DipoleEarthField
from ..units import wrap_degrees


def magnetic_to_geographic(magnetic_heading_deg: float, declination_deg: float) -> float:
    """Geographic (true) heading from a compass reading.

    Declination is east-positive: true = magnetic + declination.
    """
    return wrap_degrees(magnetic_heading_deg + declination_deg)


def geographic_to_magnetic(true_heading_deg: float, declination_deg: float) -> float:
    """The compass heading to steer for a desired true heading."""
    return wrap_degrees(true_heading_deg - declination_deg)


@dataclass(frozen=True)
class GridPoint:
    """One declination-table entry."""

    lat_deg: float
    lon_deg: float
    declination_deg: float


class DeclinationTable:
    """A ROM-style declination lookup grid with bilinear interpolation.

    Parameters
    ----------
    lat_step_deg, lon_step_deg:
        Grid pitch.  A 10°×15° grid (the default) keeps interpolation
        error under ~1° at mid latitudes against the generating model —
        checked by the tests.
    lat_limit_deg:
        Highest |latitude| tabulated; declination is ill-conditioned at
        the geomagnetic poles and real tables stop short of them.
    """

    def __init__(
        self,
        lat_step_deg: float = 10.0,
        lon_step_deg: float = 15.0,
        lat_limit_deg: float = 60.0,
        model: Optional[DipoleEarthField] = None,
    ):
        if lat_step_deg <= 0.0 or lon_step_deg <= 0.0:
            raise ConfigurationError("grid steps must be positive")
        if not 0.0 < lat_limit_deg <= 80.0:
            raise ConfigurationError("latitude limit must be in (0, 80]")
        self.lat_step = lat_step_deg
        self.lon_step = lon_step_deg
        self.lat_limit = lat_limit_deg
        self.model = model if model is not None else DipoleEarthField()

        self._lats = self._axis(-lat_limit_deg, lat_limit_deg, lat_step_deg)
        self._lons = self._axis(-180.0, 180.0, lon_step_deg)
        self._table: List[List[float]] = [
            [
                self.model.field_at(lat, lon).declination_deg
                for lon in self._lons
            ]
            for lat in self._lats
        ]

    @staticmethod
    def _axis(start: float, stop: float, step: float) -> List[float]:
        count = int(round((stop - start) / step)) + 1
        return [start + i * step for i in range(count)]

    @property
    def entries(self) -> int:
        """Table size — the ROM words a device would carry."""
        return len(self._lats) * len(self._lons)

    def _bracket(self, value: float, axis: List[float]) -> Tuple[int, float]:
        if value <= axis[0]:
            return 0, 0.0
        if value >= axis[-1]:
            return len(axis) - 2, 1.0
        for i in range(len(axis) - 1):
            if axis[i] <= value <= axis[i + 1]:
                frac = (value - axis[i]) / (axis[i + 1] - axis[i])
                return i, frac
        raise ConfigurationError("axis bracketing failed")  # pragma: no cover

    def lookup(self, lat_deg: float, lon_deg: float) -> float:
        """Bilinearly interpolated declination [deg, east positive].

        Latitudes beyond the table limit clamp to the edge rows (with the
        accuracy caveat real tables share); longitudes wrap.
        """
        if not -90.0 <= lat_deg <= 90.0:
            raise ConfigurationError(f"latitude {lat_deg} out of range")
        lon = math.fmod(lon_deg + 180.0, 360.0)
        if lon < 0.0:
            lon += 360.0
        lon -= 180.0
        i, fy = self._bracket(lat_deg, self._lats)
        j, fx = self._bracket(lon, self._lons)

        # Interpolate on the unit circle to survive the ±180° wrap of
        # declination values near the poles.
        def mix(a: float, b: float, f: float) -> float:
            ax, ay = math.cos(math.radians(a)), math.sin(math.radians(a))
            bx, by = math.cos(math.radians(b)), math.sin(math.radians(b))
            x = ax + f * (bx - ax)
            y = ay + f * (by - ay)
            return math.degrees(math.atan2(y, x))

        top = mix(self._table[i][j], self._table[i][j + 1], fx)
        bottom = mix(self._table[i + 1][j], self._table[i + 1][j + 1], fx)
        return mix(top, bottom, fy)

    def worst_error_deg(self, n_samples: int = 200, seed: int = 0) -> float:
        """Interpolation error against the generating model, sampled."""
        import numpy as np

        rng = np.random.default_rng(seed)
        worst = 0.0
        for _ in range(n_samples):
            lat = float(rng.uniform(-self.lat_limit, self.lat_limit))
            lon = float(rng.uniform(-180.0, 180.0))
            exact = self.model.field_at(lat, lon).declination_deg
            approx = self.lookup(lat, lon)
            error = abs((approx - exact + 180.0) % 360.0 - 180.0)
            worst = max(worst, error)
        return worst
