"""Navigation on top of the compass: dead reckoning and route following."""

from .declination import (
    DeclinationTable,
    geographic_to_magnetic,
    magnetic_to_geographic,
)
from .dead_reckoning import (
    ORIGIN,
    DeadReckoner,
    Leg,
    Position,
    follow_route,
    route_positions,
    worst_case_drift,
)

__all__ = [
    "DeclinationTable",
    "geographic_to_magnetic",
    "magnetic_to_geographic",
    "DeadReckoner",
    "Leg",
    "ORIGIN",
    "Position",
    "follow_route",
    "route_positions",
    "worst_case_drift",
]
