"""The environment-compensation chain and its integrity guards.

The chain composes the repo's existing correction blocks into the
firmware a fielded compass would run:

1. **Temperature** — a polynomial compensator fitted over
   :data:`~repro.scenario.dsl.FIT_TEMPERATURES_C` (the arXiv 2401.13321
   recipe: characterise the field-estimate gain against temperature,
   fit, divide out), plus the *oscillator-period thermometer*: the
   measurement duration is derived from the excitation oscillator whose
   RC drifts ~55 ppm/K, so the digital side carries an independent
   coarse thermometer that cross-checks the temperature telemetry.
2. **Iron calibration** — the :mod:`repro.core.calibration` ellipse fit,
   wrapped in a :class:`CalibrationStore` that CRC-seals the table and
   tracks its age in missions.
3. **Tilt** — inversion of :func:`repro.core.tilt.tilt_error_deg` by
   fixed-point iteration, using the sensed attitude and the location's
   field model.
4. **Anomaly gating** — the bounded
   :class:`~repro.core.anomaly.FieldAnomalyDetector` plus a sticky
   trusted-magnitude baseline, so a disturbance that *stays* does not
   regain trust after its onset jump.

Robustness core: every compensator input is guarded.  A guard that
trips either raises a typed :class:`~repro.errors.ScenarioError` /
:class:`~repro.errors.EnvelopeError` (strict mode) or attaches a flag
that makes the step *degraded* (degrade mode) — silent mis-compensation
is designed out.  ``docs/scenarios.md`` documents each guard's
physical basis and its honest blind windows.
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.anomaly import DetectorSettings, FieldAnomalyDetector
from ..core.calibration import CalibrationModel
from ..core.compass import CompassConfig, IntegratedCompass
from ..core.heading import HeadingMeasurement
from ..core.tilt import Attitude, body_field_components, tilt_error_deg
from ..errors import EnvelopeError, ScenarioError
from ..physics.earth_field import FieldVector
from ..physics.thermal import T_REFERENCE_C, compass_config_at_temperature
from ..units import tesla_to_a_per_m, wrap_degrees

# Guard flags the chain can attach to a step (any flag => degraded).
F_TEMP_ENVELOPE = "temp-envelope"
F_TEMP_IMPLAUSIBLE = "temp-implausible"
F_CAL_CRC = "calibration-crc"
F_CAL_STALE = "calibration-stale"
F_CAL_FIT = "calibration-fit"
F_FIELD_BAND = "field-band"
F_TILT_ENVELOPE = "tilt-envelope"
F_FIELD_RESIDUAL = "field-residual"
F_ANOMALY = "anomaly"


@dataclass(frozen=True)
class ThermalCalibration:
    """Fitted temperature model of one compass design.

    ``gain_coeffs`` is the polynomial (highest power first, argument
    ``T − 25``) of the field-estimate gain relative to the reference
    temperature; ``duration_c0/c1`` is the linear fit of the measurement
    duration against temperature — the oscillator-period thermometer.
    """

    gain_coeffs: Tuple[float, ...]
    duration_c0: float
    duration_c1: float
    t_min_c: float
    t_max_c: float
    reference_field_a_per_m: float

    def gain(self, temperature_c: float) -> float:
        return float(
            np.polyval(self.gain_coeffs, temperature_c - T_REFERENCE_C)
        )

    def correct_field(
        self, field_a_per_m: float, temperature_c: float
    ) -> float:
        return field_a_per_m / self.gain(temperature_c)

    def predicted_duration_s(self, temperature_c: float) -> float:
        return self.duration_c0 + self.duration_c1 * temperature_c

    def implied_temperature_c(self, duration_s: float) -> float:
        """Invert the oscillator-period thermometer."""
        return (duration_s - self.duration_c0) / self.duration_c1

    def duration_residual_kelvin(
        self, duration_s: float, sensed_temperature_c: float
    ) -> float:
        """Disagreement between telemetry and the oscillator thermometer
        [K]: how far the sensed temperature is from the one the
        excitation period implies."""
        return self.implied_temperature_c(duration_s) - sensed_temperature_c

    @classmethod
    def fit(
        cls,
        base_config: CompassConfig,
        temperatures_c: Sequence[float],
        field_t: float = 50.0e-6,
        heading_deg: float = 45.0,
        degree: int = 2,
    ) -> "ThermalCalibration":
        """Characterise a design over a temperature grid and fit.

        One compass is built per grid point (the thermal chamber sweep
        of the factory's characterisation run) and measured once; the
        gain polynomial and the duration line come from those samples.
        """
        if len(temperatures_c) < degree + 1:
            raise ScenarioError(
                f"thermal fit needs at least {degree + 1} temperatures"
            )
        gains: List[float] = []
        durations: List[float] = []
        reference = None
        for temperature in temperatures_c:
            compass = IntegratedCompass(
                compass_config_at_temperature(base_config, temperature)
            )
            measurement = compass.measure_heading(heading_deg, field_t)
            gains.append(measurement.field_estimate_a_per_m)
            durations.append(measurement.measurement_time_s)
            if temperature == T_REFERENCE_C:
                reference = measurement.field_estimate_a_per_m
        if reference is None:
            compass = IntegratedCompass(
                compass_config_at_temperature(base_config, T_REFERENCE_C)
            )
            reference = compass.measure_heading(
                heading_deg, field_t
            ).field_estimate_a_per_m
        temps = np.asarray(temperatures_c, dtype=float)
        gain_coeffs = np.polyfit(
            temps - T_REFERENCE_C, np.asarray(gains) / reference, degree
        )
        duration_c1, duration_c0 = np.polyfit(
            temps, np.asarray(durations), 1
        )
        return cls(
            gain_coeffs=tuple(float(c) for c in gain_coeffs),
            duration_c0=float(duration_c0),
            duration_c1=float(duration_c1),
            t_min_c=float(min(temperatures_c)),
            t_max_c=float(max(temperatures_c)),
            reference_field_a_per_m=float(reference),
        )


#: Fitted thermal calibrations, keyed by the config's repr — one chamber
#: characterisation per design, shared across runners and campaigns.
_THERMAL_CACHE: Dict[str, ThermalCalibration] = {}


def thermal_calibration_for(
    base_config: CompassConfig, temperatures_c: Sequence[float]
) -> ThermalCalibration:
    """Cached :meth:`ThermalCalibration.fit` for a compass design."""
    key = repr(base_config) + repr(tuple(temperatures_c))
    if key not in _THERMAL_CACHE:
        _THERMAL_CACHE[key] = ThermalCalibration.fit(
            base_config, temperatures_c
        )
    return _THERMAL_CACHE[key]


def _encode_model(model: CalibrationModel) -> bytes:
    return json.dumps(
        {
            "offset_x": model.offset_x,
            "offset_y": model.offset_y,
            "matrix": model.matrix,
            "radius": model.radius,
        },
        sort_keys=True,
    ).encode("ascii")


def _encode_store_payload(
    model: CalibrationModel, fit_residual_deg: float
) -> bytes:
    # The fit-quality self-assessment is part of the sealed payload:
    # a table whose recorded residual was edited without resealing is
    # as corrupt as one whose offsets were.
    return _encode_model(model) + (
        f"|fit_residual_deg={fit_residual_deg!r}".encode("ascii")
    )


@dataclass
class CalibrationStore:
    """The persisted iron-calibration table, CRC-sealed and age-tracked.

    ``crc`` covers the exact float encoding of the model *and* its
    fit-quality self-assessment; ``verify`` recomputes it so a
    corrupted-in-storage table is caught before a single heading is
    served through it.  ``age_missions`` counts missions since the fit
    — the staleness watchdog's input.

    ``fit_residual_deg`` is the table's own report card, measured at
    seal time: the worst circular distance between a commanded
    turn-table heading and the heading the fitted model reconstructs
    from that rotation's counts.  The affine ellipse model is exact
    only insofar as counts are linear in field — off the reference
    temperature, in weak horizontal fields, or under near-bound iron
    the per-axis nonlinearity leaves a residual the fit *cannot*
    remove, and the rotation itself exposes it (the commanded headings
    are known).  The chain's fit-quality guard reads this number.
    """

    model: CalibrationModel
    crc: int = 0
    age_missions: int = 0
    fit_residual_deg: float = 0.0

    @classmethod
    def sealed(
        cls,
        model: CalibrationModel,
        age_missions: int = 0,
        fit_residual_deg: float = 0.0,
    ) -> "CalibrationStore":
        return cls(
            model=model,
            crc=zlib.crc32(_encode_store_payload(model, fit_residual_deg)),
            age_missions=age_missions,
            fit_residual_deg=fit_residual_deg,
        )

    def verify(self) -> bool:
        return (
            zlib.crc32(
                _encode_store_payload(self.model, self.fit_residual_deg)
            )
            == self.crc
        )


class AnomalyGate:
    """Sticky disturbance gate over the corrected field magnitude.

    Wraps the :class:`~repro.core.anomaly.FieldAnomalyDetector` (band +
    jump checks) and adds the property the raw detector lacks: once a
    disturbance arrives, the *pre-disturbance* magnitude stays the trust
    baseline, so a field that jumped and then holds steady does not
    quietly regain trust while the disturbance is still there.
    """

    def __init__(
        self,
        settings: DetectorSettings = DetectorSettings(),
        baseline_jump: float = 0.25,
    ):
        self.detector = FieldAnomalyDetector(settings)
        self.baseline_jump = baseline_jump
        self.baseline_a_per_m: Optional[float] = None

    def check(self, measurement: HeadingMeasurement,
              corrected_field_a_per_m: float) -> Tuple[bool, str]:
        """Classify one step; returns (trusted, detail).

        The band/jump detector judges the *corrected* magnitude: the raw
        estimate carries the vertical-field tilt leak, which modulates
        with heading and would read as a "disturbance in motion" on any
        rotating, tilted platform.  After compensation only a genuine
        ambient change can move the magnitude.
        """
        report = self.detector.check(
            replace(
                measurement,
                field_estimate_a_per_m=corrected_field_a_per_m,
            )
        )
        if self.baseline_a_per_m is not None:
            deviation = (
                abs(corrected_field_a_per_m - self.baseline_a_per_m)
                / self.baseline_a_per_m
            )
            if deviation > self.baseline_jump:
                return False, (
                    f"field {deviation:.0%} off the trusted baseline "
                    f"({report.verdict.value})"
                )
        if not report.trusted:
            return False, report.detail
        if self.baseline_a_per_m is None:
            self.baseline_a_per_m = corrected_field_a_per_m
        else:
            # Slow tracking keeps the baseline honest against drift
            # without letting a step change re-anchor it.
            self.baseline_a_per_m += 0.1 * (
                corrected_field_a_per_m - self.baseline_a_per_m
            )
        return True, ""


@dataclass(frozen=True)
class ChainConfig:
    """Thresholds of the compensation-integrity guards."""

    strict: bool = False
    #: Margin beyond the thermal fit range before EnvelopeError [°C].
    temperature_margin_c: float = 5.0
    #: Telemetry/oscillator-thermometer disagreement that trips the
    #: plausibility guard [K] (~3 counter ticks of window drift).
    temperature_implausible_k: float = 15.0
    #: Staleness watchdog budget [missions since the table was fitted].
    max_calibration_age_missions: int = 0
    #: Worst self-measured calibration-rotation residual the chain will
    #: serve unflagged [deg].  An affine fit that cannot reproduce its
    #: own turn-table headings to this budget is operating outside the
    #: domain where the ellipse model is trustworthy (off-reference
    #: temperature, weak horizontal field, near-bound iron) — still the
    #: best correction available, but every heading through it is
    #: flagged.  The golden corpus fits at ≤0.29°; the known
    #: silent-wrong envelope corners fit at ≥0.9°.
    max_fit_residual_deg: float = 0.5
    #: Horizontal-field floor of the iron-calibrated instrument's
    #: qualified envelope [µT].  Heading resolution is degrees per
    #: count, and counts scale with the horizontal field — below this
    #: floor the count nonlinearity alone can exceed the 1° spec with
    #: barely any platform iron, so every calibrated heading is served
    #: flagged.  (The paper rates 25–65 µT worldwide; 20 µT is where
    #: our characterisation shows the spec genuinely becomes
    #: unattainable.)
    qualified_field_floor_ut: float = 20.0
    #: The paper's rated field-band minimum [µT].  Between the floor
    #: and this line the instrument operates *derated*: the iron
    #: budget shrinks to ``derated_iron_fraction``.
    rated_field_min_ut: float = 25.0
    #: Maximum hard-iron fraction of the horizontal field (measured
    #: from the table's own fitted ``|offset| / radius``) the chain
    #: serves unflagged when the field is below the rated band.
    derated_iron_fraction: float = 0.075
    #: Compensable tilt cone; beyond it the small-tilt inversion is
    #: extrapolating and the honest answer is a refusal [deg].
    max_tilt_deg: float = 20.0
    #: Relative corrected-magnitude residual against the location model
    #: that latches the field-residual monitor.
    residual_threshold: float = 0.06
    #: Steps the residual must persist before latching (one-step
    #: glitches are quantisation, not faults).
    residual_persistence: int = 1


@dataclass(frozen=True)
class ChainVerdict:
    """One step's compensated output plus its honesty metadata."""

    heading_deg: float
    field_a_per_m: float
    flags: Tuple[str, ...]
    detail: str
    temperature_used_c: float

    @property
    def degraded(self) -> bool:
        return bool(self.flags)


class CompensationChain:
    """The per-mission compensation pipeline with integrity guards.

    One instance per scenario run — the residual monitor, anomaly gate
    and staleness watchdog are stateful across the mission's steps.
    """

    def __init__(
        self,
        field_model: FieldVector,
        declination_deg: float,
        thermal: Optional[ThermalCalibration] = None,
        store: Optional[CalibrationStore] = None,
        tilt_enabled: bool = False,
        anomaly_enabled: bool = False,
        config: ChainConfig = ChainConfig(),
    ):
        self.field_model = field_model
        self.declination_deg = declination_deg
        self.thermal = thermal
        self.store = store
        self.tilt_enabled = tilt_enabled
        self.config = config
        self.gate = AnomalyGate() if anomaly_enabled else None
        self._residual_streak = 0
        self.residual_latched = False

    # -- guard helpers ---------------------------------------------------------

    def _refuse(self, kind: type, message: str) -> None:
        if self.config.strict:
            raise kind(message)

    # -- stages ----------------------------------------------------------------

    def _temperature_stage(
        self, measurement: HeadingMeasurement, sensed_c: float,
        flags: List[str], notes: List[str],
    ) -> Tuple[float, float]:
        """Returns (temperature to compensate with, corrected field)."""
        thermal = self.thermal
        if thermal is None:
            return sensed_c, measurement.field_estimate_a_per_m
        cfg = self.config
        t_used = sensed_c
        low = thermal.t_min_c - cfg.temperature_margin_c
        high = thermal.t_max_c + cfg.temperature_margin_c
        if not low <= sensed_c <= high:
            self._refuse(
                EnvelopeError,
                f"sensed temperature {sensed_c:.1f} °C outside the "
                f"compensator's fitted envelope [{low:.0f}, {high:.0f}] °C",
            )
            flags.append(F_TEMP_ENVELOPE)
            notes.append(f"T={sensed_c:.1f}C outside fit envelope")
            t_used = min(max(sensed_c, thermal.t_min_c), thermal.t_max_c)
        residual_k = thermal.duration_residual_kelvin(
            measurement.measurement_time_s, sensed_c
        )
        if abs(residual_k) > cfg.temperature_implausible_k:
            implied = thermal.implied_temperature_c(
                measurement.measurement_time_s
            )
            self._refuse(
                ScenarioError,
                f"temperature telemetry implausible: sensor says "
                f"{sensed_c:.1f} °C but the excitation period implies "
                f"{implied:.1f} °C",
            )
            flags.append(F_TEMP_IMPLAUSIBLE)
            notes.append(
                f"telemetry {sensed_c:.0f}C vs oscillator {implied:.0f}C"
            )
            # Graceful degradation: trust the instrument's own
            # thermometer over the contradicted telemetry.
            t_used = min(max(implied, thermal.t_min_c), thermal.t_max_c)
        corrected = thermal.correct_field(
            measurement.field_estimate_a_per_m, t_used
        )
        return t_used, corrected

    def _calibration_stage(
        self, measurement: HeadingMeasurement, field_a_per_m: float,
        flags: List[str], notes: List[str],
    ) -> Tuple[float, float]:
        """Returns (heading after iron correction, corrected field)."""
        store = self.store
        if store is None:
            return measurement.heading_deg, field_a_per_m
        if not store.verify():
            self._refuse(
                ScenarioError,
                "calibration table failed its CRC check — refusing to "
                "serve headings through a corrupted correction",
            )
            flags.append(F_CAL_CRC)
            notes.append("calibration CRC mismatch; table bypassed")
            return measurement.heading_deg, field_a_per_m
        if store.age_missions > self.config.max_calibration_age_missions:
            self._refuse(
                EnvelopeError,
                f"calibration table is {store.age_missions} missions old "
                f"(budget {self.config.max_calibration_age_missions}) — "
                "the platform's iron signature may have changed",
            )
            flags.append(F_CAL_STALE)
            notes.append(f"calibration {store.age_missions} missions old")
            # Stale is a warning, not a bypass: the table is still the
            # best correction available, but every heading through it is
            # flagged until a refit.
        if store.fit_residual_deg > self.config.max_fit_residual_deg:
            self._refuse(
                EnvelopeError,
                f"calibration fit residual {store.fit_residual_deg:.2f}° "
                f"exceeds the {self.config.max_fit_residual_deg:.2f}° "
                "budget — the ellipse model could not reproduce its own "
                "calibration rotation, so its corrections are not "
                "trustworthy here",
            )
            flags.append(F_CAL_FIT)
            notes.append(
                f"calibration fit residual "
                f"{store.fit_residual_deg:.2f} deg over budget"
            )
            # Like staleness: apply the best available correction, but
            # never serve it unflagged.
        model = store.model
        cfg = self.config
        horizontal_ut = self.field_model.horizontal * 1e6
        iron_fraction = (
            math.hypot(model.offset_x, model.offset_y) / model.radius
            if model.radius > 0.0
            else 0.0
        )
        if horizontal_ut < cfg.qualified_field_floor_ut:
            self._refuse(
                EnvelopeError,
                f"horizontal field {horizontal_ut:.1f} µT is below the "
                f"{cfg.qualified_field_floor_ut:.0f} µT floor of the "
                "iron-calibrated instrument's qualified envelope",
            )
            flags.append(F_FIELD_BAND)
            notes.append(
                f"horizontal field {horizontal_ut:.1f} uT below "
                "qualified floor"
            )
        elif (
            horizontal_ut < cfg.rated_field_min_ut
            and iron_fraction > cfg.derated_iron_fraction
        ):
            self._refuse(
                EnvelopeError,
                f"platform iron is {iron_fraction:.0%} of the "
                f"{horizontal_ut:.1f} µT horizontal field — over the "
                f"{cfg.derated_iron_fraction:.1%} derated budget below "
                f"the rated {cfg.rated_field_min_ut:.0f} µT band",
            )
            flags.append(F_FIELD_BAND)
            notes.append(
                f"iron {iron_fraction:.0%} over derated budget at "
                f"{horizontal_ut:.1f} uT"
            )
        heading = model.corrected_heading_deg(
            measurement.x_count, measurement.y_count
        )
        raw_norm = math.hypot(measurement.x_count, measurement.y_count)
        if raw_norm > 0.0:
            corrected_norm = math.hypot(
                *model.apply(measurement.x_count, measurement.y_count)
            )
            field_a_per_m *= corrected_norm / raw_norm
        return heading, field_a_per_m

    def _tilt_stage(
        self, heading_deg: float, pitch_deg: float, roll_deg: float,
        flags: List[str], notes: List[str],
    ) -> float:
        if not self.tilt_enabled:
            return heading_deg
        cfg = self.config
        if (
            abs(pitch_deg) > cfg.max_tilt_deg
            or abs(roll_deg) > cfg.max_tilt_deg
        ):
            self._refuse(
                EnvelopeError,
                f"sensed tilt ({pitch_deg:.1f}°, {roll_deg:.1f}°) outside "
                f"the ±{cfg.max_tilt_deg:.0f}° compensable cone",
            )
            flags.append(F_TILT_ENVELOPE)
            notes.append("tilt outside compensable cone")
            return heading_deg
        if pitch_deg == 0.0 and roll_deg == 0.0:
            return heading_deg
        # Invert the tilt leak by fixed point: the measured heading is
        # level-reading + tilt_error(yaw); yaw = level-reading +
        # declination in this model's conventions.
        level = heading_deg
        for _ in range(4):
            attitude = Attitude(
                wrap_degrees(level + self.declination_deg),
                pitch_deg,
                roll_deg,
            )
            error = tilt_error_deg(self.field_model, attitude)
            level = wrap_degrees(heading_deg - error)
        return level

    def _expected_plane_field(
        self, heading_deg: float, pitch_deg: float, roll_deg: float
    ) -> float:
        """Model prediction of the (tilt-leaked) in-plane magnitude [A/m].

        When tilt compensation is armed the chain predicts the magnitude
        *including* the vertical leak the sensed attitude implies; a
        tilt sensor that under-reports the true tilt therefore shows up
        as a magnitude residual at headings where the leak projects onto
        the plane — the monitor's detection geometry.
        """
        attitude = Attitude(
            wrap_degrees(heading_deg + self.declination_deg),
            pitch_deg if self.tilt_enabled else 0.0,
            roll_deg if self.tilt_enabled else 0.0,
        )
        bx, by, _ = body_field_components(self.field_model, attitude)
        return tesla_to_a_per_m(math.hypot(bx, by))

    def _residual_stage(
        self, heading_deg: float, field_a_per_m: float,
        pitch_deg: float, roll_deg: float,
        flags: List[str], notes: List[str],
    ) -> None:
        expected = self._expected_plane_field(
            heading_deg, pitch_deg, roll_deg
        )
        if expected <= 0.0:
            return
        residual = (field_a_per_m - expected) / expected
        if abs(residual) > self.config.residual_threshold:
            self._residual_streak += 1
        else:
            self._residual_streak = 0
        if self._residual_streak >= self.config.residual_persistence:
            self.residual_latched = True
        if self.residual_latched:
            self._refuse(
                ScenarioError,
                f"corrected field magnitude {residual:+.1%} off the "
                "location model — compensation integrity lost "
                "(tilt sensor, calibration or environment implausible)",
            )
            flags.append(F_FIELD_RESIDUAL)
            notes.append(f"field residual {residual:+.1%} (latched)")

    # -- the pipeline ----------------------------------------------------------

    def process(
        self,
        measurement: HeadingMeasurement,
        sensed_temperature_c: float,
        sensed_pitch_deg: float,
        sensed_roll_deg: float,
    ) -> ChainVerdict:
        """Run one raw measurement through the full chain."""
        flags: List[str] = []
        notes: List[str] = []
        if measurement.degraded:
            flags.extend(measurement.health.flags or ("health",))
        t_used, field_est = self._temperature_stage(
            measurement, sensed_temperature_c, flags, notes
        )
        heading, field_est = self._calibration_stage(
            measurement, field_est, flags, notes
        )
        heading = self._tilt_stage(
            heading, sensed_pitch_deg, sensed_roll_deg, flags, notes
        )
        self._residual_stage(
            heading, field_est, sensed_pitch_deg, sensed_roll_deg,
            flags, notes,
        )
        if self.gate is not None:
            # Normalise the magnitude to its level equivalent before the
            # gate: the vertical-field leak modulates the in-plane
            # magnitude with heading on a tilted platform, and without
            # this a rotating user reads as a moving disturbance.  A
            # lying tilt sensor corrupts the normalisation — but that
            # also *moves* the gate magnitude, so it stays detectable
            # (and is primarily the residual monitor's catch anyway).
            gate_field = field_est
            if self.tilt_enabled and (sensed_pitch_deg or sensed_roll_deg):
                tilted = self._expected_plane_field(
                    heading, sensed_pitch_deg, sensed_roll_deg
                )
                level = self._expected_plane_field(heading, 0.0, 0.0)
                if tilted > 0.0:
                    gate_field = field_est * level / tilted
            trusted, detail = self.gate.check(measurement, gate_field)
            if not trusted:
                self._refuse(
                    ScenarioError, f"anomaly gate refused the field: {detail}"
                )
                flags.append(F_ANOMALY)
                notes.append(detail)
        return ChainVerdict(
            heading_deg=heading,
            field_a_per_m=field_est,
            flags=tuple(dict.fromkeys(flags)),
            detail="; ".join(notes),
            temperature_used_c=t_used,
        )


def aged_store(store: CalibrationStore, missions: int) -> CalibrationStore:
    """A copy of a sealed store aged by ``missions`` (CRC still valid)."""
    return replace(store, age_missions=store.age_missions + missions)
