"""The scenario engine: drive a compass through a declared environment.

:class:`ScenarioRunner` is the field-trial bench.  For every mission
step it

1. evaluates the scenario's environment (the tilted-dipole field at the
   scenario's location, the temperature profile, the platform tilt, the
   iron distortion, any active anomaly),
2. builds the *plant* — an :class:`~repro.core.compass.IntegratedCompass`
   whose device parameters are shifted to the step's true temperature via
   :func:`repro.physics.thermal.compass_config_at_temperature`,
3. measures through the full signal chain (no shortcuts: the fluxgates
   see the exact body-frame field the geometry produces),
4. runs the raw measurement through the
   :class:`~repro.scenario.compensation.CompensationChain` the scenario's
   policy arms, and
5. integrates the served heading into a dead-reckoned track when the
   scenario declares a mission.

Two seams make the runner a fault-injection target (see
:mod:`repro.faults.environment`): the :class:`TelemetrySource` (what the
temperature and tilt sensors *report*, as opposed to what is true) and
the calibration tamper hook (what the stored calibration table contains,
as opposed to what was fitted).

Bit-identity contract
---------------------
A scenario with ``field_override_ut`` set, no tilt, no iron, no anomaly
and a constant 25 °C profile drives the exact
``axis_fields_from_tesla`` → ``measure_components`` arithmetic of
:meth:`~repro.core.compass.IntegratedCompass.measure_heading` on the
*unmodified* base configuration — the code path the golden-vector
suite pins — so :func:`~repro.scenario.dsl.bench_clean_scenario` is
bit-identical to ``tests/golden/compass_vectors.json`` by construction,
recorded or not.  Raw mission measurements are grouped per rounded-°C
plant and batched through :meth:`~repro.batch.BatchCompass.measure_scene`
(itself bit-identical per row to the scalar loop); recording runs stay
scalar so the ``.rplog`` byte stream is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..batch import BatchCompass, BatchScene
from ..core.calibration import align_to_reference, fit_ellipse_calibration
from ..core.compass import CompassConfig, IntegratedCompass
from ..core.heading import HeadingMeasurement
from ..core.tilt import Attitude, body_field_components
from ..errors import CalibrationError, ScenarioError
from ..nav.dead_reckoning import DeadReckoner, Position
from ..observe import (
    DISABLED,
    M_SCENARIO_GUARDS,
    M_SCENARIO_STEPS,
    MetricsRegistry,
    Observer,
)
from ..physics.earth_field import FieldVector, field_at_location
from ..physics.thermal import T_REFERENCE_C, compass_config_at_temperature
from ..replay.recorder import LogRecorder
from ..units import (
    TARGET_ACCURACY_DEG,
    angular_difference_deg,
    tesla_to_a_per_m,
    wrap_degrees,
)
from .compensation import (
    CalibrationStore,
    ChainConfig,
    CompensationChain,
    thermal_calibration_for,
)
from .dsl import FIT_TEMPERATURES_C, AnomalySpec, Scenario

#: Headings of the pre-mission calibration rotation (the turn table).
CALIBRATION_HEADINGS = tuple(30.0 * i for i in range(12))


class TelemetrySource:
    """What the auxiliary sensors *report* — the environment fault seam.

    The default implementation is an honest sensor suite: it reports the
    true values the scenario produces.  Environment faults replace these
    methods (a stuck thermistor, a drifting ADC reference, a tilt sensor
    frozen at level) without the runner knowing — exactly how a fielded
    instrument experiences them.
    """

    def temperature_c(self, step: int, true_c: float) -> float:
        return true_c

    def tilt_deg(
        self, step: int, true_pitch_deg: float, true_roll_deg: float
    ) -> Tuple[float, float]:
        return true_pitch_deg, true_roll_deg


@dataclass(frozen=True)
class StepResult:
    """One mission step: truth, raw reading, served heading, honesty."""

    step: int
    commanded_heading_deg: float
    raw_heading_deg: float
    served_heading_deg: float
    error_deg: float
    flags: Tuple[str, ...]
    detail: str
    true_temperature_c: float
    sensed_temperature_c: float
    true_pitch_deg: float
    true_roll_deg: float
    position: Optional[Position] = None

    @property
    def degraded(self) -> bool:
        return bool(self.flags)

    @property
    def in_spec(self) -> bool:
        return abs(self.error_deg) <= TARGET_ACCURACY_DEG

    @property
    def silent_wrong(self) -> bool:
        """The one forbidden outcome: out of spec *and* unflagged."""
        return not self.in_spec and not self.degraded

    def to_dict(self) -> Dict:
        record = {
            "step": self.step,
            "commanded_heading_deg": self.commanded_heading_deg,
            "raw_heading_deg": self.raw_heading_deg,
            "served_heading_deg": self.served_heading_deg,
            "error_deg": self.error_deg,
            "flags": list(self.flags),
            "detail": self.detail,
            "true_temperature_c": self.true_temperature_c,
            "sensed_temperature_c": self.sensed_temperature_c,
            "true_pitch_deg": self.true_pitch_deg,
            "true_roll_deg": self.true_roll_deg,
        }
        if self.position is not None:
            record["position_north_m"] = self.position.north
            record["position_east_m"] = self.position.east
        return record


@dataclass(frozen=True)
class ScenarioResult:
    """A finished scenario run, with its honesty accounting."""

    scenario: Scenario
    steps: Tuple[StepResult, ...]
    drift_m: Optional[float] = None
    distance_m: Optional[float] = None

    @property
    def max_abs_error_deg(self) -> float:
        return max(abs(s.error_deg) for s in self.steps)

    @property
    def max_clean_error_deg(self) -> float:
        """Worst error over the *unflagged* steps (0 if none are clean)."""
        clean = [abs(s.error_deg) for s in self.steps if not s.degraded]
        return max(clean) if clean else 0.0

    @property
    def degraded_steps(self) -> int:
        return sum(1 for s in self.steps if s.degraded)

    @property
    def silent_wrong_steps(self) -> int:
        return sum(1 for s in self.steps if s.silent_wrong)

    @property
    def flags(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for s in self.steps:
            for flag in s.flags:
                seen.setdefault(flag)
        return tuple(seen)

    @property
    def honest(self) -> bool:
        """No step served an out-of-spec heading without a flag."""
        return self.silent_wrong_steps == 0

    @property
    def clean(self) -> bool:
        """Every step in spec and unflagged — the clean-mission verdict."""
        return self.degraded_steps == 0 and all(s.in_spec for s in self.steps)

    def summary(self) -> Dict:
        record = {
            "scenario": self.scenario.name,
            "steps": len(self.steps),
            "max_abs_error_deg": self.max_abs_error_deg,
            "max_clean_error_deg": self.max_clean_error_deg,
            "degraded_steps": self.degraded_steps,
            "silent_wrong_steps": self.silent_wrong_steps,
            "flags": list(self.flags),
            "honest": self.honest,
            "clean": self.clean,
        }
        if self.drift_m is not None:
            record["drift_m"] = self.drift_m
            record["distance_m"] = self.distance_m
        return record

    def to_dict(self) -> Dict:
        record = self.summary()
        record["step_results"] = [s.to_dict() for s in self.steps]
        return record


class ScenarioRunner:
    """Drive one compass design through one declared scenario.

    Parameters
    ----------
    scenario:
        The declarative environment + mission to run.
    base_config:
        The compass design at the reference temperature; defaults to the
        paper's design point (the golden-vector configuration).
    strict:
        ``True`` makes every tripped guard raise
        (:class:`~repro.errors.ScenarioError` /
        :class:`~repro.errors.EnvelopeError`); ``False`` (default)
        degrades loudly instead — flags on the step result.
    record_path:
        When set, every raw measurement of the run is captured into a
        self-checking ``.rplog`` at this path (:mod:`repro.replay`); the
        log replays bit-exactly regardless of scenario temperature
        because the digital back-end is replayed from captured detector
        waveforms.
    metrics:
        Optional shared :class:`~repro.observe.MetricsRegistry`;
        the runner accounts steps and guard flags into it.
    """

    def __init__(
        self,
        scenario: Scenario,
        base_config: Optional[CompassConfig] = None,
        strict: bool = False,
        chain_config: Optional[ChainConfig] = None,
        record_path: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.scenario = scenario
        self.base_config = (
            CompassConfig() if base_config is None else base_config
        )
        self.chain_config = (
            ChainConfig(strict=strict)
            if chain_config is None
            else chain_config
        )
        self.metrics = metrics
        # Environment fault seams (replaced by repro.faults.environment).
        self.telemetry = TelemetrySource()
        self.tamper_calibration: Optional[
            Callable[[CalibrationStore], CalibrationStore]
        ] = None
        self.extra_anomaly: Optional[AnomalySpec] = None

        if scenario.field_override_ut is not None:
            self.field = FieldVector(
                north=scenario.field_override_ut * 1e-6, east=0.0, down=0.0
            )
        else:
            self.field = field_at_location(scenario.location)
        self.declination_deg = self.field.declination_deg

        self._recorder: Optional[LogRecorder] = None
        if record_path is not None:
            self._recorder = LogRecorder(record_path)
            # One scenario = one design point: the log is pinned to the
            # reference configuration; per-temperature plants share the
            # recorder through a fresh Observer (never the DISABLED
            # singleton), so the capture rides every measurement without
            # re-binding a different fingerprint.
            self._recorder.bind(self.base_config)
        self._compasses: Dict[float, IntegratedCompass] = {}

    # -- plant construction ----------------------------------------------------

    def _compass_at(self, true_temperature_c: float) -> IntegratedCompass:
        """The plant at a mission temperature (cached per 1 °C)."""
        quantised = round(true_temperature_c)
        if quantised not in self._compasses:
            if quantised == T_REFERENCE_C:
                config = self.base_config
            else:
                config = compass_config_at_temperature(
                    self.base_config, quantised
                )
            compass = IntegratedCompass(config)
            self._attach_recorder(compass)
            self._compasses[quantised] = compass
        return self._compasses[quantised]

    def _attach_recorder(self, compass: IntegratedCompass) -> None:
        if self._recorder is None:
            return
        observer = compass.observer
        if observer is DISABLED:
            observer = Observer()
            compass.observer = observer
            compass.front_end.observer = observer
            compass.back_end.observer = observer
        observer.recorder = self._recorder

    # -- environment geometry --------------------------------------------------

    def _field_at_step(self, step: int) -> FieldVector:
        active = [
            anomaly
            for anomaly in (self.scenario.anomaly, self.extra_anomaly)
            if anomaly is not None
            and anomaly.active(step, self.scenario.steps)
        ]
        if not active:
            # Identity (`is`) lets _measure recognise the undisturbed
            # environment and keep the golden-vector code path.
            return self.field
        north, east, down = (
            self.field.north, self.field.east, self.field.down,
        )
        for anomaly in active:
            north += anomaly.delta_north_ut * 1e-6
            east += anomaly.delta_east_ut * 1e-6
            down += anomaly.delta_down_ut * 1e-6
        return FieldVector(north=north, east=east, down=down)

    def _components_for(
        self,
        compass: IntegratedCompass,
        magnetic_heading_deg: float,
        field: FieldVector,
        pitch_deg: float,
        roll_deg: float,
    ) -> Tuple[float, float]:
        """The axis-field components [A/m] one step drives into the plant.

        The single source of the environment float arithmetic: the
        scalar path feeds these components to ``measure_components`` and
        the batched path stacks them into a
        :class:`~repro.batch.BatchScene`, so both paths are bit-identical
        by construction.  The clean-override geometry (level, iron-free,
        pure horizontal field) reproduces ``measure_heading``'s own
        ``axis_fields_from_tesla`` call — the golden-vector code path.
        """
        iron = self.scenario.iron
        if (
            self.scenario.field_override_ut is not None
            and field is self.field
            and pitch_deg == 0.0
            and roll_deg == 0.0
            and iron.is_identity
        ):
            return compass.sensors.axis_fields_from_tesla(
                self.scenario.field_override_ut * 1e-6, magnetic_heading_deg
            )
        yaw = wrap_degrees(magnetic_heading_deg + self.declination_deg)
        bx, by, _ = body_field_components(
            field, Attitude(yaw, pitch_deg, roll_deg)
        )
        # Platform iron, applied in the body frame: h' = S·h + o.
        dx = iron.cross_coupling * by + iron.hard_x_ut * 1e-6
        dy = (
            iron.cross_coupling * bx
            + (iron.y_gain - 1.0) * by
            + iron.hard_y_ut * 1e-6
        )
        return tesla_to_a_per_m(bx + dx), tesla_to_a_per_m(by + dy)

    def _measure(
        self,
        compass: IntegratedCompass,
        magnetic_heading_deg: float,
        field: FieldVector,
        pitch_deg: float,
        roll_deg: float,
    ) -> HeadingMeasurement:
        """One raw measurement through the declared environment (scalar)."""
        h_x, h_y = self._components_for(
            compass, magnetic_heading_deg, field, pitch_deg, roll_deg
        )
        return compass.measure_components(h_x, h_y)

    def _measure_steps_batched(
        self,
    ) -> List[Optional[HeadingMeasurement]]:
        """All raw mission measurements, grouped per plant and batched.

        Steps are grouped on the same rounded-°C key the plant cache
        uses — one scene × one plant per temperature — and pushed
        through :meth:`~repro.batch.BatchCompass.measure_scene`, which is
        bit-identical per row to the scalar loop.  Grouping is
        order-preserving within each plant, so a noisy front-end draws
        its stream in the same per-compass order the scalar run would.
        Recording runs never take this path: ``.rplog`` capture is pinned
        to the scalar measurement sequence.

        A group whose batch pass raises falls back to per-step scalar
        measurement (``None`` rows signal the caller to measure
        scalar so typed errors surface on the exact offending step).
        """
        scenario = self.scenario
        grouped: Dict[int, List[Tuple[int, float, float]]] = {}
        for step in range(scenario.steps):
            truth = scenario.heading_at(step)
            true_c = scenario.temperature.at(step)
            pitch, roll = scenario.tilt.at(step, scenario.steps)
            field = self._field_at_step(step)
            compass = self._compass_at(true_c)
            h_x, h_y = self._components_for(
                compass, truth, field, pitch, roll
            )
            grouped.setdefault(round(true_c), []).append((step, h_x, h_y))
        measurements: List[Optional[HeadingMeasurement]] = (
            [None] * scenario.steps
        )
        for quantised, items in grouped.items():
            compass = self._compasses[quantised]
            scene = BatchScene.from_components(
                [h_x for _, h_x, _ in items],
                [h_y for _, _, h_y in items],
            )
            try:
                rows = BatchCompass(compass).measure_scene(scene)
            except Exception:
                continue  # leave the rows None: scalar fallback per step
            for (step, _, _), measurement in zip(items, rows):
                measurements[step] = measurement
        return measurements

    # -- chain construction ----------------------------------------------------

    def _build_store(self) -> CalibrationStore:
        """The pre-mission turn-table calibration, fitted and sealed.

        The rotation happens in the step-0 environment — level, at the
        start temperature, before any anomaly window opens — exactly the
        controlled condition a crew calibrates in.
        """
        compass = self._compass_at(self.scenario.temperature.at(0))
        samples = []
        for heading in CALIBRATION_HEADINGS:
            measurement = self._measure(
                compass, heading, self.field, 0.0, 0.0
            )
            samples.append(
                (float(measurement.x_count), float(measurement.y_count))
            )
        try:
            model = fit_ellipse_calibration(samples)
        except CalibrationError as exc:
            raise ScenarioError(
                f"scenario {self.scenario.name!r}: pre-mission calibration "
                f"rotation failed ({exc})"
            ) from exc
        reference = self._measure(
            compass, CALIBRATION_HEADINGS[0], self.field, 0.0, 0.0
        )
        model = align_to_reference(
            model,
            float(reference.x_count),
            float(reference.y_count),
            CALIBRATION_HEADINGS[0],
        )
        # The rotation is its own report card: the commanded headings
        # are known, so the worst reconstruction error over the fit's
        # own samples measures how far the affine model is from the
        # true count-vs-field map — the chain's fit-quality guard
        # flags any mission served through a table over budget.
        fit_residual = 0.0
        for heading, (x_count, y_count) in zip(
            CALIBRATION_HEADINGS, samples
        ):
            corrected = model.corrected_heading_deg(x_count, y_count)
            delta = abs(angular_difference_deg(corrected, heading))
            fit_residual = max(fit_residual, delta)
        store = CalibrationStore.sealed(
            model, fit_residual_deg=fit_residual
        )
        if self.tamper_calibration is not None:
            store = self.tamper_calibration(store)
        return store

    def _build_chain(self) -> Optional[CompensationChain]:
        policy = self.scenario.compensation
        if not policy.any_armed:
            return None
        thermal = (
            thermal_calibration_for(self.base_config, FIT_TEMPERATURES_C)
            if policy.temperature
            else None
        )
        store = self._build_store() if policy.calibration else None
        return CompensationChain(
            field_model=self.field,
            declination_deg=self.declination_deg,
            thermal=thermal,
            store=store,
            tilt_enabled=policy.tilt,
            anomaly_enabled=policy.anomaly_gate,
            config=self.chain_config,
        )

    # -- the run ---------------------------------------------------------------

    def run(self) -> ScenarioResult:
        scenario = self.scenario
        chain = self._build_chain()
        reckoner = None
        truth_reckoner = None
        if scenario.mission is not None:
            reckoner = DeadReckoner(self.declination_deg)
            truth_reckoner = DeadReckoner(self.declination_deg)
        # Raw measurements batch per plant unless this run records: the
        # .rplog byte stream is pinned to the scalar per-step sequence.
        raw: List[Optional[HeadingMeasurement]] = (
            [None] * scenario.steps
            if self._recorder is not None
            else self._measure_steps_batched()
        )
        results: List[StepResult] = []
        try:
            for step in range(scenario.steps):
                results.append(
                    self._run_step(
                        step, chain, reckoner, truth_reckoner, raw[step]
                    )
                )
        finally:
            if self._recorder is not None:
                self._recorder.close()
        drift_m = distance_m = None
        if reckoner is not None:
            drift_m = reckoner.closure_error(truth_reckoner.position)
            distance_m = reckoner.total_distance()
        return ScenarioResult(
            scenario=scenario,
            steps=tuple(results),
            drift_m=drift_m,
            distance_m=distance_m,
        )

    def _run_step(
        self,
        step: int,
        chain: Optional[CompensationChain],
        reckoner: Optional[DeadReckoner],
        truth_reckoner: Optional[DeadReckoner],
        measurement: Optional[HeadingMeasurement] = None,
    ) -> StepResult:
        scenario = self.scenario
        truth = scenario.heading_at(step)
        true_c = scenario.temperature.at(step)
        pitch, roll = scenario.tilt.at(step, scenario.steps)
        field = self._field_at_step(step)

        if measurement is None:
            compass = self._compass_at(true_c)
            measurement = self._measure(compass, truth, field, pitch, roll)

        sensed_c = self.telemetry.temperature_c(step, true_c)
        sensed_pitch, sensed_roll = self.telemetry.tilt_deg(
            step, pitch, roll
        )
        if chain is not None:
            verdict = chain.process(
                measurement, sensed_c, sensed_pitch, sensed_roll
            )
            served, flags, detail = (
                verdict.heading_deg, verdict.flags, verdict.detail,
            )
        else:
            served = measurement.heading_deg
            flags = (
                tuple(measurement.health.flags or ("health",))
                if measurement.degraded
                else ()
            )
            detail = ""
        error = angular_difference_deg(served, truth)

        position = None
        if reckoner is not None:
            position = reckoner.advance(
                served, scenario.mission.step_distance_m
            )
            truth_reckoner.advance(truth, scenario.mission.step_distance_m)

        if self.metrics is not None:
            status = "degraded" if flags else "ok"
            self.metrics.counter(
                M_SCENARIO_STEPS,
                "scenario mission steps served, by honesty status",
                ("scenario", "status"),
            ).inc(scenario=scenario.name, status=status)
            guards = self.metrics.counter(
                M_SCENARIO_GUARDS,
                "compensation-integrity guard flags raised",
                ("scenario", "flag"),
            )
            for flag in flags:
                guards.inc(scenario=scenario.name, flag=flag)

        return StepResult(
            step=step,
            commanded_heading_deg=truth,
            raw_heading_deg=measurement.heading_deg,
            served_heading_deg=served,
            error_deg=error,
            flags=flags,
            detail=detail,
            true_temperature_c=true_c,
            sensed_temperature_c=sensed_c,
            true_pitch_deg=pitch,
            true_roll_deg=roll,
            position=position,
        )


def run_scenario(
    scenario: Union[Scenario, str],
    base_config: Optional[CompassConfig] = None,
    strict: bool = False,
    record_path: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ScenarioResult:
    """Convenience wrapper: build a runner and run one scenario."""
    from .dsl import get_scenario

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    return ScenarioRunner(
        scenario,
        base_config=base_config,
        strict=strict,
        record_path=record_path,
        metrics=metrics,
    ).run()
