"""repro.scenario — environment & mission scenario engine.

The paper validates its compass on a bench: a uniform horizontal field,
room temperature, a level table.  A compass is *used* on a wrist in the
rain at −10 °C on a tilted deck next to a steel winch.  This package
closes that gap: declarative :class:`Scenario` records describe the
environment and the mission (:mod:`~repro.scenario.dsl`), the
:class:`ScenarioRunner` drives the full signal chain through it
(:mod:`~repro.scenario.runner`), the
:class:`~repro.scenario.compensation.CompensationChain` layers the
repo's correction blocks behind integrity guards that degrade *loudly*
(:mod:`~repro.scenario.compensation`), and
:class:`~repro.scenario.campaign.ScenarioCampaign` re-runs the golden
corpus under every registered environment fault to prove the guards
leave no silent-wrong outcome (:mod:`~repro.scenario.campaign`).

Quickstart::

    from repro.scenario import run_scenario

    result = run_scenario("alpine-traverse")
    print(result.summary())
"""

from .campaign import ScenarioCampaign, ScenarioCampaignResult
from .compensation import (
    F_ANOMALY,
    F_CAL_CRC,
    F_CAL_FIT,
    F_CAL_STALE,
    F_FIELD_BAND,
    F_FIELD_RESIDUAL,
    F_TEMP_ENVELOPE,
    F_TEMP_IMPLAUSIBLE,
    F_TILT_ENVELOPE,
    AnomalyGate,
    CalibrationStore,
    ChainConfig,
    ChainVerdict,
    CompensationChain,
    ThermalCalibration,
    aged_store,
    thermal_calibration_for,
)
from .dsl import (
    CLEAN_IRON,
    CLEAN_SPEC_SCENARIOS,
    ENV_SCREEN,
    FIT_TEMPERATURES_C,
    RAW_POLICY,
    SCENARIOS,
    AnomalySpec,
    CompensationPolicy,
    IronDistortion,
    MissionSpec,
    Scenario,
    TemperatureProfile,
    TiltProfile,
    bench_clean_scenario,
    get_scenario,
    scenario_with,
)
from .runner import (
    CALIBRATION_HEADINGS,
    ScenarioResult,
    ScenarioRunner,
    StepResult,
    TelemetrySource,
    run_scenario,
)

__all__ = [
    "AnomalyGate",
    "AnomalySpec",
    "CALIBRATION_HEADINGS",
    "CLEAN_IRON",
    "CLEAN_SPEC_SCENARIOS",
    "CalibrationStore",
    "ChainConfig",
    "ChainVerdict",
    "CompensationChain",
    "CompensationPolicy",
    "ENV_SCREEN",
    "FIT_TEMPERATURES_C",
    "F_ANOMALY",
    "F_CAL_CRC",
    "F_CAL_FIT",
    "F_CAL_STALE",
    "F_FIELD_BAND",
    "F_FIELD_RESIDUAL",
    "F_TEMP_ENVELOPE",
    "F_TEMP_IMPLAUSIBLE",
    "F_TILT_ENVELOPE",
    "IronDistortion",
    "MissionSpec",
    "RAW_POLICY",
    "SCENARIOS",
    "Scenario",
    "ScenarioCampaign",
    "ScenarioCampaignResult",
    "ScenarioResult",
    "ScenarioRunner",
    "StepResult",
    "TelemetrySource",
    "TemperatureProfile",
    "ThermalCalibration",
    "TiltProfile",
    "aged_store",
    "bench_clean_scenario",
    "get_scenario",
    "run_scenario",
    "scenario_with",
    "thermal_calibration_for",
]
