"""The declarative scenario DSL — environments and missions as data.

A :class:`Scenario` is a frozen, JSON-round-trippable description of
*everything around the compass* for one mission: where on Earth it is
(the tilted-dipole :mod:`repro.physics.earth_field` model), how the
ambient temperature evolves, how the platform is tilted, what hard-/
soft-iron distortion the platform adds, which local magnetic anomalies
appear mid-mission, and whether the mission dead-reckons a track
through :mod:`repro.nav`.

The DSL deliberately separates the *environment* (what the world does)
from the *compensation policy* (which correction layers the instrument
arms).  A clean bench scenario with every compensator disarmed must be
bit-identical to the plain compass — that is the conformance anchor the
golden-vector suite pins — while a field scenario arms the full chain
and is judged on the compensated heading.

Scenario corpus
---------------
:data:`SCENARIOS` holds the named golden corpus.  Each entry is chosen
to exercise one compensation layer hard while staying inside the
paper's 1° spec when the instrument is healthy; the fault campaign then
re-runs every corpus scenario with each registered environment fault
injected (see :mod:`repro.scenario.campaign`).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..physics.earth_field import LOCATIONS
from ..units import wrap_degrees

#: Temperatures the polynomial compensator is fitted over (°C); also the
#: envelope outside which :class:`~repro.errors.EnvelopeError` applies.
FIT_TEMPERATURES_C = (-20.0, 0.0, 25.0, 40.0, 55.0, 70.0)


@dataclass(frozen=True)
class TemperatureProfile:
    """Ambient temperature over the mission [°C].

    ``at(step)`` = ``base_c + ramp_c_per_step·step +
    amplitude_c·sin(2π·step/period_steps)`` — a constant bench, a linear
    chamber ramp, a diurnal swing, or any sum of the three.
    """

    base_c: float = 25.0
    ramp_c_per_step: float = 0.0
    amplitude_c: float = 0.0
    period_steps: int = 0

    def __post_init__(self) -> None:
        if self.period_steps < 0:
            raise ConfigurationError("period_steps must be >= 0")
        if self.amplitude_c != 0.0 and self.period_steps == 0:
            raise ConfigurationError(
                "a temperature swing needs a positive period_steps"
            )

    def at(self, step: int) -> float:
        value = self.base_c + self.ramp_c_per_step * step
        if self.period_steps:
            value += self.amplitude_c * math.sin(
                2.0 * math.pi * step / self.period_steps
            )
        return value


@dataclass(frozen=True)
class TiltProfile:
    """Platform attitude over the mission [degrees].

    The tilt switches on at ``onset_fraction`` of the mission (0.0 =
    tilted from the first step) and stays constant — a vehicle driving
    onto a grade.  Scenarios keep the tilt piecewise-constant because
    the chain's field-magnitude residual monitor verifies the tilt
    sensor *against the headings actually visited*; see
    ``docs/scenarios.md`` for the detectability geometry.
    """

    pitch_deg: float = 0.0
    roll_deg: float = 0.0
    onset_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not -30.0 <= self.pitch_deg <= 30.0:
            raise ConfigurationError("scenario pitch must be within ±30°")
        if not -30.0 <= self.roll_deg <= 30.0:
            raise ConfigurationError("scenario roll must be within ±30°")
        if not 0.0 <= self.onset_fraction <= 1.0:
            raise ConfigurationError("onset_fraction must be in [0, 1]")

    def at(self, step: int, total_steps: int) -> Tuple[float, float]:
        if step < self.onset_fraction * total_steps:
            return 0.0, 0.0
        return self.pitch_deg, self.roll_deg

    @property
    def magnitude_deg(self) -> float:
        return math.hypot(self.pitch_deg, self.roll_deg)


@dataclass(frozen=True)
class IronDistortion:
    """Platform-fixed magnetic distortion, applied in the body frame.

    ``h' = S·h + o`` with ``S = [[1, cross], [cross, y_gain]]`` and
    ``o`` the hard-iron offset [µT] — the standard ellipse the
    turn-table calibration (:mod:`repro.core.calibration`) un-distorts.
    """

    hard_x_ut: float = 0.0
    hard_y_ut: float = 0.0
    cross_coupling: float = 0.0
    y_gain: float = 1.0

    def __post_init__(self) -> None:
        if self.y_gain <= 0.0:
            raise ConfigurationError("soft-iron y_gain must be positive")
        if abs(self.cross_coupling) >= 0.5:
            raise ConfigurationError("cross_coupling must satisfy |c| < 0.5")

    @property
    def is_identity(self) -> bool:
        return (
            self.hard_x_ut == 0.0
            and self.hard_y_ut == 0.0
            and self.cross_coupling == 0.0
            and self.y_gain == 1.0
        )


#: The do-nothing distortion.
CLEAN_IRON = IronDistortion()


@dataclass(frozen=True)
class AnomalySpec:
    """A local magnetic anomaly: a world-frame field delta [µT].

    Active from ``start_fraction`` to ``stop_fraction`` of the mission —
    the classic mid-mission ambush: a parked truck, a rebar bridge, a
    buried pipe.
    """

    delta_north_ut: float = 0.0
    delta_east_ut: float = 0.0
    delta_down_ut: float = 0.0
    start_fraction: float = 0.5
    stop_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction <= self.stop_fraction <= 1.0:
            raise ConfigurationError(
                "anomaly window must satisfy 0 <= start <= stop <= 1"
            )

    def active(self, step: int, total_steps: int) -> bool:
        return (
            self.start_fraction * total_steps
            <= step
            < self.stop_fraction * total_steps
            or (self.stop_fraction == 1.0
                and step >= self.start_fraction * total_steps)
        )

    @property
    def magnitude_ut(self) -> float:
        return math.sqrt(
            self.delta_north_ut**2
            + self.delta_east_ut**2
            + self.delta_down_ut**2
        )


@dataclass(frozen=True)
class MissionSpec:
    """Dead-reckoning parameters: one leg walked per scenario step."""

    step_distance_m: float = 100.0

    def __post_init__(self) -> None:
        if self.step_distance_m <= 0.0:
            raise ConfigurationError("step_distance_m must be positive")


@dataclass(frozen=True)
class CompensationPolicy:
    """Which correction layers the instrument arms for a scenario."""

    temperature: bool = True
    calibration: bool = True
    tilt: bool = True
    anomaly_gate: bool = True

    @property
    def any_armed(self) -> bool:
        return (
            self.temperature
            or self.calibration
            or self.tilt
            or self.anomaly_gate
        )


#: Every compensator off — the raw-compass conformance anchor.
RAW_POLICY = CompensationPolicy(
    temperature=False, calibration=False, tilt=False, anomaly_gate=False
)


@dataclass(frozen=True)
class Scenario:
    """One declarative environment + mission description.

    Attributes
    ----------
    name, description:
        Corpus identity and intent.
    steps:
        Mission steps; the heading at step ``k`` is
        ``heading_start_deg + k·turn_deg_per_step`` (magnetic).
    location:
        Key into :data:`repro.physics.earth_field.LOCATIONS`; the
        tilted-dipole model supplies the full field vector there
        (magnitude, inclination, declination).
    field_override_ut:
        When set, replaces the location field with a pure horizontal
        field of this magnitude [µT] and zero inclination/declination —
        the bench configuration of the golden vectors.
    """

    name: str
    description: str = ""
    steps: int = 12
    heading_start_deg: float = 0.0
    turn_deg_per_step: float = 30.0
    location: str = "enschede"
    field_override_ut: Optional[float] = None
    temperature: TemperatureProfile = field(default_factory=TemperatureProfile)
    tilt: TiltProfile = field(default_factory=TiltProfile)
    iron: IronDistortion = CLEAN_IRON
    anomaly: Optional[AnomalySpec] = None
    mission: Optional[MissionSpec] = None
    compensation: CompensationPolicy = field(
        default_factory=CompensationPolicy
    )

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ConfigurationError("a scenario needs at least one step")
        if self.location not in LOCATIONS:
            known = ", ".join(sorted(LOCATIONS))
            raise ConfigurationError(
                f"unknown location {self.location!r}; known: {known}"
            )
        if self.field_override_ut is not None and self.field_override_ut <= 0:
            raise ConfigurationError("field_override_ut must be positive")
        for step in range(self.steps):
            t = self.temperature.at(step)
            if not -60.0 <= t <= 125.0:
                raise ConfigurationError(
                    f"temperature profile leaves the modelled -60…125 °C "
                    f"envelope at step {step} ({t:.1f} °C)"
                )

    def heading_at(self, step: int) -> float:
        """Commanded magnetic heading at a mission step [deg, 0..360)."""
        return wrap_degrees(
            self.heading_start_deg + step * self.turn_deg_per_step
        )

    # -- JSON round trip -------------------------------------------------------

    def to_dict(self) -> Dict:
        record = asdict(self)
        record["anomaly"] = (
            None if self.anomaly is None else asdict(self.anomaly)
        )
        record["mission"] = (
            None if self.mission is None else asdict(self.mission)
        )
        return record

    @classmethod
    def from_dict(cls, record: Dict) -> "Scenario":
        data = dict(record)
        data["temperature"] = TemperatureProfile(**data["temperature"])
        data["tilt"] = TiltProfile(**data["tilt"])
        data["iron"] = IronDistortion(**data["iron"])
        if data.get("anomaly") is not None:
            data["anomaly"] = AnomalySpec(**data["anomaly"])
        if data.get("mission") is not None:
            data["mission"] = MissionSpec(**data["mission"])
        data["compensation"] = CompensationPolicy(**data["compensation"])
        return cls(**data)


def bench_clean_scenario(field_ut: float = 50.0, steps: int = 16) -> Scenario:
    """The golden-vector twin: level, 25 °C, no iron, compensators off.

    With ``steps=16`` the heading schedule reproduces the golden grid
    ``11.25° + k·22.5°`` exactly, so every raw measurement must match
    ``tests/golden/compass_vectors.json`` bit-for-bit.
    """
    return Scenario(
        name=f"bench-clean-{field_ut:g}ut",
        description="clean fixed-temperature bench; conformance anchor",
        steps=steps,
        heading_start_deg=11.25,
        turn_deg_per_step=22.5,
        field_override_ut=field_ut,
        compensation=RAW_POLICY,
    )


#: The environment-screen scenario the factory's ``env`` stage runs: two
#: level verification steps at orthogonal headings (they sensitise the
#: field-magnitude residual monitor against a lying tilt sensor before
#: any tilt compensation is trusted), then a chamber ramp to 55 °C with
#: the platform tilted — six measurements that exercise every guard.
ENV_SCREEN = Scenario(
    name="env-screen",
    description="factory environment screen: temperature ramp + tilt "
    "table over orthogonal headings",
    steps=6,
    heading_start_deg=0.0,
    turn_deg_per_step=90.0,
    location="san_francisco",
    temperature=TemperatureProfile(base_c=25.0, ramp_c_per_step=6.0),
    tilt=TiltProfile(pitch_deg=6.0, roll_deg=-4.0, onset_fraction=0.5),
)


def _corpus() -> Dict[str, Scenario]:
    scenarios = [
        bench_clean_scenario(50.0),
        Scenario(
            name="tropic-crossing",
            description="equatorial mission with a 30 °C diurnal swing; "
            "polynomial temperature compensation under test",
            steps=12,
            heading_start_deg=20.0,
            turn_deg_per_step=30.0,
            location="equator_atlantic",
            temperature=TemperatureProfile(
                base_c=30.0, amplitude_c=25.0, period_steps=12
            ),
            mission=MissionSpec(step_distance_m=400.0),
        ),
        Scenario(
            name="steel-hull",
            description="hard-/soft-iron platform; ellipse-fit "
            "calibration under test",
            steps=12,
            heading_start_deg=0.0,
            turn_deg_per_step=30.0,
            location="sao_paulo",
            iron=IronDistortion(
                hard_x_ut=6.0, hard_y_ut=-4.0, cross_coupling=0.03,
                y_gain=1.06,
            ),
            mission=MissionSpec(step_distance_m=800.0),
        ),
        Scenario(
            name="alpine-traverse",
            description="cold tilted traverse at mid latitude; tilt "
            "compensation and the thermal fit's cold end under test",
            steps=12,
            heading_start_deg=0.0,
            turn_deg_per_step=30.0,
            location="san_francisco",
            temperature=TemperatureProfile(base_c=5.0, ramp_c_per_step=-1.5),
            tilt=TiltProfile(pitch_deg=5.0, roll_deg=3.0,
                             onset_fraction=0.25),
            mission=MissionSpec(step_distance_m=250.0),
        ),
        Scenario(
            name="urban-ambush",
            description="mid-mission magnetic ambush (parked steel); the "
            "anomaly gate must refuse to trust the disturbed field",
            steps=12,
            heading_start_deg=45.0,
            turn_deg_per_step=25.0,
            location="equator_atlantic",
            anomaly=AnomalySpec(
                delta_north_ut=18.0, delta_east_ut=-12.0,
                delta_down_ut=6.0, start_fraction=0.5,
            ),
            mission=MissionSpec(step_distance_m=150.0),
        ),
        ENV_SCREEN,
    ]
    return {scenario.name: scenario for scenario in scenarios}


#: The named golden scenario corpus.
SCENARIOS: Dict[str, Scenario] = _corpus()

#: Corpus scenarios expected to stay fully in-spec when clean.  The
#: ambush scenario is *designed* to degrade (the gate must flag the
#: disturbance), so it is excluded from the clean-spec contract.
CLEAN_SPEC_SCENARIOS = tuple(
    name for name, scenario in SCENARIOS.items() if scenario.anomaly is None
)


def get_scenario(name: str) -> Scenario:
    """Look up a corpus scenario by name."""
    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {known}"
        )
    return SCENARIOS[name]


def scenario_with(scenario: Scenario, **overrides) -> Scenario:
    """A copy of a scenario with fields replaced (keeps validation)."""
    return replace(scenario, **overrides)
