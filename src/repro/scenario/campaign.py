"""Per-scenario fault campaigns: every environment fault × every mission.

:class:`ScenarioCampaign` re-flies the golden scenario corpus with each
registered environment-layer fault injected at each severity, and
classifies every (scenario, fault, severity) cell with the same
four-outcome taxonomy the measurement-path campaign uses
(:mod:`repro.faults.campaign`):

``detected``
    the run raised a typed :class:`~repro.errors.ReproError`;
``degraded``
    at least one step was flagged by a compensation-integrity guard and
    *no* step served an out-of-spec heading unflagged;
``benign``
    every step unflagged and within the paper's 1° spec;
``silent-wrong``
    any step served an unflagged heading more than 1° wrong — the
    forbidden class, ratcheted at **zero** in CI by the
    ``scenario-campaign`` job.

Only scenarios whose compensation policy arms at least one correction
layer are campaigned: the raw bench scenario exists as the bit-identity
anchor of the golden-vector suite, and an instrument with every guard
disarmed makes no honesty promise to audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.compass import CompassConfig
from ..errors import ConfigurationError, ReproError
from ..faults.campaign import CampaignCell, CampaignResult, Outcome
from ..faults.model import REGISTRY, FaultRegistry, FaultSpec
from ..observe import M_CAMPAIGN_CELLS, MetricsRegistry
from ..units import TARGET_ACCURACY_DEG
from .dsl import SCENARIOS, Scenario
from .runner import ScenarioResult, ScenarioRunner


def classify_scenario(
    result: ScenarioResult,
    tolerance_deg: float = TARGET_ACCURACY_DEG,
) -> Tuple[Outcome, Optional[float], str]:
    """Collapse a finished scenario run into one campaign outcome.

    The scenario-level verdict is pessimistic in exactly one direction:
    a single silent-wrong *step* makes the whole run silent-wrong,
    because one confident lie mid-mission bends the dead-reckoned track
    no matter how honest the surrounding steps were.
    """
    silent = [
        s for s in result.steps
        if abs(s.error_deg) > tolerance_deg and not s.degraded
    ]
    if silent:
        worst = max(abs(s.error_deg) for s in silent)
        return (
            Outcome.SILENT_WRONG,
            worst,
            f"{len(silent)} step(s) served UNFLAGGED error up to "
            f"{worst:.2f} deg",
        )
    worst = result.max_abs_error_deg
    if result.degraded_steps:
        return (
            Outcome.DEGRADED,
            worst,
            f"{result.degraded_steps}/{len(result.steps)} steps flagged "
            f"({','.join(result.flags)})",
        )
    return (
        Outcome.BENIGN,
        worst,
        f"all steps unflagged, max error {worst:.3f} deg",
    )


@dataclass
class ScenarioCampaignResult(CampaignResult):
    """A scenario campaign's cells plus its clean-baseline verdicts."""

    #: scenario name → the no-fault run's summary dict.
    clean_runs: Dict[str, Dict] = field(default_factory=dict)

    #: Names of scenarios whose *clean* run broke its contract (a
    #: clean-spec scenario that degraded or missed spec, or any clean
    #: run that was silent-wrong).
    clean_failures: List[str] = field(default_factory=list)

    def summary(self) -> Dict:
        record = super().summary()
        record["scenarios"] = sorted(self.clean_runs)
        record["clean_failures"] = list(self.clean_failures)
        return record


class ScenarioCampaign:
    """Sweep every environment fault over the scenario corpus.

    Parameters
    ----------
    scenarios:
        The missions to campaign; defaults to every corpus scenario
        with at least one compensation layer armed.
    registry, faults:
        The fault population; defaults to the ``environment`` layer of
        the built-in registry (scenario-probe faults only — measurement
        faults are the other campaign's business).
    tolerance_deg:
        The unflagged-error threshold separating benign from
        silent-wrong; the paper's 1° spec by default.
    base_config:
        Compass design under campaign; the paper's design point by
        default.
    metrics:
        Optional shared registry; cells are counted under the same
        ``campaign_cells_total`` metric as the measurement campaign,
        with ``path="scenario:<name>"``.
    """

    def __init__(
        self,
        scenarios: Optional[Sequence[Scenario]] = None,
        registry: FaultRegistry = REGISTRY,
        faults: Optional[Sequence[str]] = None,
        tolerance_deg: float = TARGET_ACCURACY_DEG,
        base_config: Optional[CompassConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if scenarios is None:
            scenarios = [
                scenario
                for scenario in SCENARIOS.values()
                if scenario.compensation.any_armed
            ]
        if not scenarios:
            raise ConfigurationError("scenario campaign needs scenarios")
        self.scenarios = list(scenarios)
        self.registry = registry
        if faults is None:
            faults = [
                spec.name
                for spec in registry.specs()
                if spec.probe == "scenario"
            ]
        else:
            for name in faults:
                if registry.get(name).probe != "scenario":
                    raise ConfigurationError(
                        f"fault {name!r} is not a scenario-probe fault"
                    )
        self.fault_names = list(faults)
        self.tolerance_deg = tolerance_deg
        self.base_config = base_config
        self.metrics = metrics

    # -- cells -----------------------------------------------------------------

    def _runner(self, scenario: Scenario) -> ScenarioRunner:
        return ScenarioRunner(scenario, base_config=self.base_config)

    def _cell(
        self,
        spec_name: str,
        severity: float,
        scenario: Scenario,
        outcome: Outcome,
        error: Optional[float],
        detail: str,
        conforms: bool,
    ) -> CampaignCell:
        path = f"scenario:{scenario.name}"
        if self.metrics is not None:
            self.metrics.counter(
                M_CAMPAIGN_CELLS,
                "classified fault-campaign cells, by path and outcome",
                ("path", "outcome"),
            ).inc(path=path, outcome=outcome.value)
        return CampaignCell(
            fault=spec_name,
            severity=severity,
            heading_deg=None,
            path=path,
            outcome=outcome,
            error_deg=error,
            detail=detail,
            conforms=conforms,
        )

    def _run_clean(
        self, scenario: Scenario, result: ScenarioCampaignResult
    ) -> Outcome:
        run = self._runner(scenario).run()
        outcome, error, detail = classify_scenario(run, self.tolerance_deg)
        # The clean contract: an anomaly-free scenario must be fully
        # benign; a scenario *designed* to trip its gate (an anomaly in
        # the DSL) must degrade, never lie.
        if scenario.anomaly is None:
            conforms = outcome is Outcome.BENIGN
        else:
            conforms = outcome in (Outcome.BENIGN, Outcome.DEGRADED)
        result.clean_runs[scenario.name] = run.summary()
        if not conforms:
            result.clean_failures.append(scenario.name)
        result.cells.append(
            self._cell(
                "clean", 0.0, scenario, outcome, error, detail, conforms
            )
        )
        return outcome

    def _run_fault(
        self,
        spec: FaultSpec,
        severity: float,
        scenario: Scenario,
        result: ScenarioCampaignResult,
        clean_outcome: Outcome,
    ) -> None:
        runner = self._runner(scenario)
        try:
            with self.registry.inject(spec.name, runner, severity):
                run = runner.run()
        except ReproError as exc:
            outcome = Outcome.DETECTED
            error: Optional[float] = None
            detail = f"{type(exc).__name__}: {exc}"
        else:
            outcome, error, detail = classify_scenario(
                run, self.tolerance_deg
            )
        allowed = spec.allowed_outcomes(severity)
        conforms = outcome.value in allowed
        # A severity pinned "benign" promises the fault is *invisible*,
        # which on a scenario whose clean baseline already degrades (a
        # designed-in anomaly) means "indistinguishable from clean", not
        # "unflagged".
        if not conforms and "benign" in allowed and outcome is clean_outcome:
            conforms = True
        result.cells.append(
            self._cell(
                spec.name,
                severity,
                scenario,
                outcome,
                error,
                detail,
                conforms,
            )
        )

    # -- the sweep -------------------------------------------------------------

    def run(self) -> ScenarioCampaignResult:
        result = ScenarioCampaignResult()
        for scenario in self.scenarios:
            clean_outcome = self._run_clean(scenario, result)
            for name in self.fault_names:
                spec = self.registry.get(name)
                for severity in spec.severities:
                    self._run_fault(
                        spec, severity, scenario, result, clean_outcome
                    )
        return result
