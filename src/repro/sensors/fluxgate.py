"""Behavioural fluxgate sensor model (§2.1 of the paper).

The fluxgate "is a form of transformer, which is deliberately driven into
saturation periodically with a symmetrical excitation field".  The model
implements exactly that transformer:

* the excitation current ``i(t)`` produces a core field
  ``H_exc = (N_exc / l) · i``,
* an external field component ``H_ext`` (the earth's field projected on
  the sensor axis) adds to it,
* the core magnetisation law turns the total field into a flux density
  ``B(H_exc + H_ext)``,
* the pickup coil sees ``V_pick = -N_pick · A · dB/dt`` — the voltage
  pulses of Figure 3d whose *positions in time* carry the measurand,
* the excitation coil sees ``V_exc = i·R + N_exc·A·dB/dt + L_leak·di/dt``
  — reproducing Figure 4's visible "change in impedance of the excitation
  coil, when saturation is reached".

Pulse-position arithmetic (the analytic ground truth used by tests):

With a symmetric triangular excitation of peak field ``Ha`` and period
``T``, the core crosses zero total field when ``H_exc(t) = -H_ext``.  The
detector output is high between the positive-pulse and negative-pulse
events, giving a duty cycle

    D = 1/2 + H_ext / (2·Ha)

so the up-down counter integrates to a count proportional to ``H_ext``
(see :mod:`repro.digital.counter`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..physics.magnetics import MagnetisationModel, make_core
from ..simulation.signals import TimeGradient, Trace
from .parameters import FluxgateParameters


@dataclass
class SensorWaveforms:
    """All probe-able waveforms of one excitation run.

    Attributes
    ----------
    excitation_current:
        The driving current [A].
    core_field:
        Total field in the core, excitation + external [A/m].
    flux_density:
        Core flux density [T].
    pickup_voltage:
        Voltage across the (open-circuit) pickup coil [V].
    excitation_voltage:
        Voltage across the excitation coil [V] — resistive plus the
        core-coupled inductive component that collapses in saturation.
    """

    excitation_current: Trace
    core_field: Trace
    flux_density: Trace
    pickup_voltage: Trace
    excitation_voltage: Trace


class FluxgateSensor:
    """One fluxgate sensing element driven through its excitation coil.

    Parameters
    ----------
    params:
        Electromagnetic parameters (see :mod:`repro.sensors.parameters`).
    core_model:
        Magnetisation-law registry name: ``"piecewise"``, ``"tanh"``
        (default — the ELDO-style behavioural model) or
        ``"jiles-atherton"`` (hysteretic, for ablations).
    """

    #: LRU bound on the per-shape batch scratch: the chunked sweep
    #: alternates between the chunk shape and one remainder shape, so two
    #: entries cover steady state while arbitrary chunk sizes stay bounded.
    SCRATCH_CAPACITY = 2

    def __init__(self, params: FluxgateParameters, core_model: str = "tanh"):
        self.params = params
        self.core: MagnetisationModel = make_core(core_model, params.core)
        self.core_model_name = core_model
        self._batch_scratch: Dict[
            Tuple[int, int], Tuple[np.ndarray, np.ndarray]
        ] = {}

    # -- elementary transforms -------------------------------------------------

    def excitation_field(self, current: Trace) -> Trace:
        """Core field produced by the excitation current [A/m]."""
        return current.scaled(self.params.excitation_coil_constant)

    def simulate(self, current: Trace, h_external: float = 0.0) -> SensorWaveforms:
        """Run one excitation waveform through the sensor.

        Parameters
        ----------
        current:
            Excitation current trace [A].
        h_external:
            External field component along the sensor axis [A/m].

        Returns
        -------
        SensorWaveforms
            Every internal waveform, on the input's time grid.
        """
        p = self.params
        self.core.reset()
        h_total = self.excitation_field(current).scaled(1.0, h_external)
        b = np.asarray(self.core.flux_density(h_total.v), dtype=float)
        flux = Trace(current.t, b)
        db_dt = flux.derivative()
        di_dt = current.derivative()

        # Winding sense: the pickup is wound so that the core's rising flux
        # induces a *positive* pulse.  (Faraday gives ±N·A·dB/dt; the sign
        # is a winding choice, and this orientation makes the detector's
        # set-on-positive-pulse convention yield duty = ½ + H_ext/(2·Ha).)
        pickup = db_dt.scaled(p.pickup_turns * p.core_area)
        excitation_voltage = Trace(
            current.t,
            current.v * p.series_resistance
            + p.excitation_turns * p.core_area * db_dt.v
            + p.leakage_inductance * di_dt.v,
        )
        return SensorWaveforms(
            excitation_current=current,
            core_field=h_total,
            flux_density=flux,
            pickup_voltage=pickup,
            excitation_voltage=excitation_voltage,
        )

    def simulate_batch(
        self,
        current: Trace,
        h_external: np.ndarray,
        gradient: Optional[TimeGradient] = None,
    ) -> np.ndarray:
        """Pickup voltages for a batch of external fields, ``(N, n_samples)``.

        Row ``i`` is bit-identical to
        ``simulate(current, h_external[i]).pickup_voltage.v``; the other
        :class:`SensorWaveforms` members (excitation voltage, di/dt) are
        not computed — the measurement chain only consumes the pickup.
        Only stateless (anhysteretic) cores support batching: a hysteretic
        core integrates sample-by-sample and rows would contaminate each
        other.

        The returned matrix lives in a sensor-owned scratch buffer that
        the *next* ``simulate_batch`` call with the same shape overwrites
        — consume (or copy) it before batching again.

        Parameters
        ----------
        current:
            Shared excitation current trace [A].
        h_external:
            External field per row [A/m], shape ``(N,)``.
        gradient:
            Optional precomputed :class:`TimeGradient` for ``current.t``
            (built on the fly when omitted).
        """
        if self.core.is_hysteretic:
            raise ConfigurationError(
                f"core model {self.core_model_name!r} is hysteretic "
                "(stateful); simulate_batch supports anhysteretic cores only"
            )
        p = self.params
        h = np.asarray(h_external, dtype=float)
        if h.ndim != 1:
            raise ConfigurationError("h_external must be a 1-D array of fields")
        shape = (h.size, current.t.size)
        scratch = self._batch_scratch.pop(shape, None)
        if scratch is None:
            while len(self._batch_scratch) >= self.SCRATCH_CAPACITY:
                self._batch_scratch.pop(next(iter(self._batch_scratch)))
            scratch = (np.empty(shape), np.empty(shape))
        # (Re-)insert so dict order tracks recency: oldest first.
        self._batch_scratch[shape] = scratch
        h_total, deriv = scratch
        np.add(current.v * p.excitation_coil_constant, h[:, None], out=h_total)
        b = self.core.flux_density_into(h_total, out=h_total)
        if gradient is None:
            gradient = TimeGradient(current.t)
        db_dt = gradient.apply(b, out=deriv)
        db_dt *= p.pickup_turns * p.core_area
        return db_dt

    # -- analytic helpers (used as test oracles) -------------------------------

    def peak_pickup_voltage(self, current_amplitude: float, frequency_hz: float) -> float:
        """Analytic peak pickup voltage for a triangular drive [V].

        At the zero crossing of the total field the differential
        permeability is ``Bs/HK``; the triangular field slews at
        ``4·Ha·f``, so the pulse peaks at ``N·A·(Bs/HK)·4·Ha·f``.
        """
        p = self.params
        h_amp = p.excitation_coil_constant * current_amplitude
        slew = 4.0 * h_amp * frequency_hz
        mu_peak = p.core.saturation_flux_density / p.core.anisotropy_field
        return p.pickup_turns * p.core_area * mu_peak * slew

    def expected_duty_cycle(
        self, current_amplitude: float, h_external: float
    ) -> float:
        """Analytic detector duty cycle ``1/2 + H_ext/(2·Ha)``.

        Only valid when the drive saturates the core
        (``drive_ratio > 1``) and the external field does not push the
        zero crossing off the excitation ramp
        (``|H_ext| < Ha - HK`` for clean, full-amplitude pulses).
        """
        if not self.params.saturates_with(current_amplitude):
            raise ConfigurationError(
                f"{self.params.name}: drive amplitude {current_amplitude} A "
                "does not saturate the core; no pulses are produced"
            )
        h_amp = self.params.excitation_coil_constant * current_amplitude
        return 0.5 + h_external / (2.0 * h_amp)

    def field_from_duty_cycle(
        self, duty: float, current_amplitude: float
    ) -> float:
        """Invert :meth:`expected_duty_cycle`: duty → H_ext [A/m]."""
        h_amp = self.params.excitation_coil_constant * current_amplitude
        return (duty - 0.5) * 2.0 * h_amp

    def sensitivity(self, current_amplitude: float) -> float:
        """Duty-cycle change per unit external field [per (A/m)].

        ``dD/dH_ext = 1/(2·Ha)`` — the *electrical* sensitivity falls with
        drive amplitude, but below ``drive_ratio ≈ 2`` the pulses weaken
        and detection fails; bench SENS1 maps the resulting optimum.
        """
        h_amp = self.params.excitation_coil_constant * current_amplitude
        if h_amp <= 0.0:
            raise ConfigurationError("current amplitude must be positive")
        return 1.0 / (2.0 * h_amp)

    def measurable_field_range(self, current_amplitude: float) -> float:
        """Largest |H_ext| that keeps both pulses on the ramps [A/m].

        Beyond ``Ha - HK`` the core no longer reaches one of its
        saturation states every half period and the pulse pair collapses.
        """
        p = self.params
        h_amp = p.excitation_coil_constant * current_amplitude
        return max(0.0, h_amp - p.core.anisotropy_field)
