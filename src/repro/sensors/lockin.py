"""Synchronous (lock-in) demodulation for the second-harmonic readout.

The classic fluxgate electronics the paper argues against (§2.1) do not
just measure the 2nd-harmonic *amplitude* — they demodulate the pickup
synchronously at ``2·f_exc`` with a phase reference derived from the
excitation, which is what recovers the field's *sign*.  This module
implements that chain honestly:

* quadrature reference generation at the n-th harmonic of the
  excitation,
* multiplication and integration over whole excitation periods (an
  ideal integrate-and-dump low-pass),
* phase calibration against a known field, after which the in-phase
  output is a signed, linear field measure.

Used by the PPOS1 comparison and by
:class:`~repro.sensors.second_harmonic.SecondHarmonicReadout` as the
proper demodulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, ProtocolError
from ..simulation.signals import Trace


@dataclass(frozen=True)
class DemodulationResult:
    """Output of one synchronous demodulation.

    Attributes
    ----------
    in_phase:
        Component along the calibrated reference phase [V].
    quadrature:
        Component 90° from it [V].
    """

    in_phase: float
    quadrature: float

    @property
    def magnitude(self) -> float:
        return math.hypot(self.in_phase, self.quadrature)

    @property
    def phase_deg(self) -> float:
        return math.degrees(math.atan2(self.quadrature, self.in_phase))


class LockInDemodulator:
    """Quadrature lock-in at a harmonic of the excitation frequency.

    Parameters
    ----------
    fundamental_hz:
        The excitation frequency the references are derived from.
    harmonic:
        Which harmonic to demodulate (2 for fluxgates).
    """

    def __init__(self, fundamental_hz: float, harmonic: int = 2):
        if fundamental_hz <= 0.0:
            raise ConfigurationError("fundamental frequency must be positive")
        if harmonic < 1:
            raise ConfigurationError("harmonic must be >= 1")
        self.fundamental_hz = fundamental_hz
        self.harmonic = harmonic
        self._phase_offset_rad = 0.0

    # -- core demodulation ---------------------------------------------------

    def _integrate(self, signal: Trace) -> DemodulationResult:
        period = 1.0 / self.fundamental_hz
        n_periods = int(np.floor(signal.duration / period))
        if n_periods < 1:
            raise ConfigurationError(
                "signal shorter than one excitation period"
            )
        sub = signal.slice_time(
            signal.t[0], signal.t[0] + n_periods * period
        )
        omega = 2.0 * np.pi * self.fundamental_hz * self.harmonic
        phase = omega * sub.t + self._phase_offset_rad
        integrate = getattr(np, "trapezoid", None) or np.trapz
        span = sub.duration
        in_phase = 2.0 * integrate(sub.v * np.cos(phase), sub.t) / span
        quadrature = 2.0 * integrate(sub.v * np.sin(phase), sub.t) / span
        return DemodulationResult(float(in_phase), float(quadrature))

    def demodulate(self, signal: Trace) -> DemodulationResult:
        """Demodulate one pickup trace with the current phase reference."""
        return self._integrate(signal)

    # -- phase calibration ------------------------------------------------------

    def calibrate_phase(self, reference_signal: Trace) -> float:
        """Rotate the reference so a known-positive field is all in-phase.

        Returns the applied phase rotation [rad].  After calibration,
        ``demodulate(...).in_phase`` is a signed field measure and the
        quadrature channel carries only distortion.
        """
        raw = self._integrate(reference_signal)
        if raw.magnitude < 1e-15:
            raise ProtocolError(
                "phase calibration signal contains no component at the "
                f"{self.harmonic}ᵗʰ harmonic"
            )
        # With references cos(ωt+φ0)/sin(ωt+φ0), a signal at phase ψ
        # demodulates to (cos(ψ−φ0), −sin(ψ−φ0)); rotating the offset to
        # ψ therefore needs the *negated* quadrature in the atan2.
        rotation = math.atan2(-raw.quadrature, raw.in_phase)
        self._phase_offset_rad += rotation
        return rotation

    @property
    def phase_offset_deg(self) -> float:
        return math.degrees(self._phase_offset_rad)


class SynchronousFieldReadout:
    """Complete lock-in field readout for a fluxgate sensor.

    The honest version of the second-harmonic baseline: sensor →
    lock-in at 2·f_exc → signed in-phase output → field estimate through
    a one-point gain calibration.
    """

    def __init__(self, sensor, fundamental_hz: float):
        self.sensor = sensor
        self.lockin = LockInDemodulator(fundamental_hz, harmonic=2)
        self._gain: float = 0.0  # A/m per volt

    def calibrate(self, current: Trace, h_reference: float) -> None:
        """Phase + gain calibration with one known positive field."""
        if h_reference <= 0.0:
            raise ConfigurationError(
                "calibration field must be positive (sets the sign)"
            )
        waves = self.sensor.simulate(current, h_reference)
        self.lockin.calibrate_phase(waves.pickup_voltage)
        result = self.lockin.demodulate(waves.pickup_voltage)
        if abs(result.in_phase) < 1e-15:
            raise ProtocolError("no in-phase response after calibration")
        self._gain = h_reference / result.in_phase

    def measure(self, current: Trace, h_external: float) -> float:
        """Measure a field; the sign comes from the demodulator phase."""
        if self._gain == 0.0:
            raise ProtocolError("readout must be calibrated first")
        waves = self.sensor.simulate(current, h_external)
        result = self.lockin.demodulate(waves.pickup_voltage)
        return result.in_phase * self._gain
