"""Second-harmonic fluxgate readout — the baseline the paper argues against.

§2.1: "Most common is the so called second harmonic measurement [Rip92,
Got95, Kaw95].  We, however, use the so called pulse position method."
§3.2: with pulse position "a complicated AD-converter is not necessary,
which would have been the case for methods based on second harmonic
measurements."

To make that comparison quantitative (bench PPOS1) this module implements
the classic readout: the pickup voltage of a symmetric fluxgate contains
only odd harmonics of the excitation when no external field is applied; an
external field breaks the symmetry and produces even harmonics whose
amplitude — dominated by the 2nd — is proportional to the field.  The
chain is: synchronous detection of the 2nd harmonic, anti-alias filtering,
then an ADC.

The ADC is modelled as an ideal quantiser with a given resolution so the
hardware-cost comparison (ADC bits and an analogue multiplier vs a single
comparator pair) can be stated alongside the accuracy comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..simulation.signals import Trace
from .fluxgate import FluxgateSensor


@dataclass(frozen=True)
class ADCModel:
    """An ideal mid-tread quantiser with saturating full scale.

    Attributes
    ----------
    bits:
        Resolution in bits.
    full_scale:
        Input mapped to the most positive code [V].
    """

    bits: int
    full_scale: float

    def __post_init__(self) -> None:
        if self.bits < 1 or self.bits > 24:
            raise ConfigurationError("ADC resolution must be 1..24 bits")
        if self.full_scale <= 0.0:
            raise ConfigurationError("ADC full scale must be positive")

    @property
    def lsb(self) -> float:
        """Quantisation step [V]."""
        return 2.0 * self.full_scale / (2**self.bits)

    def convert(self, voltage: float) -> int:
        """Quantise one sample to a signed integer code."""
        clipped = max(-self.full_scale, min(self.full_scale, voltage))
        code = int(round(clipped / self.lsb))
        max_code = 2 ** (self.bits - 1) - 1
        return max(-(max_code + 1), min(max_code, code))

    def reconstruct(self, code: int) -> float:
        """Code back to volts (for error analysis)."""
        return code * self.lsb


@dataclass(frozen=True)
class SecondHarmonicResult:
    """Output of one second-harmonic measurement."""

    amplitude_volts: float
    adc_code: int
    field_estimate_a_per_m: float


class SecondHarmonicReadout:
    """Second-harmonic synchronous-detection readout for one sensor.

    Parameters
    ----------
    sensor:
        The fluxgate being read out.
    adc:
        ADC placed after the synchronous detector.
    excitation_frequency_hz:
        Frequency of the (sinusoidal or triangular) excitation.
    """

    def __init__(
        self,
        sensor: FluxgateSensor,
        adc: ADCModel,
        excitation_frequency_hz: float,
    ):
        if excitation_frequency_hz <= 0.0:
            raise ConfigurationError("excitation frequency must be positive")
        self.sensor = sensor
        self.adc = adc
        self.excitation_frequency_hz = excitation_frequency_hz
        self._gain_a_per_m_per_volt: float = 0.0

    def second_harmonic_amplitude(
        self, current: Trace, h_external: float
    ) -> float:
        """Amplitude of the 2nd harmonic of the pickup voltage [V]."""
        waves = self.sensor.simulate(current, h_external)
        return waves.pickup_voltage.harmonic_amplitude(
            self.excitation_frequency_hz, harmonic=2
        )

    def calibrate(self, current: Trace, h_reference: float) -> float:
        """Two-point calibration: measure at 0 and at ``h_reference``.

        Returns and stores the field-per-volt gain used by
        :meth:`measure`.  Raises if the reference produces no 2nd-harmonic
        response (e.g. the drive does not saturate the core).
        """
        if h_reference == 0.0:
            raise ConfigurationError("reference field must be non-zero")
        v_zero = self.second_harmonic_amplitude(current, 0.0)
        v_ref = self.second_harmonic_amplitude(current, h_reference)
        delta = v_ref - v_zero
        if abs(delta) < 1e-15:
            raise ConfigurationError(
                "no second-harmonic response; is the core being saturated?"
            )
        self._gain_a_per_m_per_volt = h_reference / delta
        return self._gain_a_per_m_per_volt

    def measure(self, current: Trace, h_external: float) -> SecondHarmonicResult:
        """Full chain: sensor → 2nd-harmonic detect → ADC → field estimate.

        The sign of the field cannot be recovered from the harmonic
        amplitude alone; real second-harmonic fluxgates recover it from the
        demodulator phase.  We model that by carrying the sign of the
        synchronous (phase-sensitive) component.
        """
        if self._gain_a_per_m_per_volt == 0.0:
            raise ConfigurationError("readout must be calibrated first")
        amplitude = self.second_harmonic_amplitude(current, h_external)
        signed = amplitude if h_external >= 0.0 else -amplitude
        code = self.adc.convert(signed)
        field = self.adc.reconstruct(code) * self._gain_a_per_m_per_volt
        return SecondHarmonicResult(
            amplitude_volts=amplitude,
            adc_code=code,
            field_estimate_a_per_m=field,
        )

    # -- hardware cost (for the PPOS1 comparison bench) -----------------------

    @staticmethod
    def hardware_cost() -> dict:
        """Approximate analogue hardware needed by this readout.

        Compared in bench PPOS1 against the pulse-position detector's
        comparator pair + SR latch (§3.2).  Transistor counts are
        order-of-magnitude 1997-era CMOS figures.
        """
        return {
            "analog_multiplier_transistors": 60,
            "antialias_filter_transistors": 40,
            "adc_transistors_per_bit": 250,
            "needs_adc": True,
            "needs_precision_references": True,
        }
