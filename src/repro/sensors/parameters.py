"""Fluxgate sensor parameter sets.

§2.1.1 of the paper distinguishes three devices, all represented here:

* the **measured micro-machined sensor** [Kaw95]: saturates only at
  HK = 10 Oe — "15 times the magnitude of the earth's magnetic field" —
  and has a 77 Ω internal resistance "too high for low power applications";
  with the paper's 12 mA pp excitation it never saturates, so it produces
  no pulses and cannot serve the compass (bench SENS1 demonstrates this);
* the **ideal target sensor** the ELDO model was adapted to: "An ideal
  sensor should reach saturation with an applied field with the same
  magnitude as the earth's magnetic field", i.e. HK ≈ H_earth, "still an
  obtainable goal for a new fluxgate sensor";
* the **discrete miniaturised fluxgate** actually used "for the time
  being": a wire-wound device with enough excitation turns that the same
  12 mA pp drive reaches twice its saturation field — the paper's stated
  best-sensitivity operating point (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..physics.magnetics import CoreParameters
from ..units import HK_IDEAL, HK_MEASURED, SENSOR_RESISTANCE_MEASURED


@dataclass(frozen=True)
class FluxgateParameters:
    """Electromagnetic parameters of one fluxgate sensor.

    Attributes
    ----------
    name:
        Human-readable identifier used in reports.
    core:
        Magnetic core parameters (Bs, HK, Hc).
    excitation_turns:
        Number of turns of the excitation coil.
    pickup_turns:
        Number of turns of the pickup coil.
    core_area:
        Ferromagnetic cross-section threaded by the coils [m²].
    path_length:
        Effective magnetic path length [m].
    series_resistance:
        DC resistance of the excitation coil [Ω] — what the V-I converter
        has to drive (77 Ω measured, 800 Ω compliance limit, §3.1).
    leakage_inductance:
        Air (non-core) inductance of the excitation coil [H]; contributes
        a residual inductive voltage even in saturation.
    """

    name: str
    core: CoreParameters
    excitation_turns: int
    pickup_turns: int
    core_area: float
    path_length: float
    series_resistance: float
    leakage_inductance: float = 0.0

    def __post_init__(self) -> None:
        if self.excitation_turns < 1 or self.pickup_turns < 1:
            raise ConfigurationError("coil turn counts must be >= 1")
        if self.core_area <= 0.0 or self.path_length <= 0.0:
            raise ConfigurationError("core geometry must be positive")
        if self.series_resistance < 0.0 or self.leakage_inductance < 0.0:
            raise ConfigurationError("parasitics must be non-negative")

    # -- derived quantities ---------------------------------------------------

    @property
    def excitation_coil_constant(self) -> float:
        """Field strength per ampere of excitation current [A/m per A]."""
        return self.excitation_turns / self.path_length

    @property
    def saturation_current(self) -> float:
        """Excitation current that brings the core field to HK [A]."""
        return self.core.anisotropy_field / self.excitation_coil_constant

    @property
    def unsaturated_inductance(self) -> float:
        """Small-signal excitation-coil inductance below saturation [H].

        ``L = N²·µ·A/l`` with ``µ = Bs/HK`` (the unsaturated slope of the
        piecewise-linear core).
        """
        mu = self.core.saturation_flux_density / self.core.anisotropy_field
        return (
            self.excitation_turns**2 * mu * self.core_area / self.path_length
            + self.leakage_inductance
        )

    def drive_ratio(self, current_amplitude: float) -> float:
        """Peak excitation field over HK for a given current amplitude [—].

        The paper's best-sensitivity operating point is a ratio of 2
        ("Best sensitivity is obtained when the applied magnetic field is
        twice the saturation field", §3.1); below 1 the sensor never
        saturates and produces no pulses.
        """
        if current_amplitude < 0.0:
            raise ConfigurationError("current amplitude must be non-negative")
        peak_field = self.excitation_coil_constant * current_amplitude
        return peak_field / self.core.anisotropy_field

    def saturates_with(self, current_amplitude: float) -> bool:
        """Whether a drive of this amplitude drives the core into saturation."""
        return self.drive_ratio(current_amplitude) > 1.0

    def with_anisotropy_field(self, hk: float) -> "FluxgateParameters":
        """A copy with a different HK — the paper's "adapted" ELDO model."""
        return replace(self, core=replace(self.core, anisotropy_field=hk))


#: The measured [Kaw95] micro-machined device (§2.1.1): HK = 10 Oe, 77 Ω.
#: Planar electroplated-permalloy core sandwiched between two metal layers
#: (Fig 5): thin-film cross-section, few-turn planar coils.
MICROMACHINED_KAW95 = FluxgateParameters(
    name="micromachined-kaw95-measured",
    core=CoreParameters(
        saturation_flux_density=0.8,
        anisotropy_field=HK_MEASURED,
        coercive_field=8.0,
    ),
    excitation_turns=36,
    pickup_turns=40,
    core_area=1.0e-9,
    path_length=2.0e-3,
    series_resistance=SENSOR_RESISTANCE_MEASURED,
)

#: The "ideal" sensor the system was designed around: same micro-machined
#: geometry, HK adapted down to the earth's field scale ("HK has been
#: adapted to obtain a saturation level suitable for our application") so
#: the 12 mA pp excitation drives it to ~2.5× its saturation field —
#: the 2× best-sensitivity point of §3.1 plus margin for the pulse tails
#: at the 65 µT worldwide field maximum.
IDEAL_TARGET = FluxgateParameters(
    name="micromachined-ideal-target",
    core=CoreParameters(
        saturation_flux_density=0.8,
        anisotropy_field=HK_IDEAL,
        coercive_field=0.5,
    ),
    excitation_turns=36,
    pickup_turns=40,
    core_area=1.0e-9,
    path_length=2.0e-3,
    series_resistance=SENSOR_RESISTANCE_MEASURED,
)

#: The discrete miniaturised fluxgate used on the bench "for the time
#: being": wire-wound, enough excitation turns that ±6 mA reaches ~2×HK of
#: the hard (10 Oe) core.  Reproduces the Figure 4 waveforms.
DISCRETE_MINIATURE = FluxgateParameters(
    name="discrete-miniature",
    core=CoreParameters(
        saturation_flux_density=0.8,
        anisotropy_field=HK_MEASURED,
        coercive_field=8.0,
    ),
    excitation_turns=800,
    pickup_turns=600,
    core_area=5.0e-9,
    path_length=3.0e-3,
    series_resistance=77.0,
    leakage_inductance=50.0e-6,
)

PRESETS = {
    "kaw95": MICROMACHINED_KAW95,
    "ideal": IDEAL_TARGET,
    "discrete": DISCRETE_MINIATURE,
}


def preset(name: str) -> FluxgateParameters:
    """Look up a named parameter preset."""
    if name not in PRESETS:
        known = ", ".join(sorted(PRESETS))
        raise ConfigurationError(f"unknown sensor preset {name!r}; known: {known}")
    return PRESETS[name]
