"""The orthogonal two-sensor arrangement of the compass (§2, Figure 1).

"The electronic compass functions by measuring the magnetic field in a
horizontal plane in two perpendicular directions."  This module models the
*geometry* of that arrangement: how a horizontal field of given magnitude
and direction projects onto the x (forward) and y (right) sensor axes as
the compass body rotates, including the mechanical and electrical
imperfections a single-MCM assembly actually has:

* axis misalignment (the two sensors are not exactly 90° apart),
* gain mismatch between the two channels,
* per-axis field offsets (e.g. magnetised package, "hard iron").

These imperfections are what :mod:`repro.core.calibration` estimates and
removes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError
from ..units import tesla_to_a_per_m
from .fluxgate import FluxgateSensor
from .parameters import FluxgateParameters


@dataclass(frozen=True)
class PairImperfections:
    """Deviations of the sensor pair from an ideal orthogonal set.

    Attributes
    ----------
    misalignment_deg:
        Deviation of the y sensor from 90° relative to x [degrees].
    gain_mismatch:
        Relative gain error of the y channel (0.02 = +2 %).
    offset_x, offset_y:
        Additive field offsets on each axis [A/m].
    """

    misalignment_deg: float = 0.0
    gain_mismatch: float = 0.0
    offset_x: float = 0.0
    offset_y: float = 0.0

    def __post_init__(self) -> None:
        if abs(self.misalignment_deg) >= 45.0:
            raise ConfigurationError("misalignment beyond ±45° is not a compass")
        if self.gain_mismatch <= -1.0:
            raise ConfigurationError("gain mismatch must be > -100 %")


IDEAL_PAIR = PairImperfections()


class OrthogonalSensorPair:
    """Two fluxgate sensors mounted (nominally) perpendicular on the MCM.

    The x sensor points along the compass body's forward axis; heading 0°
    means forward = magnetic north, so the x sensor sees the full
    horizontal field and the y sensor sees none.
    """

    def __init__(
        self,
        params: FluxgateParameters,
        core_model: str = "tanh",
        imperfections: PairImperfections = IDEAL_PAIR,
    ):
        self.sensor_x = FluxgateSensor(params, core_model)
        self.sensor_y = FluxgateSensor(params, core_model)
        self.imperfections = imperfections

    @property
    def params(self) -> FluxgateParameters:
        return self.sensor_x.params

    def axis_fields(
        self, field_magnitude_a_per_m: float, heading_deg: float
    ) -> Tuple[float, float]:
        """Field components seen by the x and y sensors [A/m].

        Parameters
        ----------
        field_magnitude_a_per_m:
            Horizontal geomagnetic field strength [A/m].
        heading_deg:
            True heading of the compass body, degrees clockwise from
            magnetic north.

        Returns
        -------
        (h_x, h_y):
            With an ideal pair at heading ``θ``:
            ``h_x = |H|·cos θ`` and ``h_y = -|H|·sin θ``, so that
            ``atan2(-h_y, h_x)`` recovers ``θ``.
        """
        if field_magnitude_a_per_m < 0.0:
            raise ConfigurationError("field magnitude must be non-negative")
        imp = self.imperfections
        theta = math.radians(heading_deg)
        h_x = field_magnitude_a_per_m * math.cos(theta) + imp.offset_x
        # The y sensor is rotated 90° + misalignment from x.
        y_axis_angle = math.radians(90.0 + imp.misalignment_deg)
        h_y_ideal = field_magnitude_a_per_m * math.cos(theta + y_axis_angle)
        h_y = h_y_ideal * (1.0 + imp.gain_mismatch) + imp.offset_y
        return h_x, h_y

    def axis_fields_from_tesla(
        self, field_magnitude_t: float, heading_deg: float
    ) -> Tuple[float, float]:
        """Same as :meth:`axis_fields` but with the magnitude in tesla."""
        return self.axis_fields(tesla_to_a_per_m(field_magnitude_t), heading_deg)

    @staticmethod
    def heading_from_components(h_x: float, h_y: float) -> float:
        """Ideal (floating-point) heading from the two components [deg].

        The reference computation the paper's digital CORDIC approximates:
        "The angle to the magnetic north is calculated by taking the
        arctangent of the division of the two measurants" (§2).
        """
        heading = math.degrees(math.atan2(-h_y, h_x)) % 360.0
        # Float modulo of a tiny negative angle can round up to exactly
        # 360.0; fold that boundary case back to 0.
        return 0.0 if heading >= 360.0 else heading
