"""Fluxgate sensor models: single element, orthogonal pair, readouts."""

from .fluxgate import FluxgateSensor, SensorWaveforms
from .pair import IDEAL_PAIR, OrthogonalSensorPair, PairImperfections
from .parameters import (
    DISCRETE_MINIATURE,
    IDEAL_TARGET,
    MICROMACHINED_KAW95,
    PRESETS,
    FluxgateParameters,
    preset,
)
from .lockin import DemodulationResult, LockInDemodulator, SynchronousFieldReadout
from .second_harmonic import ADCModel, SecondHarmonicReadout, SecondHarmonicResult

__all__ = [
    "ADCModel",
    "DemodulationResult",
    "LockInDemodulator",
    "SynchronousFieldReadout",
    "DISCRETE_MINIATURE",
    "FluxgateParameters",
    "FluxgateSensor",
    "IDEAL_PAIR",
    "IDEAL_TARGET",
    "MICROMACHINED_KAW95",
    "OrthogonalSensorPair",
    "PRESETS",
    "PairImperfections",
    "SecondHarmonicReadout",
    "SecondHarmonicResult",
    "SensorWaveforms",
    "preset",
]
