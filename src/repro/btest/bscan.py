"""Boundary-scan register, instruction decode and the scan port.

Implements the register side of IEEE 1149.1 as used by the MCM test
structures [Oli96]: boundary cells with capture/shift/update stages, the
instruction register with its mandatory ``...01`` capture value, the
bypass and idcode registers, and a :class:`ScanPort` that drives the whole
protocol through a :class:`~repro.btest.tap.TAPController`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError, ProtocolError
from .tap import TAPController, TapState


class CellDirection(enum.Enum):
    """Signal direction of a boundary cell, seen from the device."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass
class BoundaryCell:
    """One boundary-scan cell: capture/shift flip-flop plus update latch."""

    name: str
    direction: CellDirection
    shift_bit: int = 0
    update_latch: int = 0

    def capture(self, pad_value: int) -> None:
        """Load the pad's current value into the shift stage."""
        if pad_value not in (0, 1):
            raise ProtocolError(f"pad value must be 0/1, got {pad_value!r}")
        self.shift_bit = pad_value

    def update(self) -> None:
        """Transfer the shift stage to the update latch (drives the pad)."""
        self.update_latch = self.shift_bit


class Instruction(enum.Enum):
    """The instruction set of the MCM test device."""

    EXTEST = "0000"
    SAMPLE = "0001"
    IDCODE = "0010"
    BYPASS = "1111"

    @property
    def bits(self) -> Tuple[int, ...]:
        return tuple(int(b) for b in self.value)


IR_WIDTH = 4

#: Mandatory IEEE 1149.1 capture value of the instruction register: the two
#: least-significant bits are 01.
IR_CAPTURE = (0, 0, 0, 1)


class BoundaryScanDevice:
    """One device on the scan chain (the SoG die / the active substrate).

    Parameters
    ----------
    name:
        Device name.
    cell_names:
        Ordered boundary-register layout as (name, direction) pairs; the
        first entry is closest to TDO (shifted out first).
    idcode:
        32-bit identification code.
    """

    def __init__(
        self,
        name: str,
        cell_names: Sequence[Tuple[str, CellDirection]],
        idcode: int = 0x1_0001_01D,
    ):
        if len(cell_names) == 0:
            raise ConfigurationError("a boundary register needs cells")
        names = [n for n, _ in cell_names]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate boundary cell names")
        if not 0 <= idcode < 2**32:
            raise ConfigurationError("idcode must be a 32-bit value")
        if idcode & 1 != 1:
            raise ConfigurationError(
                "IEEE 1149.1 requires idcode bit 0 == 1 "
                "(distinguishes IDCODE from BYPASS capture)"
            )
        self.name = name
        self.cells = [BoundaryCell(n, d) for n, d in cell_names]
        self.idcode = idcode
        self.instruction = Instruction.IDCODE  # reset value per the standard
        self._ir_shift: List[int] = [0] * IR_WIDTH
        self._bypass_bit = 0
        self._idcode_shift: List[int] = [0] * 32
        #: Pad input values, set by the environment (the interconnect model).
        self.pad_inputs: Dict[str, int] = {
            c.name: 0 for c in self.cells if c.direction is CellDirection.INPUT
        }

    # -- register selection ----------------------------------------------------------

    def _dr_length(self) -> int:
        if self.instruction in (Instruction.EXTEST, Instruction.SAMPLE):
            return len(self.cells)
        if self.instruction is Instruction.IDCODE:
            return 32
        return 1  # BYPASS

    # -- TAP event handlers -------------------------------------------------------

    def on_test_logic_reset(self) -> None:
        self.instruction = Instruction.IDCODE

    def capture_ir(self) -> None:
        self._ir_shift = list(IR_CAPTURE)

    def shift_ir(self, tdi: int) -> int:
        """Shift one bit through the IR; returns the bit leaving via TDO."""
        tdo = self._ir_shift[-1]
        self._ir_shift = [tdi] + self._ir_shift[:-1]
        return tdo

    def update_ir(self) -> None:
        bits = "".join(str(b) for b in self._ir_shift)
        for instruction in Instruction:
            if instruction.value == bits:
                self.instruction = instruction
                return
        # Unknown opcodes decode to BYPASS, per the standard.
        self.instruction = Instruction.BYPASS

    def capture_dr(self) -> None:
        if self.instruction in (Instruction.EXTEST, Instruction.SAMPLE):
            for cell in self.cells:
                if cell.direction is CellDirection.INPUT:
                    cell.capture(self.pad_inputs[cell.name])
                else:
                    cell.capture(cell.update_latch)
        elif self.instruction is Instruction.IDCODE:
            self._idcode_shift = [
                (self.idcode >> i) & 1 for i in range(32)
            ]
        else:
            self._bypass_bit = 0

    def shift_dr(self, tdi: int) -> int:
        if self.instruction in (Instruction.EXTEST, Instruction.SAMPLE):
            tdo = self.cells[0].shift_bit
            for i in range(len(self.cells) - 1):
                self.cells[i].shift_bit = self.cells[i + 1].shift_bit
            self.cells[-1].shift_bit = tdi
            return tdo
        if self.instruction is Instruction.IDCODE:
            tdo = self._idcode_shift[0]
            self._idcode_shift = self._idcode_shift[1:] + [tdi]
            return tdo
        tdo = self._bypass_bit
        self._bypass_bit = tdi
        return tdo

    def update_dr(self) -> None:
        if self.instruction is Instruction.EXTEST:
            for cell in self.cells:
                if cell.direction is CellDirection.OUTPUT:
                    cell.update()

    # -- pad-side access ------------------------------------------------------------

    def driven_values(self) -> Dict[str, int]:
        """What the output cells drive onto the nets under EXTEST."""
        return {
            c.name: c.update_latch
            for c in self.cells
            if c.direction is CellDirection.OUTPUT
        }

    def set_pad_input(self, cell_name: str, value: int) -> None:
        if cell_name not in self.pad_inputs:
            raise ConfigurationError(f"no input cell {cell_name!r}")
        if value not in (0, 1):
            raise ProtocolError(f"pad value must be 0/1, got {value!r}")
        self.pad_inputs[cell_name] = value


class ScanPort:
    """TCK/TMS/TDI/TDO access to a chain of boundary-scan devices.

    Devices are chained TDI → devices[0] → devices[1] → … → TDO.
    """

    def __init__(self, devices: Sequence[BoundaryScanDevice]):
        if len(devices) == 0:
            raise ConfigurationError("scan chain needs at least one device")
        self.devices = list(devices)
        self.tap = TAPController()

    # -- low-level clocking ----------------------------------------------------------

    def clock(self, tms: int, tdi: int = 0) -> int:
        """One TCK edge; returns the TDO level shifted out (or 0)."""
        if tdi not in (0, 1):
            raise ProtocolError(f"TDI must be 0/1, got {tdi!r}")
        state_before = self.tap.state
        tdo = 0
        if state_before is TapState.SHIFT_DR:
            bit = tdi
            for device in self.devices:
                bit = device.shift_dr(bit)
            tdo = bit
        elif state_before is TapState.SHIFT_IR:
            bit = tdi
            for device in self.devices:
                bit = device.shift_ir(bit)
            tdo = bit
        state = self.tap.step(tms)
        if state is TapState.TEST_LOGIC_RESET:
            for device in self.devices:
                device.on_test_logic_reset()
        elif state is TapState.CAPTURE_DR:
            for device in self.devices:
                device.capture_dr()
        elif state is TapState.CAPTURE_IR:
            for device in self.devices:
                device.capture_ir()
        elif state is TapState.UPDATE_DR:
            for device in self.devices:
                device.update_dr()
        elif state is TapState.UPDATE_IR:
            for device in self.devices:
                device.update_ir()
        return tdo

    # -- protocol helpers ---------------------------------------------------------------

    def reset(self) -> None:
        """Hold TMS high for five clocks, then drop to Run-Test/Idle."""
        for _ in range(5):
            self.clock(1)
        self.clock(0)
        if self.tap.state is not TapState.RUN_TEST_IDLE:
            raise ProtocolError("scan port failed to reach Run-Test/Idle")

    def _require_idle(self) -> None:
        if self.tap.state is not TapState.RUN_TEST_IDLE:
            raise ProtocolError(
                f"scan operation must start from Run-Test/Idle, "
                f"not {self.tap.state}"
            )

    def _scan(self, bits_in: Sequence[int], to_shift: Tuple[int, ...]) -> List[int]:
        self._require_idle()
        for tms in to_shift:
            self.clock(tms)
        bits_out: List[int] = []
        for i, bit in enumerate(bits_in):
            last = i == len(bits_in) - 1
            bits_out.append(self.clock(1 if last else 0, bit))
        for tms in TAPController.path_exit_to_idle():
            self.clock(tms)
        return bits_out

    def scan_ir(self, bits_in: Sequence[int]) -> List[int]:
        """Shift an instruction into every device (LSB-first per device).

        ``bits_in`` covers the whole chain: ``IR_WIDTH × len(devices)``
        bits, the first device's bits first.
        """
        expected = IR_WIDTH * len(self.devices)
        if len(bits_in) != expected:
            raise ProtocolError(
                f"IR scan needs {expected} bits for this chain, "
                f"got {len(bits_in)}"
            )
        return self._scan(bits_in, TAPController.path_to_shift_ir())

    def scan_dr(self, bits_in: Sequence[int]) -> List[int]:
        """Shift a data-register pattern through the chain."""
        return self._scan(bits_in, TAPController.path_to_shift_dr())

    def load_instruction(self, instruction: Instruction) -> None:
        """Put every device in the chain into the same instruction.

        Bits enter TDI first for the *last* device in the shift path, so
        each device's opcode is sent LSB-last; for identical opcodes the
        ordering collapses to a simple repetition.
        """
        opcode = list(reversed(instruction.bits))
        self.scan_ir(opcode * len(self.devices))
        for device in self.devices:
            if device.instruction is not instruction:
                raise ProtocolError(
                    f"device {device.name!r} decoded "
                    f"{device.instruction} instead of {instruction}"
                )

    def read_idcodes(self) -> List[int]:
        """IDCODE scan: reset (selects IDCODE), read 32 bits per device."""
        self.reset()
        raw = self.scan_dr([0] * (32 * len(self.devices)))
        # The device nearest TDO (devices[-1]) shifts out first; unpack
        # in reverse so the result lists codes in chain (TDI-side) order.
        codes = [0] * len(self.devices)
        for i in range(len(self.devices)):
            bits = raw[i * 32 : (i + 1) * 32]
            codes[len(self.devices) - 1 - i] = sum(
                b << k for k, b in enumerate(bits)
            )
        return codes

    def chain_length_dr(self) -> int:
        """Discover the DR chain length by flushing with a marker bit.

        Classic JTAG plumbing check: fill the chain with zeros, then shift
        a single one and count the clocks until it reappears.
        """
        self._require_idle()
        total = sum(d._dr_length() for d in self.devices)
        flush = self.scan_dr([0] * total + [1] + [0] * total)
        try:
            # Position of the marker in the outgoing stream equals the
            # chain length (it entered after `total` zeros).
            return flush.index(1, total) - total
        except ValueError as exc:
            raise ProtocolError("marker bit never emerged from chain") from exc
