"""MCM interconnect testing through the boundary-scan structures [Oli96].

The point of putting boundary scan on the MCM ("Test Structures on MCM
Active Substrate: Is it Worthwhile", the paper's own reference) is to test
the substrate wiring between the SoG die and the sensor dies after
assembly: opens from failed bond connections, shorts between adjacent
substrate traces, and stuck nets.

The classic algorithm is the **modified counting sequence**: every net is
assigned a unique code (skipping all-zeros and all-ones so stuck nets are
always detected); code bit ``b`` of every net is applied in parallel as
test pattern ``b`` via EXTEST, and the receivers' captures are
concatenated per net into a received code.  Diagnosis is a code lookup:

* received == sent            → net good,
* received is all-0 / all-1   → open or stuck net,
* received == another net's   → short with that net (wired-AND).

Everything runs through the real scan protocol: patterns are shifted into
the driver cells through the TAP, nets propagate (with injected faults),
and results are shifted back out.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..soc.mcm import MCMAssembly
from .bscan import (
    BoundaryScanDevice,
    CellDirection,
    Instruction,
    ScanPort,
)


class FaultKind(enum.Enum):
    """Injectable interconnect faults."""

    OPEN = "open"          # receiver sees the floating level
    STUCK_0 = "stuck-0"
    STUCK_1 = "stuck-1"
    SHORT = "short"        # wired-AND with another net


@dataclass(frozen=True)
class InterconnectFault:
    """One injected fault.

    Attributes
    ----------
    kind:
        The fault class.
    net:
        Faulted net name.
    other_net:
        Second net of a SHORT; unused otherwise.
    """

    kind: FaultKind
    net: str
    other_net: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is FaultKind.SHORT and not self.other_net:
            raise ConfigurationError("a SHORT needs two nets")
        if self.kind is not FaultKind.SHORT and self.other_net:
            raise ConfigurationError(f"{self.kind} takes a single net")


#: Floating (open) inputs read as logic 1 on this substrate technology
#: (pull-ups in the receiver cells).
OPEN_READS_AS = 1


def counting_codes(n_nets: int) -> List[int]:
    """Unique per-net codes for the modified counting sequence.

    Codes 1 … n (skipping 0) in ``ceil(log2(n+2))`` bits, additionally
    skipping the all-ones code so no good net is confusable with a stuck
    or open net.
    """
    if n_nets < 1:
        raise ConfigurationError("need at least one net")
    width = max(1, math.ceil(math.log2(n_nets + 2)))
    all_ones = (1 << width) - 1
    codes = [c for c in range(1, all_ones) ][:n_nets]
    if len(codes) < n_nets:
        raise ConfigurationError("code space too small — widen the sequence")
    return codes


def code_width(n_nets: int) -> int:
    """Bits per code (= number of EXTEST patterns needed)."""
    return max(1, math.ceil(math.log2(n_nets + 2)))


class SubstrateHarness:
    """Boundary-scan harness around an MCM's substrate nets.

    Builds one boundary-scan device ("the active substrate") with a driver
    cell and a receiver cell per net, wires its EXTEST path through the
    fault model, and exposes the modified-counting-sequence test.
    """

    def __init__(self, mcm: MCMAssembly):
        mcm.validate()
        self.mcm = mcm
        self.net_names = sorted(mcm.nets)
        if not self.net_names:
            raise ConfigurationError("MCM has no nets to test")
        cells: List[Tuple[str, CellDirection]] = []
        for net in self.net_names:
            cells.append((f"drv_{net}", CellDirection.OUTPUT))
            cells.append((f"rcv_{net}", CellDirection.INPUT))
        self.device = BoundaryScanDevice("substrate", cells, idcode=0x0BEE_F001)
        self.port = ScanPort([self.device])
        self.faults: List[InterconnectFault] = []

    # -- fault injection ---------------------------------------------------------

    def inject(self, fault: InterconnectFault) -> None:
        for name in (fault.net, fault.other_net):
            if name is not None and name not in self.net_names:
                raise ConfigurationError(f"no net {name!r} on this MCM")
        self.faults.append(fault)

    def clear_faults(self) -> None:
        self.faults = []

    # -- net propagation -----------------------------------------------------------

    def _propagate(self) -> None:
        """Drive every net from its driver cell through the fault model."""
        driven = self.device.driven_values()
        levels: Dict[str, int] = {
            net: driven[f"drv_{net}"] for net in self.net_names
        }
        for fault in self.faults:
            if fault.kind is FaultKind.STUCK_0:
                levels[fault.net] = 0
            elif fault.kind is FaultKind.STUCK_1:
                levels[fault.net] = 1
            elif fault.kind is FaultKind.OPEN:
                levels[fault.net] = OPEN_READS_AS
            elif fault.kind is FaultKind.SHORT:
                wired_and = levels[fault.net] & levels[fault.other_net]
                levels[fault.net] = wired_and
                levels[fault.other_net] = wired_and
        for net, level in levels.items():
            self.device.set_pad_input(f"rcv_{net}", level)

    # -- the test ------------------------------------------------------------------------

    def _apply_pattern(self, drive_bits: Dict[str, int]) -> Dict[str, int]:
        """One EXTEST pattern: shift in drives, propagate, capture, read.

        Two DR scans per pattern, as on real hardware: the first loads the
        drivers (update), the second captures the settled receivers while
        loading the next-safe all-zero drive.
        """
        layout = self.device.cells
        # The register shifts toward TDO at cell 0, so the bit sent on
        # clock k comes to rest in cell k: build the stream in cell order.
        shift_in = []
        for cell in layout:
            if cell.direction is CellDirection.OUTPUT:
                net = cell.name[len("drv_"):]
                shift_in.append(drive_bits[net])
            else:
                shift_in.append(0)
        self.port.scan_dr(shift_in)  # update loads the drivers
        self._propagate()
        captured = self.port.scan_dr(shift_in)  # capture + re-load drivers
        received: Dict[str, int] = {}
        for position, cell in enumerate(layout):
            if cell.direction is CellDirection.INPUT:
                net = cell.name[len("rcv_"):]
                received[net] = captured[position]
        return received

    def run_counting_sequence(self) -> Dict[str, int]:
        """Run the full test; returns the received code per net."""
        codes = dict(zip(self.net_names, counting_codes(len(self.net_names))))
        width = code_width(len(self.net_names))
        self.port.reset()
        self.port.load_instruction(Instruction.EXTEST)
        received_codes = {net: 0 for net in self.net_names}
        for bit in range(width):
            drive = {net: (codes[net] >> bit) & 1 for net in self.net_names}
            received = self._apply_pattern(drive)
            for net, level in received.items():
                received_codes[net] |= level << bit
        return received_codes

    def diagnose(self) -> Dict[str, str]:
        """Run the test and classify every net.

        Returns net → one of ``"good"``, ``"open/stuck-1"``, ``"stuck-0"``
        or ``"short with <net>"``.

        Short-partner attribution only ever names a net that *itself*
        read an anomalous code: when the wired-AND of a short equals a
        third, healthy net's code, that healthy net is indistinguishable
        at the pins from an aliased short partner, and a single-pass
        diagnosis must not accuse it.  Such cases report ``"short with
        unknown"``; :meth:`diagnose_with_complement` breaks the alias
        and names the true pair.
        """
        codes = dict(zip(self.net_names, counting_codes(len(self.net_names))))
        width = code_width(len(self.net_names))
        all_ones = (1 << width) - 1
        received = self.run_counting_sequence()
        verdicts: Dict[str, str] = {}
        for net in self.net_names:
            got = received[net]
            if got == codes[net]:
                verdicts[net] = "good"
            elif got == all_ones:
                verdicts[net] = "open/stuck-1"
            elif got == 0:
                verdicts[net] = "stuck-0"
            else:
                culprits = [
                    other
                    for other in self.net_names
                    if other != net
                    and received[other] == got
                    and received[other] != codes[other]
                    and (codes[other] & codes[net]) == got
                ]
                partner = culprits[0] if culprits else "unknown"
                verdicts[net] = f"short with {partner}"
        return verdicts

    def test_passes(self) -> bool:
        """True iff every net diagnoses as good."""
        return all(v == "good" for v in self.diagnose().values())

    # -- counting sequence with complement (the true "modified" variant) ----

    def run_with_complement(self) -> Dict[str, Tuple[int, int]]:
        """Apply every code and its bitwise complement.

        The plain counting sequence can miss one partner of a wired-AND
        short when that net's code is a subset of the other's (the AND
        equals its own code).  Driving the complemented codes as a second
        pass breaks the subset relation — a net pair cannot alias in both
        polarities unless the codes are equal, which unique codes forbid.
        Costs exactly 2× the patterns.
        """
        codes = dict(zip(self.net_names, counting_codes(len(self.net_names))))
        width = code_width(len(self.net_names))
        mask = (1 << width) - 1
        self.port.reset()
        self.port.load_instruction(Instruction.EXTEST)

        received = {net: [0, 0] for net in self.net_names}
        for phase, polarity in enumerate(("direct", "complement")):
            for bit in range(width):
                drive = {}
                for net in self.net_names:
                    code = codes[net] if phase == 0 else (~codes[net] & mask)
                    drive[net] = (code >> bit) & 1
                captured = self._apply_pattern(drive)
                for net, level in captured.items():
                    received[net][phase] |= level << bit
        return {net: (vals[0], vals[1]) for net, vals in received.items()}

    def diagnose_with_complement(self) -> Dict[str, str]:
        """Diagnose with the two-pass test; catches aliased shorts.

        Two faulty nets showing the *same* anomalous read pair are
        diagnosed as shorted together — when two codes are disjoint their
        wired-AND reads all-zero in both passes, which is exactly what a
        pair of stuck-0 nets would read; the pairwise signature is the
        only (and the likelier) distinction available at the pins.
        """
        codes = dict(zip(self.net_names, counting_codes(len(self.net_names))))
        width = code_width(len(self.net_names))
        mask = (1 << width) - 1
        received = self.run_with_complement()

        bad = [
            net
            for net in self.net_names
            if received[net] != (codes[net], ~codes[net] & mask)
        ]
        verdicts: Dict[str, str] = {
            net: "good" for net in self.net_names if net not in bad
        }
        for net in bad:
            partners = [
                other
                for other in bad
                if other != net and received[other] == received[net]
            ]
            direct, complement = received[net]
            if partners:
                verdicts[net] = f"short with {partners[0]}"
            elif direct == mask and complement == mask:
                verdicts[net] = "open/stuck-1"
            elif direct == 0 and complement == 0:
                verdicts[net] = "stuck-0"
            else:
                verdicts[net] = "faulty"
        return verdicts


def fault_coverage(
    harness_factory,
    faults: Sequence[InterconnectFault],
) -> float:
    """Fraction of injected faults the counting-sequence test detects.

    ``harness_factory`` builds a fresh harness per fault (fault effects
    must not accumulate).
    """
    if len(faults) == 0:
        raise ConfigurationError("no faults to evaluate")
    detected = 0
    for fault in faults:
        harness = harness_factory()
        harness.inject(fault)
        if not harness.test_passes():
            detected += 1
    return detected / len(faults)
