"""IEEE 1149.1 TAP controller — the access port of the MCM test structures.

§2: "The SoG and two micromachined sensors will be combined on a single
MCM, equipped with boundary scan test structures [Oli96]."  [Oli96] is the
group's own ED&TC'96 paper on boundary-scan structures on active MCM
substrates; this module provides the standard 16-state TAP state machine
those structures hang off.

Clocking semantics (documented because simulators differ in edge
bookkeeping): one call to :meth:`TAPController.clock` models one rising
TCK edge.

* If the controller was in Shift-DR/Shift-IR *before* the edge, the
  selected register shifts one bit on this edge.
* The state transition then takes effect; *entering* Capture-DR/IR
  captures, *entering* Update-DR/IR updates.

So a scan of ``n`` bits is: enter Shift via 1,0,0 (or 1,1,0,0 for IR),
then ``n`` edges of which the last carries TMS=1, then TMS=1 to Update.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

from ..errors import ProtocolError


class TapState(enum.Enum):
    """The sixteen controller states of IEEE 1149.1 figure 6-1."""

    TEST_LOGIC_RESET = "test-logic-reset"
    RUN_TEST_IDLE = "run-test-idle"
    SELECT_DR_SCAN = "select-dr-scan"
    CAPTURE_DR = "capture-dr"
    SHIFT_DR = "shift-dr"
    EXIT1_DR = "exit1-dr"
    PAUSE_DR = "pause-dr"
    EXIT2_DR = "exit2-dr"
    UPDATE_DR = "update-dr"
    SELECT_IR_SCAN = "select-ir-scan"
    CAPTURE_IR = "capture-ir"
    SHIFT_IR = "shift-ir"
    EXIT1_IR = "exit1-ir"
    PAUSE_IR = "pause-ir"
    EXIT2_IR = "exit2-ir"
    UPDATE_IR = "update-ir"


_S = TapState

#: (state, tms) -> next state; the standard's transition table, verbatim.
TRANSITIONS: Dict[Tuple[TapState, int], TapState] = {
    (_S.TEST_LOGIC_RESET, 0): _S.RUN_TEST_IDLE,
    (_S.TEST_LOGIC_RESET, 1): _S.TEST_LOGIC_RESET,
    (_S.RUN_TEST_IDLE, 0): _S.RUN_TEST_IDLE,
    (_S.RUN_TEST_IDLE, 1): _S.SELECT_DR_SCAN,
    (_S.SELECT_DR_SCAN, 0): _S.CAPTURE_DR,
    (_S.SELECT_DR_SCAN, 1): _S.SELECT_IR_SCAN,
    (_S.CAPTURE_DR, 0): _S.SHIFT_DR,
    (_S.CAPTURE_DR, 1): _S.EXIT1_DR,
    (_S.SHIFT_DR, 0): _S.SHIFT_DR,
    (_S.SHIFT_DR, 1): _S.EXIT1_DR,
    (_S.EXIT1_DR, 0): _S.PAUSE_DR,
    (_S.EXIT1_DR, 1): _S.UPDATE_DR,
    (_S.PAUSE_DR, 0): _S.PAUSE_DR,
    (_S.PAUSE_DR, 1): _S.EXIT2_DR,
    (_S.EXIT2_DR, 0): _S.SHIFT_DR,
    (_S.EXIT2_DR, 1): _S.UPDATE_DR,
    (_S.UPDATE_DR, 0): _S.RUN_TEST_IDLE,
    (_S.UPDATE_DR, 1): _S.SELECT_DR_SCAN,
    (_S.SELECT_IR_SCAN, 0): _S.CAPTURE_IR,
    (_S.SELECT_IR_SCAN, 1): _S.TEST_LOGIC_RESET,
    (_S.CAPTURE_IR, 0): _S.SHIFT_IR,
    (_S.CAPTURE_IR, 1): _S.EXIT1_IR,
    (_S.SHIFT_IR, 0): _S.SHIFT_IR,
    (_S.SHIFT_IR, 1): _S.EXIT1_IR,
    (_S.EXIT1_IR, 0): _S.PAUSE_IR,
    (_S.EXIT1_IR, 1): _S.UPDATE_IR,
    (_S.PAUSE_IR, 0): _S.PAUSE_IR,
    (_S.PAUSE_IR, 1): _S.EXIT2_IR,
    (_S.EXIT2_IR, 0): _S.SHIFT_IR,
    (_S.EXIT2_IR, 1): _S.UPDATE_IR,
    (_S.UPDATE_IR, 0): _S.RUN_TEST_IDLE,
    (_S.UPDATE_IR, 1): _S.SELECT_DR_SCAN,
}


class TAPController:
    """The bare state machine; registers live in the attached device."""

    def __init__(self) -> None:
        self.state = TapState.TEST_LOGIC_RESET

    def step(self, tms: int) -> TapState:
        """Advance one TCK edge with the given TMS level."""
        if tms not in (0, 1):
            raise ProtocolError(f"TMS must be 0 or 1, got {tms!r}")
        self.state = TRANSITIONS[(self.state, tms)]
        return self.state

    def reset(self) -> None:
        """Five TMS=1 edges reach Test-Logic-Reset from any state."""
        for _ in range(5):
            self.step(1)
        if self.state is not TapState.TEST_LOGIC_RESET:
            raise ProtocolError("TAP failed to reset — transition table broken")

    # -- canonical navigation sequences ---------------------------------------

    @staticmethod
    def path_to_shift_dr() -> Tuple[int, ...]:
        """TMS sequence Run-Test/Idle → Shift-DR (captures on the way)."""
        return (1, 0, 0)

    @staticmethod
    def path_to_shift_ir() -> Tuple[int, ...]:
        """TMS sequence Run-Test/Idle → Shift-IR (captures on the way)."""
        return (1, 1, 0, 0)

    @staticmethod
    def path_exit_to_idle() -> Tuple[int, ...]:
        """TMS sequence Exit1 → Update → Run-Test/Idle."""
        return (1, 0)
