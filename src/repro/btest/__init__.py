"""Boundary-scan test structures for the MCM ([Oli96], §2)."""

from .bscan import (
    IR_WIDTH,
    BoundaryCell,
    BoundaryScanDevice,
    CellDirection,
    Instruction,
    ScanPort,
)
from .interconnect import (
    FaultKind,
    InterconnectFault,
    SubstrateHarness,
    code_width,
    counting_codes,
    fault_coverage,
)
from .tap import TAPController, TapState, TRANSITIONS

__all__ = [
    "BoundaryCell",
    "BoundaryScanDevice",
    "CellDirection",
    "FaultKind",
    "IR_WIDTH",
    "Instruction",
    "InterconnectFault",
    "ScanPort",
    "SubstrateHarness",
    "TAPController",
    "TRANSITIONS",
    "TapState",
    "code_width",
    "counting_codes",
    "fault_coverage",
]
