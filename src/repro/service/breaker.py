"""Per-replica circuit breaker: closed → open → half-open → closed.

A replica that keeps failing health checks should stop being asked —
every doomed attempt burns deadline budget the request could spend on a
healthy replica.  The breaker tracks consecutive failures per replica
and runs the classic three-state machine:

* **closed** — requests flow; ``failure_threshold`` consecutive
  failures trip it open.
* **open** — requests are refused outright for ``open_duration_s``
  (measured on the injected :class:`~repro.service.clock.Clock`).
* **half-open** — after the cool-down one probe request is let through;
  ``half_open_successes`` consecutive probe successes re-close the
  breaker, any probe failure re-opens it with a fresh cool-down.

Transitions are reported through an optional callback so the service can
turn them into :mod:`repro.observe` metrics without the breaker knowing
about metrics at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ConfigurationError
from .clock import Clock


class BreakerState(enum.Enum):
    """The three breaker states, valued for the state gauge metric."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    @property
    def gauge_value(self) -> int:
        return {"closed": 0, "open": 1, "half-open": 2}[self.value]


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery thresholds of one circuit breaker.

    Attributes
    ----------
    failure_threshold:
        Consecutive failures that trip a closed breaker open.
    open_duration_s:
        Cool-down before an open breaker admits a half-open probe [s].
    half_open_successes:
        Consecutive probe successes required to re-close.
    """

    failure_threshold: int = 3
    open_duration_s: float = 0.05
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure threshold must be >= 1")
        if self.open_duration_s < 0.0:
            raise ConfigurationError("open duration must be >= 0")
        if self.half_open_successes < 1:
            raise ConfigurationError("half-open successes must be >= 1")


#: Transition callback: (from_state, to_state).
TransitionHook = Callable[[BreakerState, BreakerState], None]


class CircuitBreaker:
    """One replica's admission gate, driven by attempt outcomes."""

    def __init__(
        self,
        config: BreakerConfig,
        clock: Clock,
        on_transition: Optional[TransitionHook] = None,
    ):
        self.config = config
        self._clock = clock
        self._on_transition = on_transition
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._open_until = 0.0
        self.transitions = 0

    @property
    def open_until(self) -> float:
        """Clock time at which an open breaker admits its next probe."""
        return self._open_until

    @property
    def state(self) -> BreakerState:
        """Current state, resolving an expired open cool-down lazily."""
        if (
            self._state is BreakerState.OPEN
            and self._clock.now() >= self._open_until
        ):
            self._transition(BreakerState.HALF_OPEN)
        return self._state

    def _transition(self, to: BreakerState) -> None:
        if to is self._state:
            return
        from_state = self._state
        self._state = to
        self.transitions += 1
        if to is BreakerState.OPEN:
            self._open_until = (
                self._clock.now() + self.config.open_duration_s
            )
        if to is not BreakerState.OPEN:
            self._probe_successes = 0
        if to is BreakerState.CLOSED:
            self._consecutive_failures = 0
        if self._on_transition is not None:
            self._on_transition(from_state, to)

    def allow(self) -> bool:
        """May the service send this replica a request right now?"""
        return self.state is not BreakerState.OPEN

    def record_success(self) -> None:
        """Account a successful attempt (closes a probing breaker)."""
        state = self.state
        self._consecutive_failures = 0
        if state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_successes:
                self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """Account a failed attempt (may trip or re-open the breaker)."""
        state = self.state
        if state is BreakerState.HALF_OPEN:
            # A failed probe: straight back to open with a fresh cool-down.
            self._transition(BreakerState.OPEN)
            return
        self._consecutive_failures += 1
        if (
            state is BreakerState.CLOSED
            and self._consecutive_failures >= self.config.failure_threshold
        ):
            self._transition(BreakerState.OPEN)


__all__ = ["BreakerConfig", "BreakerState", "CircuitBreaker"]
