"""repro.service — the resilient heading service.

The paper's compass must deliver 1° headings continuously despite an
imperfect analogue front-end; the related sensing literature (the
magnetoresistor-array tracker, the modular magneto-inductive arrays in
PAPERS.md) gets that robustness from *arrays of cheap replicated
channels*.  This package is that idea at the system level:

* :class:`~repro.service.service.HeadingService` — fronts a bulkhead
  pool of N independently-seeded compasses with per-request deadlines,
  per-attempt timeouts, bounded retries (exponential backoff +
  decorrelated jitter), per-replica circuit breakers and K-of-N
  circular-median/MAD heading voting;
* :class:`~repro.service.breaker.CircuitBreaker` — the
  closed/open/half-open admission gate per replica;
* :mod:`~repro.service.voting` — heading statistics done on the circle
  (vote on unit vectors, never raw degrees);
* :mod:`~repro.service.clock` / :mod:`~repro.service.backoff` —
  injected time and jitter, so every retry schedule and breaker
  cool-down is reproducible from the seed.

Quickstart::

    from repro.service import HeadingService, ServiceConfig

    service = HeadingService(ServiceConfig(replicas=3, quorum=2))
    response = service.measure_heading(123.0)
    print(response.heading_deg, response.verdict.value)

The chaos companion lives in :mod:`repro.faults.chaos`: a seeded soak
that arms registered faults on a minority of replicas while asserting
the service keeps silent-wrong at zero and availability above a floor.
"""

from .backoff import BackoffPolicy, BackoffSchedule
from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .clock import Clock, SimulatedClock, SystemClock
from .replica import CompassReplica, replica_config
from .service import (
    AttemptRecord,
    HeadingService,
    ServiceConfig,
    ServiceResponse,
    ServiceVerdict,
)
from .voting import (
    VoteResult,
    circular_mad_deg,
    circular_mean_deg,
    circular_median_deg,
    vote_headings,
)

__all__ = [
    "AttemptRecord",
    "BackoffPolicy",
    "BackoffSchedule",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "Clock",
    "CompassReplica",
    "HeadingService",
    "ServiceConfig",
    "ServiceResponse",
    "ServiceVerdict",
    "SimulatedClock",
    "SystemClock",
    "VoteResult",
    "circular_mad_deg",
    "circular_mean_deg",
    "circular_median_deg",
    "replica_config",
    "vote_headings",
]
