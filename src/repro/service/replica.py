"""One bulkhead replica: an independently-seeded compass behind a breaker.

Bulkhead isolation means a fault in one replica cannot leak into
another: each :class:`CompassReplica` owns its *own*
:class:`~repro.core.compass.IntegratedCompass` instance (its own sensor
pair, front-end, back-end and health supervisor) built from the shared
base configuration with a replica-specific noise seed.  The fault
registry's reversible monkey-hooks patch *instances*, so a chaos
campaign arming a fault on replica 1 leaves replicas 0 and 2 untouched
by construction.

The replica also models its service latency: the physical measurement
time (settle + count + CORDIC) plus a seeded dispatch-overhead draw,
scaled by :attr:`latency_scale` — the chaos harness's hook for slow-
replica (grey-failure) scenarios that must trip the attempt timeout
rather than any health check.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.compass import CompassConfig, IntegratedCompass
from ..core.heading import HeadingMeasurement
from ..observe import Observer
from .breaker import CircuitBreaker

#: Dispatch overhead per attempt, as a fraction of the measurement time:
#: drawn uniformly from this window so replicas do not reply in lockstep.
OVERHEAD_FRACTION_RANGE = (0.05, 0.25)


def replica_config(base: CompassConfig, noise_seed: int) -> CompassConfig:
    """The base compass configuration re-seeded for one replica."""
    return dataclasses.replace(
        base,
        front_end=dataclasses.replace(base.front_end, noise_seed=noise_seed),
    )


class CompassReplica:
    """One pool member: compass + breaker + latency model."""

    def __init__(
        self,
        index: int,
        base_config: CompassConfig,
        breaker: CircuitBreaker,
        rng: np.random.Generator,
        noise_seed: int,
    ):
        self.index = index
        self.name = f"replica-{index}"
        self.compass = IntegratedCompass(replica_config(base_config, noise_seed))
        self.breaker = breaker
        self._rng = rng
        #: Grey-failure hook: >1 slows every reply by that factor.
        self.latency_scale = 1.0
        self._batch = None

    def attach_observer(self, observer: Observer) -> None:
        """Report this replica's spans/metrics into the service observer.

        The compass resolved its own (disabled) observer at build time;
        re-pointing the compass and its front-/back-end at the service's
        observer merges every replica into one span tree and one metrics
        registry, which is where fleet-level questions get answered.
        """
        self.compass.observer = observer
        self.compass.front_end.observer = observer
        self.compass.back_end.observer = observer

    def draw_latency(self) -> float:
        """Modelled duration of the *next* attempt [s].

        Drawn before the measurement runs so a faulting attempt costs
        the caller the same time a clean one would — on real hardware
        the excitation/count cycle completes before any plausibility
        check can reject it.
        """
        overhead = float(self._rng.uniform(*OVERHEAD_FRACTION_RANGE))
        nominal = self.compass.back_end.controller.measurement_duration()
        return nominal * (1.0 + overhead) * self.latency_scale

    def measure(
        self, true_heading_deg: float, field_magnitude_t: float
    ) -> HeadingMeasurement:
        """One measurement attempt; raises whatever the compass raises —
        classification is the service's job."""
        return self.compass.measure_heading(
            true_heading_deg, field_magnitude_t
        )

    def batch(self):
        """This replica's lazily built batch engine (shared front-end).

        The :class:`~repro.batch.BatchCompass` wraps the *same* compass
        instance, so interleaving scalar attempts and scene batches
        keeps one noise stream — the bulk path's measurements stay
        bit-identical to the scalar loop's.
        """
        if self._batch is None:
            from ..batch import BatchCompass

            self._batch = BatchCompass(self.compass)
        return self._batch


__all__ = ["CompassReplica", "OVERHEAD_FRACTION_RANGE", "replica_config"]
