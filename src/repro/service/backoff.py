"""Retry backoff: exponential growth with decorrelated jitter.

Retrying a sick replica immediately is how a transient fault becomes a
retry storm; retrying on a fixed exponential schedule synchronises every
client into thundering herds.  The service therefore uses *decorrelated
jitter*: each delay is drawn uniformly from ``[base, previous × mult]``
and capped, which empirically spreads contending retries at least as
well as full jitter while still growing exponentially on persistent
failure.

Determinism: the draw comes from an injected :class:`numpy.random.
Generator`, seeded by the service's root seed — a retry schedule is a
pure function of (seed, failure history), so chaos-soak runs reproduce
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class BackoffPolicy:
    """Shape of the retry-delay distribution.

    Attributes
    ----------
    base_s:
        First delay and the lower bound of every draw [s].
    cap_s:
        Upper bound on any single delay [s].
    multiplier:
        Growth factor of the decorrelated-jitter window.
    """

    base_s: float = 0.002
    cap_s: float = 0.05
    multiplier: float = 3.0

    def __post_init__(self) -> None:
        if self.base_s <= 0.0:
            raise ConfigurationError("backoff base must be positive")
        if self.cap_s < self.base_s:
            raise ConfigurationError("backoff cap must be >= base")
        if self.multiplier < 1.0:
            raise ConfigurationError("backoff multiplier must be >= 1")


class BackoffSchedule:
    """The stateful per-request delay sequence for one retry loop."""

    def __init__(self, policy: BackoffPolicy, rng: np.random.Generator):
        self.policy = policy
        self._rng = rng
        self._previous = policy.base_s

    def next_delay(self) -> float:
        """Draw the next retry delay [s] (decorrelated jitter)."""
        policy = self.policy
        high = max(policy.base_s, self._previous * policy.multiplier)
        delay = float(self._rng.uniform(policy.base_s, high))
        delay = min(policy.cap_s, delay)
        self._previous = delay
        return delay


__all__ = ["BackoffPolicy", "BackoffSchedule"]
