"""Injectable clocks — deterministic time for a resilient service.

Every time-dependent policy in :mod:`repro.service` (request deadlines,
attempt timeouts, backoff sleeps, breaker open-state cool-downs) reads
time through a :class:`Clock` handed in at construction.  Production
code would pass :class:`SystemClock`; every test and the chaos-soak
harness pass a :class:`SimulatedClock`, so a soak of thousands of
requests with millisecond backoffs runs in microseconds of wall time and
reproduces bit-identically from its seed.
"""

from __future__ import annotations

import time

from ..errors import ConfigurationError


class Clock:
    """Monotonic time source + sleep, the minimal scheduling interface."""

    def now(self) -> float:
        """Monotonic timestamp [s]."""
        raise NotImplementedError

    def sleep(self, duration_s: float) -> None:
        """Block (or simulate blocking) for ``duration_s`` seconds."""
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock implementation over :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, duration_s: float) -> None:
        if duration_s > 0.0:
            time.sleep(duration_s)


class SimulatedClock(Clock):
    """A clock that only moves when told to — deterministic by design.

    ``sleep`` and ``advance`` both move simulated time forward; nothing
    else does.  The service layer charges every measurement's modelled
    latency to the clock via :meth:`advance`, so timeouts, deadlines and
    breaker cool-downs all unfold on one reproducible timeline.
    """

    def __init__(self, start_s: float = 0.0):
        self._now = float(start_s)

    def now(self) -> float:
        return self._now

    def sleep(self, duration_s: float) -> None:
        self.advance(duration_s)

    def advance(self, duration_s: float) -> None:
        if duration_s < 0.0:
            raise ConfigurationError("cannot advance a clock backwards")
        self._now += duration_s


__all__ = ["Clock", "SimulatedClock", "SystemClock"]
