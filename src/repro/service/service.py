"""The resilient heading service: N replicas, one trustworthy answer.

:class:`HeadingService` fronts a bulkhead pool of independently-seeded
:class:`~repro.core.compass.IntegratedCompass` replicas and turns
per-replica failures into request-level resilience:

* **deadline + attempt timeout** — every request carries a deadline;
  every attempt a timeout.  A slow replica (grey failure) is abandoned
  at the timeout and charged to its breaker like any other failure.
* **bounded retries with backoff** — failed attempts retry up to
  ``max_attempts_per_replica`` times, sleeping a decorrelated-jitter
  backoff delay in between (deterministic via the injected clock/RNG).
* **per-replica circuit breakers** — consecutive failures eject a
  replica from the pool; a half-open probe readmits it once it proves
  healthy again.
* **K-of-N voting** — surviving healthy headings are voted on the
  circle (median/MAD outlier rejection); the verdict on the response
  says exactly how much trust the answer deserves.

Verdict semantics (:class:`ServiceVerdict`):

``AUTHORITATIVE``
    Every replica in the pool contributed a first-class healthy heading
    and the vote was unanimous (no outlier rejected).
``QUORUM_DEGRADED``
    A quorum answered, but something was lost on the way: a replica
    ejected, retried, timed out, voted out as an outlier, or a
    health-degraded measurement had to be counted.
``FAILED``
    No quorum — the request raises :class:`~repro.errors.QuorumError`
    (or :class:`~repro.errors.CircuitOpenError` when every breaker was
    open), so a failure can never be mistaken for a heading.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.compass import CompassConfig
from ..core.health import HealthConfig
from ..core.heading import HeadingMeasurement
from ..errors import (
    CircuitOpenError,
    ConfigurationError,
    QuorumError,
    ReproError,
)
from ..observe import (
    ATTEMPT_BUCKETS,
    DISSENT_BUCKETS_DEG,
    LATENCY_BUCKETS_S,
    M_BREAKER_STATE,
    M_BREAKER_TRANSITIONS,
    M_SERVICE_ATTEMPTS,
    M_SERVICE_ATTEMPTS_PER_REQUEST,
    M_SERVICE_LATENCY,
    M_SERVICE_REQUESTS,
    M_VOTE_DISSENT,
    Observability,
    build_observer,
)
from ..observe.trace import STAGE_ATTEMPT, STAGE_REQUEST
from .backoff import BackoffPolicy, BackoffSchedule
from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .clock import Clock, SimulatedClock
from .replica import CompassReplica
from .voting import VoteResult, vote_headings


class ServiceVerdict(enum.Enum):
    """Trust label attached to every service response."""

    AUTHORITATIVE = "authoritative"
    QUORUM_DEGRADED = "quorum-degraded"
    FAILED = "failed"


@dataclass(frozen=True)
class ServiceConfig:
    """Everything configurable about the heading service.

    Attributes
    ----------
    replicas:
        Pool size N.
    quorum:
        Minimum vote-eligible headings K required to answer at all.
    deadline_s:
        Per-request wall budget on the service clock [s].
    attempt_timeout_s:
        Per-attempt reply budget [s]; slower replies are abandoned.
    max_attempts_per_replica:
        Attempt budget per replica per request (first try + retries).
    backoff, breaker:
        Retry-delay and circuit-breaker policies.
    vote_outlier_deg, vote_mad_scale:
        Outlier-rejection floor and MAD multiplier of the vote.
    seed:
        Root seed; replica noise, latency jitter and backoff jitter are
        all spawned from it, so a service run is reproducible.
    compass:
        Base compass configuration; each replica gets it re-seeded.
        The default enables *strict* health supervision — replicas fail
        loudly and resilience lives at the service layer, not inside
        the instrument.
    observe:
        Service-level observability; enabled it carries breaker states,
        retry counts, vote dissent and latency, plus every replica's
        measurement spans/metrics merged into one registry.
    """

    replicas: int = 3
    quorum: int = 2
    deadline_s: float = 0.5
    attempt_timeout_s: float = 0.02
    max_attempts_per_replica: int = 3
    backoff: BackoffPolicy = BackoffPolicy()
    breaker: BreakerConfig = BreakerConfig()
    vote_outlier_deg: float = 5.0
    vote_mad_scale: float = 3.0
    seed: int = 0
    compass: CompassConfig = CompassConfig(health=HealthConfig(enabled=True))
    observe: Observability = Observability()

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigurationError("service needs at least one replica")
        if not 1 <= self.quorum <= self.replicas:
            raise ConfigurationError(
                f"quorum {self.quorum} must be in 1..{self.replicas}"
            )
        if self.deadline_s <= 0.0 or self.attempt_timeout_s <= 0.0:
            raise ConfigurationError("deadline and timeout must be positive")
        if self.max_attempts_per_replica < 1:
            raise ConfigurationError("need at least one attempt per replica")


@dataclass(frozen=True)
class AttemptRecord:
    """One replica attempt within one request."""

    replica: str
    attempt: int
    outcome: str  # "ok" | "degraded" | "fault" | "timeout" | "breaker-open"
    latency_s: float
    detail: str = ""


@dataclass(frozen=True)
class ServiceResponse:
    """One served heading with its full resilience provenance."""

    heading_deg: float
    verdict: ServiceVerdict
    field_estimate_a_per_m: float
    votes: Tuple[float, ...]
    vote: VoteResult
    attempts: Tuple[AttemptRecord, ...]
    elapsed_s: float
    flags: Tuple[str, ...] = ()

    @property
    def attempt_count(self) -> int:
        return len(self.attempts)

    @property
    def authoritative(self) -> bool:
        return self.verdict is ServiceVerdict.AUTHORITATIVE


@dataclass
class _Collected:
    """Per-replica request state while votes are being gathered."""

    healthy: Optional[HeadingMeasurement] = None
    degraded: Optional[HeadingMeasurement] = None
    attempts: int = 0
    exhausted: bool = False
    flags: List[str] = field(default_factory=list)


class HeadingService:
    """Replicated, breaker-guarded, vote-checked heading requests."""

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        clock: Optional[Clock] = None,
    ):
        self.config = config
        self.clock = clock if clock is not None else SimulatedClock()
        self.observer = build_observer(config.observe)
        root = np.random.SeedSequence(config.seed)
        noise_seeds = root.spawn(config.replicas)
        latency_streams = root.spawn(config.replicas)
        self._backoff_rng = np.random.default_rng(root.spawn(1)[0])
        self.replicas: List[CompassReplica] = []
        for index in range(config.replicas):
            name = f"replica-{index}"
            breaker = CircuitBreaker(
                config.breaker,
                self.clock,
                on_transition=self._transition_hook(name),
            )
            replica = CompassReplica(
                index,
                config.compass,
                breaker,
                np.random.default_rng(latency_streams[index]),
                noise_seed=int(noise_seeds[index].generate_state(1)[0]),
            )
            replica.attach_observer(self.observer)
            self.replicas.append(replica)

    # -- observability ---------------------------------------------------------

    def _transition_hook(self, replica_name: str):
        def hook(from_state: BreakerState, to_state: BreakerState) -> None:
            metrics = self.observer.metrics
            if metrics is None:
                return
            metrics.counter(
                M_BREAKER_TRANSITIONS,
                "circuit-breaker state transitions, by replica and new state",
                ("replica", "to"),
            ).inc(replica=replica_name, to=to_state.value)
            metrics.gauge(
                M_BREAKER_STATE,
                "breaker state per replica (0 closed, 1 open, 2 half-open)",
                ("replica",),
            ).set(to_state.gauge_value, replica=replica_name)

        return hook

    def breaker_states(self) -> Dict[str, str]:
        """Current breaker state per replica (resolves cool-downs)."""
        return {
            replica.name: replica.breaker.state.value
            for replica in self.replicas
        }

    def _count_attempt(self, record: AttemptRecord) -> None:
        metrics = self.observer.metrics
        if metrics is None:
            return
        metrics.counter(
            M_SERVICE_ATTEMPTS,
            "service measurement attempts, by replica and outcome",
            ("replica", "outcome"),
        ).inc(replica=record.replica, outcome=record.outcome)

    def _count_request(
        self,
        verdict: ServiceVerdict,
        attempts: int,
        elapsed_s: float,
        dissent_deg: Optional[float],
    ) -> None:
        metrics = self.observer.metrics
        if metrics is None:
            return
        metrics.counter(
            M_SERVICE_REQUESTS,
            "service requests, by verdict",
            ("verdict",),
        ).inc(verdict=verdict.value)
        metrics.histogram(
            M_SERVICE_ATTEMPTS_PER_REQUEST,
            "replica attempts spent per request",
            (),
            buckets=ATTEMPT_BUCKETS,
        ).observe(float(attempts))
        metrics.histogram(
            M_SERVICE_LATENCY,
            "request latency on the service clock [s]",
            (),
            buckets=LATENCY_BUCKETS_S,
        ).observe(elapsed_s)
        if dissent_deg is not None:
            metrics.histogram(
                M_VOTE_DISSENT,
                "max inlier deviation from the voted heading [deg]",
                (),
                buckets=DISSENT_BUCKETS_DEG,
            ).observe(dissent_deg)

    # -- the bulk scene path ---------------------------------------------------

    def scene_for(
        self,
        headings_deg,
        field_magnitude_t: float = 50.0e-6,
    ):
        """A :class:`~repro.batch.BatchScene` for this service's pool.

        Rendered through replica 0's sensor pair; every replica shares
        the same compass configuration (only the noise seed differs),
        so the heading → axis-field conversion is bit-identical across
        the pool.
        """
        from ..batch import BatchScene

        return BatchScene.from_headings(
            self.replicas[0].compass.sensors, headings_deg, field_magnitude_t
        )

    def measure_scene(self, scene) -> List[ServiceResponse]:
        """Serve one frozen scene through every replica's batch engine.

        The bulk counterpart of :meth:`measure_heading`: each replica
        measures all rows in one batched pass (bit-identical per row to
        its scalar measurement), then each row is voted exactly like a
        scalar request.  Replicas run in parallel, so the scene costs
        ``max`` rather than ``sum`` of the per-replica bulk latencies.

        Resilience semantics are the scalar path's without retries: a
        replica that raises during its batch is excluded from every
        row's vote (its failure is one shared front-end, not one row),
        a health-degraded row counts as a second-class vote, and a row
        with fewer than ``quorum`` vote-eligible headings raises
        :class:`~repro.errors.QuorumError`.
        """
        cfg = self.config
        n_rows = len(scene)
        if n_rows == 0:
            return []
        start = self.clock.now()
        per_replica: List[Optional[List[HeadingMeasurement]]] = []
        attempts: List[AttemptRecord] = []
        bulk_latency = 0.0
        with self.observer.span(
            "service.scene", rows=n_rows, replicas=len(self.replicas)
        ):
            for replica in self.replicas:
                latency = replica.draw_latency() * n_rows
                outcome = "ok"
                detail = ""
                try:
                    rows = replica.batch().measure_scene(scene)
                except ReproError as error:
                    rows = None
                    outcome = "fault"
                    detail = f"{type(error).__name__}: {error}"
                    replica.breaker.record_failure()
                else:
                    replica.breaker.record_success()
                per_replica.append(rows)
                bulk_latency = max(bulk_latency, latency)
                record = AttemptRecord(replica.name, 1, outcome, latency, detail)
                attempts.append(record)
                self._count_attempt(record)
            self.clock.sleep(bulk_latency)
        elapsed = self.clock.now() - start
        responses: List[ServiceResponse] = []
        for row in range(n_rows):
            responses.append(
                self._conclude_scene_row(
                    row, per_replica, attempts, elapsed / n_rows
                )
            )
        return responses

    def _conclude_scene_row(
        self,
        row: int,
        per_replica: List[Optional[List[HeadingMeasurement]]],
        attempts: List[AttemptRecord],
        elapsed_s: float,
    ) -> ServiceResponse:
        """Vote one scene row with the scalar path's verdict rules."""
        cfg = self.config
        healthy: List[Tuple[str, HeadingMeasurement]] = []
        degraded: List[Tuple[str, HeadingMeasurement]] = []
        flags: List[str] = []
        for replica, rows in zip(self.replicas, per_replica):
            if rows is None:
                flags.append(f"{replica.name}: batch-fault")
                continue
            measurement = rows[row]
            if measurement.degraded:
                detail = ",".join(measurement.health.flags)
                flags.append(f"{replica.name}: degraded: {detail}")
                degraded.append((replica.name, measurement))
            else:
                healthy.append((replica.name, measurement))
        second_class = False
        voters = list(healthy)
        if len(healthy) < cfg.quorum and degraded:
            voters = healthy + degraded
            second_class = True
        if len(voters) < cfg.quorum:
            raise QuorumError(
                f"scene row {row}: collected {len(voters)} vote-eligible "
                f"headings, quorum needs {cfg.quorum} "
                f"(healthy {len(healthy)}, degraded {len(degraded)})"
            )
        vote = vote_headings(
            [m.heading_deg for _, m in voters],
            outlier_threshold_deg=cfg.vote_outlier_deg,
            mad_scale=cfg.vote_mad_scale,
        )
        if len(vote.inliers) < cfg.quorum:
            raise QuorumError(
                f"scene row {row}: only {len(vote.inliers)} of "
                f"{len(voters)} headings agree within "
                f"{vote.threshold_deg:.2f} deg; quorum needs {cfg.quorum}"
            )
        for index in vote.outliers:
            flags.append(
                f"{voters[index][0]}: vote-outlier "
                f"({voters[index][1].heading_deg:.2f} deg rejected)"
            )
        clean_sweep = (
            len(healthy) == len(self.replicas)
            and vote.unanimous
            and not second_class
        )
        verdict = (
            ServiceVerdict.AUTHORITATIVE
            if clean_sweep
            else ServiceVerdict.QUORUM_DEGRADED
        )
        field_estimates = [
            voters[i][1].field_estimate_a_per_m for i in vote.inliers
        ]
        field_estimate = sorted(field_estimates)[len(field_estimates) // 2]
        self._count_request(
            verdict, len(self.replicas), elapsed_s, vote.dissent_deg
        )
        return ServiceResponse(
            heading_deg=vote.heading_deg,
            verdict=verdict,
            field_estimate_a_per_m=field_estimate,
            votes=tuple(m.heading_deg for _, m in voters),
            vote=vote,
            attempts=tuple(attempts),
            elapsed_s=elapsed_s,
            flags=tuple(flags),
        )

    # -- the request loop ------------------------------------------------------

    def measure_heading(
        self,
        true_heading_deg: float,
        field_magnitude_t: float = 50.0e-6,
        *,
        max_replicas: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> ServiceResponse:
        """Serve one heading request through the replica pool.

        ``max_replicas`` consults only the first ``max_replicas``
        replicas (clamped to ``quorum..N``) — the fleet's brownout
        ladder uses it to step the vote pool down from N toward K under
        sustained overload.  A stepped-down request can never come back
        ``AUTHORITATIVE``: the clean-sweep test requires every replica
        in the pool, so shedding confirmation replicas always shows up
        in the verdict.  ``deadline_s`` overrides the configured
        per-request deadline for this request only.

        Raises :class:`~repro.errors.CircuitOpenError` when every
        breaker refuses the request outright, and
        :class:`~repro.errors.QuorumError` when retries, timeouts and
        the deadline leave fewer than ``quorum`` vote-eligible
        headings.
        """
        cfg = self.config
        if max_replicas is None:
            pool = self.replicas
        else:
            limit = max(cfg.quorum, min(max_replicas, len(self.replicas)))
            pool = self.replicas[:limit]
        budget = cfg.deadline_s if deadline_s is None else deadline_s
        if budget <= 0.0:
            raise ConfigurationError("request deadline must be positive")
        start = self.clock.now()
        deadline = start + budget
        state = {replica.name: _Collected() for replica in pool}
        attempts: List[AttemptRecord] = []
        breaker_refusals = 0

        with self.observer.span(
            STAGE_REQUEST, true_heading_deg=true_heading_deg
        ) as root:
            try:
                response = self._drive_request(
                    true_heading_deg,
                    field_magnitude_t,
                    pool,
                    state,
                    attempts,
                    deadline,
                    start,
                )
            except ReproError as error:
                breaker_refusals = sum(
                    1 for a in attempts if a.outcome == "breaker-open"
                )
                root.set(verdict=ServiceVerdict.FAILED.value, error=str(error))
                self._count_request(
                    ServiceVerdict.FAILED,
                    len(attempts) - breaker_refusals,
                    self.clock.now() - start,
                    None,
                )
                raise
            root.set(
                verdict=response.verdict.value,
                heading_deg=response.heading_deg,
                attempts=response.attempt_count,
            )
        return response

    def _drive_request(
        self,
        true_heading_deg: float,
        field_magnitude_t: float,
        pool: List[CompassReplica],
        state: Dict[str, _Collected],
        attempts: List[AttemptRecord],
        deadline: float,
        start: float,
    ) -> ServiceResponse:
        cfg = self.config
        backoff = BackoffSchedule(cfg.backoff, self._backoff_rng)

        # Round-robin over replicas still owing a healthy vote, retrying
        # with backoff until every replica has answered, exhausted its
        # attempt budget, or the deadline arrives.
        while True:
            pending = [
                r
                for r in pool
                if state[r.name].healthy is None
                and not state[r.name].exhausted
            ]
            if not pending:
                break
            if self.clock.now() >= deadline:
                for replica in pending:
                    state[replica.name].flags.append("deadline-exhausted")
                break
            made_attempt = False
            refused_this_round = 0
            for replica in pending:
                if self.clock.now() >= deadline:
                    break
                slot = state[replica.name]
                if not replica.breaker.allow():
                    refused_this_round += 1
                    if not any(
                        a.replica == replica.name
                        and a.outcome == "breaker-open"
                        for a in attempts
                    ):
                        record = AttemptRecord(
                            replica.name, slot.attempts, "breaker-open", 0.0
                        )
                        attempts.append(record)
                        self._count_attempt(record)
                        slot.flags.append("breaker-open")
                    continue
                made_attempt = True
                slot.attempts += 1
                self._attempt(
                    replica,
                    slot,
                    true_heading_deg,
                    field_magnitude_t,
                    attempts,
                    deadline,
                )
                if (
                    slot.healthy is None
                    and slot.attempts >= cfg.max_attempts_per_replica
                ):
                    slot.exhausted = True
            if not made_attempt:
                if refused_this_round == len(pending) and all(
                    state[r.name].healthy is None for r in pool
                ):
                    # Nothing answered yet and every live breaker is
                    # open: sleeping until a cool-down expires is the
                    # only move left.
                    self._await_half_open(pool, deadline)
                    if self.clock.now() >= deadline:
                        break
                else:
                    break
            elif any(
                state[r.name].healthy is None and not state[r.name].exhausted
                for r in pool
            ):
                # At least one replica still owes a retry: back off
                # before the next round so a transient fault gets air.
                delay = backoff.next_delay()
                self.clock.sleep(min(delay, max(0.0, deadline - self.clock.now())))

        return self._conclude(pool, state, attempts, start)

    def _attempt(
        self,
        replica: CompassReplica,
        slot: _Collected,
        true_heading_deg: float,
        field_magnitude_t: float,
        attempts: List[AttemptRecord],
        deadline: float,
    ) -> None:
        cfg = self.config
        latency = replica.draw_latency()
        # The reply budget is the attempt timeout, further truncated by
        # the request deadline: a reply the deadline would have cut off
        # is as lost as a timed-out one.
        budget = min(
            cfg.attempt_timeout_s, max(0.0, deadline - self.clock.now())
        )
        charged = min(latency, budget)
        with self.observer.span(
            f"{STAGE_ATTEMPT}.{replica.index}.{slot.attempts}",
            replica=replica.name,
        ) as span:
            outcome = "ok"
            detail = ""
            measurement: Optional[HeadingMeasurement] = None
            try:
                measurement = replica.measure(
                    true_heading_deg, field_magnitude_t
                )
            except ReproError as error:
                outcome = "fault"
                detail = f"{type(error).__name__}: {error}"
            self.clock.sleep(charged)
            if outcome == "ok" and latency > budget:
                outcome = "timeout"
                detail = (
                    f"reply took {latency * 1e3:.1f} ms, budget "
                    f"{budget * 1e3:.1f} ms"
                )
                measurement = None
            if measurement is not None and measurement.degraded:
                outcome = "degraded"
                detail = ",".join(measurement.health.flags)
                slot.degraded = measurement
            elif measurement is not None:
                slot.healthy = measurement
            span.set(outcome=outcome)
            if outcome in ("fault", "timeout"):
                replica.breaker.record_failure()
                slot.flags.append(f"{outcome}: {detail}")
            elif outcome == "degraded":
                # A health-degraded reply is a breaker failure (the
                # check outcome drives ejection) but stays available as
                # a second-class vote.
                replica.breaker.record_failure()
                slot.flags.append(f"degraded: {detail}")
            else:
                replica.breaker.record_success()
        record = AttemptRecord(
            replica.name, slot.attempts, outcome, charged, detail
        )
        attempts.append(record)
        self._count_attempt(record)

    def _await_half_open(
        self, pool: List[CompassReplica], deadline: float
    ) -> None:
        """Sleep until the earliest breaker cool-down expiry (or deadline)."""
        expiries = [
            replica.breaker.open_until
            for replica in pool
            if replica.breaker.state is BreakerState.OPEN
        ]
        if not expiries:
            return
        wake = min(min(expiries), deadline)
        gap = wake - self.clock.now()
        if gap > 0.0:
            self.clock.sleep(gap)

    # -- verdicts --------------------------------------------------------------

    def _conclude(
        self,
        pool: List[CompassReplica],
        state: Dict[str, _Collected],
        attempts: List[AttemptRecord],
        start: float,
    ) -> ServiceResponse:
        cfg = self.config
        real_attempts = [a for a in attempts if a.outcome != "breaker-open"]
        healthy = [
            (r.name, state[r.name].healthy)
            for r in pool
            if state[r.name].healthy is not None
        ]
        degraded = [
            (r.name, state[r.name].degraded)
            for r in pool
            if state[r.name].healthy is None
            and state[r.name].degraded is not None
        ]
        flags: List[str] = []
        for replica in pool:
            flags.extend(
                f"{replica.name}: {flag}" for flag in state[replica.name].flags
            )
        if len(pool) < len(self.replicas):
            # A stepped-down vote pool is visible provenance: the
            # clean-sweep test below compares against the *full* pool,
            # so this request can never be labelled authoritative.
            flags.append(
                f"quorum-stepdown: consulted {len(pool)} of "
                f"{len(self.replicas)} replicas"
            )

        # Healthy headings alone when they reach quorum; health-degraded
        # ones only ever top up a short pool, and their use always
        # demotes the verdict.
        second_class = False
        voters = list(healthy)
        if len(healthy) < cfg.quorum and degraded:
            voters = healthy + degraded
            second_class = True
        if len(voters) < cfg.quorum:
            if not real_attempts and attempts:
                error: ReproError = CircuitOpenError(
                    "every replica's circuit breaker is open; request "
                    "fast-failed without a measurement"
                )
            else:
                error = QuorumError(
                    f"collected {len(voters)} vote-eligible headings, "
                    f"quorum needs {cfg.quorum} "
                    f"(healthy {len(healthy)}, degraded {len(degraded)}, "
                    f"attempts {len(real_attempts)})"
                )
            raise error

        vote = vote_headings(
            [m.heading_deg for _, m in voters],
            outlier_threshold_deg=cfg.vote_outlier_deg,
            mad_scale=cfg.vote_mad_scale,
        )
        if len(vote.inliers) < cfg.quorum:
            raise QuorumError(
                f"only {len(vote.inliers)} of {len(voters)} headings agree "
                f"within {vote.threshold_deg:.2f} deg; quorum needs "
                f"{cfg.quorum}"
            )
        for index in vote.outliers:
            flags.append(
                f"{voters[index][0]}: vote-outlier "
                f"({voters[index][1].heading_deg:.2f} deg rejected)"
            )

        clean_sweep = (
            len(healthy) == len(self.replicas)
            and vote.unanimous
            and not second_class
            and len(real_attempts) == len(self.replicas)
            and all(a.outcome == "ok" for a in real_attempts)
        )
        verdict = (
            ServiceVerdict.AUTHORITATIVE
            if clean_sweep
            else ServiceVerdict.QUORUM_DEGRADED
        )
        field_estimates = [
            voters[i][1].field_estimate_a_per_m for i in vote.inliers
        ]
        field_estimate = sorted(field_estimates)[len(field_estimates) // 2]
        elapsed = self.clock.now() - start
        self._count_request(
            verdict, len(real_attempts), elapsed, vote.dissent_deg
        )
        return ServiceResponse(
            heading_deg=vote.heading_deg,
            verdict=verdict,
            field_estimate_a_per_m=field_estimate,
            votes=tuple(m.heading_deg for _, m in voters),
            vote=vote,
            attempts=tuple(attempts),
            elapsed_s=elapsed,
            flags=tuple(flags),
        )


__all__ = [
    "AttemptRecord",
    "HeadingService",
    "ServiceConfig",
    "ServiceResponse",
    "ServiceVerdict",
]
