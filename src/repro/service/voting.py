"""K-of-N heading voting on the circle.

Headings are angles, so naive statistics lie: the arithmetic median of
(359°, 1°, 3°) is 3°, but the *circular* median is 1°.  Every statistic
here therefore works on unit vectors / circular distances:

* :func:`circular_mean_deg` — the direction of the vector sum;
* :func:`circular_median_deg` — the sample heading minimising the sum
  of absolute circular distances to the others (the geometric median of
  the sample restricted to sample points — exact for the small N a
  replica pool has);
* :func:`circular_mad_deg` — median absolute circular deviation, the
  robust spread estimate behind outlier rejection;
* :func:`vote_headings` — the full vote: median → MAD-scaled outlier
  rejection → circular mean of the inliers, with the maximum inlier
  deviation reported as *dissent*.

The median/MAD combination keeps its breakdown point at ⌊(N−1)/2⌋: with
any minority of replicas arbitrarily wrong, the vote lands on the honest
majority — exactly the redundancy argument of the magnetoresistor-array
tracker in PAPERS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from ..units import angular_difference_deg, wrap_degrees


def circular_mean_deg(headings_deg: Sequence[float]) -> float:
    """Direction of the unit-vector sum [deg in [0, 360)]."""
    if not headings_deg:
        raise ConfigurationError("cannot average zero headings")
    s = sum(math.sin(math.radians(h)) for h in headings_deg)
    c = sum(math.cos(math.radians(h)) for h in headings_deg)
    if math.hypot(s, c) < 1e-12:
        raise ConfigurationError(
            "headings are uniformly opposed; circular mean undefined"
        )
    return wrap_degrees(math.degrees(math.atan2(s, c)))


def circular_median_deg(headings_deg: Sequence[float]) -> float:
    """Sample heading minimising total circular distance to the rest.

    Ties break toward the earliest sample, keeping the vote
    deterministic for a fixed reply order.
    """
    if not headings_deg:
        raise ConfigurationError("cannot take the median of zero headings")
    best_heading = headings_deg[0]
    best_cost = math.inf
    for candidate in headings_deg:
        cost = sum(
            abs(angular_difference_deg(candidate, other))
            for other in headings_deg
        )
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_heading = candidate
    return wrap_degrees(best_heading)


def circular_mad_deg(
    headings_deg: Sequence[float], center_deg: float
) -> float:
    """Median absolute circular deviation from ``center_deg`` [deg]."""
    if not headings_deg:
        raise ConfigurationError("cannot take the MAD of zero headings")
    deviations = sorted(
        abs(angular_difference_deg(h, center_deg)) for h in headings_deg
    )
    n = len(deviations)
    middle = n // 2
    if n % 2 == 1:
        return deviations[middle]
    return 0.5 * (deviations[middle - 1] + deviations[middle])


@dataclass(frozen=True)
class VoteResult:
    """Outcome of one K-of-N heading vote.

    Attributes
    ----------
    heading_deg:
        Circular mean of the inlier headings, [0, 360).
    inliers, outliers:
        Indices into the submitted heading sequence.
    dissent_deg:
        Maximum circular deviation of any inlier from the voted
        heading — the honest disagreement left after outlier rejection.
    mad_deg:
        The MAD spread the rejection threshold was derived from.
    threshold_deg:
        The deviation beyond which a vote was declared an outlier.
    """

    heading_deg: float
    inliers: Tuple[int, ...]
    outliers: Tuple[int, ...]
    dissent_deg: float
    mad_deg: float
    threshold_deg: float

    @property
    def unanimous(self) -> bool:
        return not self.outliers


def vote_headings(
    headings_deg: Sequence[float],
    outlier_threshold_deg: float = 5.0,
    mad_scale: float = 3.0,
) -> VoteResult:
    """Robust vote over replica headings.

    The rejection threshold is ``max(outlier_threshold_deg, mad_scale ×
    MAD)``: the floor keeps counter-quantisation disagreement (a few
    tenths of a degree) from ever ejecting an honest replica, the MAD
    term lets the threshold widen when the whole pool legitimately
    disagrees (e.g. a weak polar field).
    """
    if not headings_deg:
        raise ConfigurationError("cannot vote over zero headings")
    if outlier_threshold_deg <= 0.0:
        raise ConfigurationError("outlier threshold must be positive")
    if mad_scale < 0.0:
        raise ConfigurationError("MAD scale must be >= 0")
    median = circular_median_deg(headings_deg)
    mad = circular_mad_deg(headings_deg, median)
    threshold = max(outlier_threshold_deg, mad_scale * mad)
    inliers: List[int] = []
    outliers: List[int] = []
    for index, heading in enumerate(headings_deg):
        if abs(angular_difference_deg(heading, median)) <= threshold:
            inliers.append(index)
        else:
            outliers.append(index)
    voted = circular_mean_deg([headings_deg[i] for i in inliers])
    dissent = max(
        abs(angular_difference_deg(headings_deg[i], voted)) for i in inliers
    )
    return VoteResult(
        heading_deg=voted,
        inliers=tuple(inliers),
        outliers=tuple(outliers),
        dissent_deg=dissent,
        mad_deg=mad,
        threshold_deg=threshold,
    )


__all__ = [
    "VoteResult",
    "circular_mad_deg",
    "circular_mean_deg",
    "circular_median_deg",
    "vote_headings",
]
