"""The sharded heading fleet: admission, coalescing, brownout, dispatch.

:class:`HeadingFleet` is the async facade in front of ``shards``
independent :class:`~repro.service.HeadingService` workers.  One
request flows through:

1. **brownout sense** — fold queue occupancy into the degradation
   controller (:class:`~repro.fleet.config.BrownoutController`);
2. **token bucket** — shed immediately (``reason="rate-limit"``) when
   the admission rate is exhausted;
3. **quantize** — snap (heading, field) onto the measurement grid and
   derive the scene key (:mod:`repro.fleet.cache`); the backend measures
   *at the snapped point*, which is what makes cached, coalesced and
   fresh answers bit-identical;
4. **cache** — an authoritative answer for this scene returns without
   touching a shard (optionally re-verified bit-exactly by the
   conformance guard every ``guard_every`` hits);
5. **coalesce** — an in-flight measurement of the same scene adopts the
   leader's future instead of enqueueing a duplicate;
6. **shard queue** — consistent-hash on the caller's key, then offer to
   that shard's bounded queue: dead work is evicted
   (``reason="deadline"``) and a still-full queue sheds the newcomer
   (``reason="queue-full"``);
7. **dispatch** — the shard worker re-checks the deadline, steps the
   vote pool down to the quorum at brownout L2 (verdict degrades to
   ``QUORUM_DEGRADED`` — the step-down is never silent), runs the
   measurement on the shard's private clock and charges the elapsed
   service time back to the global timeline.

Every shed path raises :class:`~repro.errors.OverloadError` with its
rung's reason — overload is an explicit, typed outcome, never an
unbounded queue.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import DivergenceError, OverloadError, ReproError
from ..observe import (
    LATENCY_BUCKETS_S,
    M_FLEET_BROWNOUT,
    M_FLEET_BROWNOUT_SHIFTS,
    M_FLEET_COALESCE,
    M_FLEET_LATENCY,
    M_FLEET_QUEUE_DEPTH,
    M_FLEET_REQUESTS,
    M_FLEET_SHED,
    build_observer,
)
from ..observe.trace import (
    NULL_SPAN,
    STAGE_FLEET_DISPATCH,
    STAGE_FLEET_REQUEST,
)
from ..replay.format import config_fingerprint
from ..service import HeadingService
from ..service.clock import SimulatedClock
from ..service.service import ServiceVerdict
from .admission import QueueItem, TokenBucket
from .cache import (
    CacheEntry,
    HeadingCache,
    quantize_field,
    quantize_heading,
    scene_key,
)
from .config import BrownoutController, FleetConfig
from .hashing import HashRing
from .kernel import Kernel, Scheduler
from .shard import FleetShard

#: Worker-stop sentinel pushed through the shard queues by :meth:`stop`.
_STOP = object()

#: ``FleetResponse.source`` values.
SOURCE_MEASURED = "measured"
SOURCE_CACHE = "cache"
SOURCE_COALESCED = "coalesced"


@dataclass(frozen=True)
class FleetResponse:
    """One served fleet request with its provenance."""

    key: str
    scene: str
    heading_deg: float
    field_estimate_a_per_m: float
    verdict: str
    source: str  # measured | cache | coalesced
    shard: int
    latency_s: float
    brownout_level: int

    @property
    def authoritative(self) -> bool:
        return self.verdict == ServiceVerdict.AUTHORITATIVE.value


class HeadingFleet:
    """Async sharded facade over a pool of heading services."""

    def __init__(
        self,
        config: FleetConfig = FleetConfig(),
        scheduler: Optional[Scheduler] = None,
    ):
        self.config = config
        self.scheduler = scheduler if scheduler is not None else Kernel()
        self.observer = build_observer(config.observe)
        self.fingerprint = config_fingerprint(config.service.compass)
        root = np.random.SeedSequence(config.seed)
        shard_seeds = root.spawn(config.shards)
        self.shards: List[FleetShard] = [
            FleetShard(
                index,
                config,
                int(shard_seeds[index].generate_state(1)[0]),
                self.scheduler,
            )
            for index in range(config.shards)
        ]
        self.ring = HashRing(config.shards, config.vnodes)
        # The scheduler satisfies the bucket's clock surface (`now()`).
        self.bucket = TokenBucket(config.admission, self.scheduler)
        self.cache: Optional[HeadingCache] = (
            HeadingCache(config.cache_capacity) if config.cache_enabled else None
        )
        self._inflight: Dict[str, Any] = {}
        self.brownout = BrownoutController(
            config.brownout, start_s=self.scheduler.now()
        )
        self._reference: Optional[HeadingService] = None
        self._workers: List[Any] = []
        self._started = False
        self._obs_tick = 0
        self.served = 0
        self.failed = 0
        self.shed: Dict[str, int] = {
            "rate-limit": 0,
            "queue-full": 0,
            "deadline": 0,
        }
        self.guard_checks = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Spawn one worker task per shard (idempotent)."""
        if self._started:
            return
        self._started = True
        self._workers = [
            self.scheduler.spawn(
                self._serve_shard(shard), name=f"fleet-worker-{shard.index}"
            )
            for shard in self.shards
        ]

    async def stop(self) -> None:
        """Drain the shard queues, stop every worker, join them."""
        if not self._started:
            return
        for shard in self.shards:
            shard.queue.push_control(_STOP)
        for worker in self._workers:
            await worker.future
        self._workers = []
        self._started = False

    # -- observability helpers -------------------------------------------------

    def _sampled(self) -> bool:
        """Whether *optional* observability runs for this event.

        Brownout L1 is exactly this switch: counters stay exact, but
        spans, gauges and histograms drop to 1-in-``sample_every``.
        """
        if self.brownout.level == 0:
            return True
        self._obs_tick += 1
        return self._obs_tick % self.config.brownout.sample_every == 0

    def _sense_brownout(self) -> int:
        occupancy = sum(s.occupancy for s in self.shards) / len(self.shards)
        now = self.scheduler.now()
        before = self.brownout.level
        level = self.brownout.observe(occupancy, now)
        metrics = self.observer.metrics
        if metrics is not None:
            if level != before:
                metrics.counter(
                    M_FLEET_BROWNOUT_SHIFTS,
                    "brownout ladder transitions, by target level",
                    ("to",),
                ).inc(to=str(level))
            if self._sampled():
                metrics.gauge(
                    M_FLEET_BROWNOUT, "current brownout level (0..2)"
                ).set(float(level))
        return level

    def _count_request(self, outcome: str) -> None:
        metrics = self.observer.metrics
        if metrics is not None:
            metrics.counter(
                M_FLEET_REQUESTS, "fleet requests, by outcome", ("outcome",)
            ).inc(outcome=outcome)

    def _count_shed(self, reason: str) -> None:
        self.shed[reason] = self.shed.get(reason, 0) + 1
        self._count_request("shed")
        metrics = self.observer.metrics
        if metrics is not None:
            metrics.counter(
                M_FLEET_SHED, "requests shed, by overload reason", ("reason",)
            ).inc(reason=reason)

    def _count_coalesce(self, event: str) -> None:
        metrics = self.observer.metrics
        if metrics is not None:
            metrics.counter(
                M_FLEET_COALESCE,
                "cache/coalesce events on the scene-key path",
                ("event",),
            ).inc(event=event)

    def _note_served(self, source: str, latency_s: float, sampled: bool) -> None:
        self.served += 1
        self._count_request("served")
        metrics = self.observer.metrics
        if metrics is not None and sampled:
            metrics.histogram(
                M_FLEET_LATENCY,
                "end-to-end fleet latency [s], by response source",
                ("source",),
                buckets=LATENCY_BUCKETS_S,
            ).observe(latency_s, source=source)

    def _note_queue_depth(self, shard: FleetShard, sampled: bool) -> None:
        metrics = self.observer.metrics
        if metrics is not None and sampled:
            metrics.gauge(
                M_FLEET_QUEUE_DEPTH, "shard queue depth", ("shard",)
            ).set(float(shard.queue.depth), shard=shard.name)

    # -- the conformance guard -------------------------------------------------

    def _reference_service(self) -> HeadingService:
        """A clean, chaos-free service the guard measures against."""
        if self._reference is None:
            self._reference = HeadingService(
                dataclasses.replace(self.config.service, seed=self.config.seed),
                clock=SimulatedClock(),
            )
        return self._reference

    def _guard_entry(self, scene: str, entry: CacheEntry) -> None:
        """Re-measure every Nth cache hit; bit-exact or it's an error."""
        every = self.config.guard_every
        if every <= 0 or self.cache is None or self.cache.hits % every != 0:
            return
        fresh = self._reference_service().measure_heading(
            entry.heading_input_deg, entry.field_input_t
        )
        self.guard_checks += 1
        if (
            fresh.heading_deg != entry.heading_deg
            or fresh.field_estimate_a_per_m != entry.field_estimate_a_per_m
        ):
            raise DivergenceError(
                f"conformance guard: cached response for scene {scene!r} "
                f"diverged from a fresh measurement "
                f"(cached heading {entry.heading_deg!r}, "
                f"fresh {fresh.heading_deg!r})"
            )

    # -- scene prewarm ---------------------------------------------------------

    def prewarm(self, requests) -> int:
        """Bulk-fill the scene cache through the batch backend.

        ``requests`` is an iterable of ``(true_heading_deg,
        field_magnitude_t)`` pairs.  Each pair is snapped onto the
        measurement grid exactly like :meth:`submit`, deduplicated per
        scene key, rendered into one :class:`~repro.batch.BatchScene`,
        and measured through the reference service's per-replica batch
        engines (:meth:`~repro.service.HeadingService.measure_scene`).
        Rows that come back ``AUTHORITATIVE`` are inserted into the
        cache; because the batch path is bit-identical to the scalar
        one, prewarmed entries pass the conformance guard's bit-exact
        re-measurement like any organically cached answer.

        Returns the number of cache entries written.  A no-op (0) when
        the cache is disabled.
        """
        if self.cache is None:
            return 0
        cfg = self.config
        seen = set()
        scenes: List[str] = []
        snapped: List[tuple] = []
        for true_heading_deg, field_magnitude_t in requests:
            heading_bin, s_heading = quantize_heading(
                true_heading_deg, cfg.heading_quantum_deg
            )
            field_bin, s_field = quantize_field(
                field_magnitude_t, cfg.field_quantum_ut
            )
            scene = scene_key(self.fingerprint, heading_bin, field_bin)
            if scene in seen:
                continue
            seen.add(scene)
            scenes.append(scene)
            snapped.append((s_heading, s_field))
        if not snapped:
            return 0
        from ..batch import BatchScene

        service = self._reference_service()
        record = BatchScene.from_pairs(
            service.replicas[0].compass.sensors, snapped
        )
        responses = service.measure_scene(record)
        inserted = 0
        for scene, (s_heading, s_field), response in zip(
            scenes, snapped, responses
        ):
            if response.verdict is not ServiceVerdict.AUTHORITATIVE:
                continue
            self.cache.put(
                scene,
                CacheEntry(
                    heading_deg=response.heading_deg,
                    field_estimate_a_per_m=response.field_estimate_a_per_m,
                    verdict=response.verdict.value,
                    heading_input_deg=s_heading,
                    field_input_t=s_field,
                ),
            )
            inserted += 1
        return inserted

    # -- the request path ------------------------------------------------------

    async def submit(
        self,
        key: str,
        true_heading_deg: float,
        field_magnitude_t: float = 50.0e-6,
        *,
        deadline_s: Optional[float] = None,
    ) -> FleetResponse:
        """Serve one heading request through the fleet.

        Raises :class:`~repro.errors.OverloadError` when the request is
        shed (``reason`` says which rung), and propagates the service's
        own :class:`~repro.errors.ReproError` subclasses when the
        backing shard fails the measurement.
        """
        cfg = self.config
        scheduler = self.scheduler
        arrival = scheduler.now()
        level = self._sense_brownout()
        sampled = self._sampled()
        span = (
            self.observer.span(STAGE_FLEET_REQUEST, key=key)
            if sampled
            else NULL_SPAN
        )
        with span as root:
            if not self.bucket.try_admit():
                self._count_shed("rate-limit")
                root.set(outcome="shed", reason="rate-limit")
                raise OverloadError(
                    f"admission rate exceeded; request {key!r} shed",
                    reason="rate-limit",
                )
            heading_bin, snapped_heading = quantize_heading(
                true_heading_deg, cfg.heading_quantum_deg
            )
            field_bin, snapped_field = quantize_field(
                field_magnitude_t, cfg.field_quantum_ut
            )
            scene = scene_key(self.fingerprint, heading_bin, field_bin)
            shard_index = self.ring.lookup(key)
            shard = self.shards[shard_index]
            root.set(scene=scene, shard=shard.name)

            if self.cache is not None:
                entry = self.cache.get(scene)
                if entry is not None:
                    self._count_coalesce("cache-hit")
                    self._guard_entry(scene, entry)
                    latency = scheduler.now() - arrival
                    self._note_served(SOURCE_CACHE, latency, sampled)
                    root.set(outcome="served", source=SOURCE_CACHE)
                    return self._response(
                        key, scene, entry, SOURCE_CACHE, shard_index,
                        latency, level,
                    )
                self._count_coalesce("cache-miss")

            leader_future = None
            if cfg.coalesce_enabled:
                pending = self._inflight.get(scene)
                if pending is not None:
                    self._count_coalesce("follower")
                    entry = await self._join_leader(pending, root)
                    latency = scheduler.now() - arrival
                    self._note_served(SOURCE_COALESCED, latency, sampled)
                    root.set(outcome="served", source=SOURCE_COALESCED)
                    return self._response(
                        key, scene, entry, SOURCE_COALESCED, shard_index,
                        latency, self.brownout.level,
                    )
                leader_future = scheduler.create_future()
                self._inflight[scene] = leader_future
                self._count_coalesce("leader")

            deadline = arrival + (
                cfg.deadline_s if deadline_s is None else deadline_s
            )
            item = QueueItem(
                key=key,
                heading_deg=snapped_heading,
                field_magnitude_t=snapped_field,
                deadline=deadline,
                enqueued_at=arrival,
                future=scheduler.create_future(),
            )
            admitted, evicted = shard.queue.offer(
                item, scheduler.now(), shard.est_service_s
            )
            for victim in evicted:
                victim.future.set_exception(
                    OverloadError(
                        f"{shard.name}: queued request {victim.key!r} can no "
                        f"longer meet its deadline; evicted",
                        reason="deadline",
                    )
                )
            if not admitted:
                error = OverloadError(
                    f"{shard.name}: queue full ({shard.queue.capacity}); "
                    f"request {key!r} shed",
                    reason="queue-full",
                )
                self._settle_leader(scene, leader_future, error=error)
                self._count_shed("queue-full")
                root.set(outcome="shed", reason="queue-full")
                raise error
            self._note_queue_depth(shard, sampled)

            try:
                response = await item.future
            except OverloadError as error:
                self._settle_leader(scene, leader_future, error=error)
                self._count_shed(error.reason)
                root.set(outcome="shed", reason=error.reason)
                raise
            except ReproError as error:
                self._settle_leader(scene, leader_future, error=error)
                self.failed += 1
                self._count_request("failed")
                root.set(outcome="failed", error=type(error).__name__)
                raise

            entry = CacheEntry(
                heading_deg=response.heading_deg,
                field_estimate_a_per_m=response.field_estimate_a_per_m,
                verdict=response.verdict.value,
                heading_input_deg=snapped_heading,
                field_input_t=snapped_field,
            )
            if (
                self.cache is not None
                and response.verdict is ServiceVerdict.AUTHORITATIVE
            ):
                self.cache.put(scene, entry)
            self._settle_leader(scene, leader_future, entry=entry)
            latency = scheduler.now() - arrival
            self._note_served(SOURCE_MEASURED, latency, sampled)
            root.set(
                outcome="served",
                source=SOURCE_MEASURED,
                verdict=response.verdict.value,
            )
            return self._response(
                key, scene, entry, SOURCE_MEASURED, shard_index, latency,
                self.brownout.level,
            )

    async def _join_leader(self, pending: Any, root) -> CacheEntry:
        """Await the in-flight leader; re-label its failure as ours."""
        try:
            return await pending
        except OverloadError as error:
            self._count_shed(error.reason)
            root.set(outcome="shed", reason=error.reason, coalesced=True)
            raise
        except ReproError as error:
            self.failed += 1
            self._count_request("failed")
            root.set(outcome="failed", error=type(error).__name__)
            raise

    def _settle_leader(
        self,
        scene: str,
        future: Any,
        entry: Optional[CacheEntry] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Resolve (and unregister) this request's coalescing slot."""
        if future is None:
            return
        if self._inflight.get(scene) is future:
            del self._inflight[scene]
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(entry)

    def _response(
        self,
        key: str,
        scene: str,
        entry: CacheEntry,
        source: str,
        shard_index: int,
        latency_s: float,
        level: int,
    ) -> FleetResponse:
        return FleetResponse(
            key=key,
            scene=scene,
            heading_deg=entry.heading_deg,
            field_estimate_a_per_m=entry.field_estimate_a_per_m,
            verdict=entry.verdict,
            source=source,
            shard=shard_index,
            latency_s=latency_s,
            brownout_level=level,
        )

    # -- the shard worker ------------------------------------------------------

    async def _serve_shard(self, shard: FleetShard) -> None:
        cfg = self.config
        scheduler = self.scheduler
        while True:
            item = await shard.queue.get()
            if item is _STOP:
                return
            now = scheduler.now()
            remaining = item.deadline - now
            if remaining <= 0.0:
                item.future.set_exception(
                    OverloadError(
                        f"{shard.name}: deadline expired before dispatch of "
                        f"{item.key!r}; shed",
                        reason="deadline",
                    )
                )
                continue
            # Brownout L2: step the vote pool down to the quorum.  The
            # service degrades the verdict itself (no clean sweep with a
            # reduced pool), so the step-down is structurally loud.
            max_replicas = (
                cfg.service.quorum if self.brownout.level >= 2 else None
            )
            shard.sync(now)
            started = shard.clock.now()
            span = (
                self.observer.span(
                    STAGE_FLEET_DISPATCH, shard=shard.name, key=item.key
                )
                if self._sampled()
                else NULL_SPAN
            )
            with span as dispatch:
                try:
                    response = shard.service.measure_heading(
                        item.heading_deg,
                        item.field_magnitude_t,
                        max_replicas=max_replicas,
                        deadline_s=min(cfg.service.deadline_s, remaining),
                    )
                except ReproError as error:
                    elapsed = shard.clock.now() - started
                    shard.note_service_time(elapsed)
                    shard.failed += 1
                    dispatch.set(
                        outcome="failed", error=type(error).__name__
                    )
                    if elapsed > 0.0:
                        await scheduler.sleep(elapsed)
                    item.future.set_exception(error)
                    continue
                elapsed = shard.clock.now() - started
                shard.note_service_time(elapsed)
                shard.served += 1
                dispatch.set(
                    outcome="served",
                    verdict=response.verdict.value,
                    service_ms=round(elapsed * 1e3, 4),
                )
                if elapsed > 0.0:
                    # Charge the measurement's service time to the global
                    # timeline; other shards keep progressing in parallel.
                    await scheduler.sleep(elapsed)
                item.future.set_result(response)

    # -- diagnostics -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """One JSON-friendly snapshot of the fleet's counters."""
        return {
            "served": self.served,
            "failed": self.failed,
            "shed": dict(self.shed),
            "brownout_level": self.brownout.level,
            "brownout_transitions": list(self.brownout.transitions),
            "bucket": {
                "admitted": self.bucket.admitted,
                "refused": self.bucket.refused,
            },
            "cache": (
                {
                    "hits": self.cache.hits,
                    "misses": self.cache.misses,
                    "evictions": self.cache.evictions,
                    "size": len(self.cache),
                    "hit_rate": round(self.cache.hit_rate, 6),
                }
                if self.cache is not None
                else None
            ),
            "guard_checks": self.guard_checks,
            "shards": [
                {
                    "name": shard.name,
                    "served": shard.served,
                    "failed": shard.failed,
                    "queue_evicted": shard.queue.evicted,
                    "queue_rejected": shard.queue.rejected,
                    "queue_peak_depth": shard.queue.peak_depth,
                    "est_service_ms": round(shard.est_service_s * 1e3, 4),
                }
                for shard in self.shards
            ],
        }


__all__ = [
    "FleetResponse",
    "HeadingFleet",
    "SOURCE_CACHE",
    "SOURCE_COALESCED",
    "SOURCE_MEASURED",
]
