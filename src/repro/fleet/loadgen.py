"""Open-loop seeded Poisson load against the fleet, in virtual time.

**Open-loop** is the property that makes overload testing honest: the
generator draws arrival times from a seeded Poisson process and fires
them regardless of whether the fleet is keeping up — a saturated fleet
does not slow the offered load down, it just has to shed.  (A
closed-loop generator that waits for each response before sending the
next one can never drive a system past saturation, which is exactly the
regime this subsystem exists for.)

Arrivals, scene draws and device keys all come from one seeded RNG
consumed in arrival order, and time is the fleet scheduler's virtual
clock — the whole offered-load schedule is a pure function of
``(seed, phases)``, so a soak replays bit-identically.

The generator runs a list of :class:`LoadPhase` steps (an RPS ramp) and
scores every response into the :class:`PhaseRecord` of the phase that
*issued* it, including tail latency and the two wrongness counters the
SLO gate cares about (silent vs flagged wrong answers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, OverloadError, ReproError
from ..faults.campaign import heading_error_deg
from ..service.service import ServiceVerdict
from .fleet import HeadingFleet


@dataclass(frozen=True)
class LoadPhase:
    """One step of the offered-load schedule."""

    rps: float
    duration_s: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.rps <= 0.0:
            raise ConfigurationError("phase RPS must be positive")
        if self.duration_s <= 0.0:
            raise ConfigurationError("phase duration must be positive")


@dataclass
class PhaseRecord:
    """Scored outcomes of every request issued during one phase."""

    label: str
    rps: float
    duration_s: float
    offered: int = 0
    served: int = 0
    shed: Dict[str, int] = field(default_factory=dict)
    failed: Dict[str, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)
    sources: Dict[str, int] = field(default_factory=dict)
    verdicts: Dict[str, int] = field(default_factory=dict)
    worst_error_deg: float = 0.0
    silent_wrong: int = 0
    flagged_wrong: int = 0

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def failed_total(self) -> int:
        return sum(self.failed.values())

    @property
    def availability(self) -> float:
        """Served fraction of offered load (sheds and failures count
        against it)."""
        return self.served / self.offered if self.offered else 1.0

    def latency_percentile(self, q: float) -> float:
        """Served-latency percentile [s]; 0.0 when nothing was served."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))


class OpenLoopGenerator:
    """Seeded Poisson arrivals over a phase schedule, on virtual time.

    ``hot_fraction`` of requests revisit a small pool of ``hot_scenes``
    fixed (heading, field) points — the realistic burst-locality that
    the cache and coalescer exist to absorb; the rest draw fresh uniform
    scenes.  Requests carry one of ``devices`` stable device keys, so
    consistent hashing gives each device an affine shard.
    """

    def __init__(
        self,
        fleet: HeadingFleet,
        phases: Sequence[LoadPhase],
        seed: int = 0,
        hot_fraction: float = 0.5,
        hot_scenes: int = 8,
        devices: int = 64,
        field_band_ut: Tuple[float, float] = (25.0, 65.0),
        tolerance_deg: Optional[float] = None,
    ):
        if not phases:
            raise ConfigurationError("load schedule needs at least one phase")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError("hot_fraction must be in [0, 1]")
        if hot_scenes < 1 or devices < 1:
            raise ConfigurationError("hot_scenes and devices must be >= 1")
        self.fleet = fleet
        self.phases = list(phases)
        self.seed = seed
        self.hot_fraction = hot_fraction
        self.devices = devices
        self.tolerance_deg = (
            fleet.config.slo.tolerance_deg
            if tolerance_deg is None
            else tolerance_deg
        )
        self._rng = np.random.default_rng(seed)
        low, high = field_band_ut
        if not 0.0 < low < high:
            raise ConfigurationError("field band must satisfy 0 < low < high")
        self._band = (low, high)
        self._hot = [
            (
                float(self._rng.uniform(0.0, 360.0)),
                float(self._rng.uniform(low, high)) * 1e-6,
            )
            for _ in range(hot_scenes)
        ]

    def _draw_scene(self) -> Tuple[float, float]:
        if self._rng.random() < self.hot_fraction:
            return self._hot[int(self._rng.integers(len(self._hot)))]
        low, high = self._band
        return (
            float(self._rng.uniform(0.0, 360.0)),
            float(self._rng.uniform(low, high)) * 1e-6,
        )

    async def _one(
        self,
        record: PhaseRecord,
        key: str,
        true_heading_deg: float,
        field_magnitude_t: float,
    ) -> None:
        record.offered += 1
        try:
            response = await self.fleet.submit(
                key, true_heading_deg, field_magnitude_t
            )
        except OverloadError as error:
            record.shed[error.reason] = record.shed.get(error.reason, 0) + 1
            return
        except ReproError as error:
            name = type(error).__name__
            record.failed[name] = record.failed.get(name, 0) + 1
            return
        record.served += 1
        record.latencies_s.append(response.latency_s)
        record.sources[response.source] = (
            record.sources.get(response.source, 0) + 1
        )
        record.verdicts[response.verdict] = (
            record.verdicts.get(response.verdict, 0) + 1
        )
        error_deg = heading_error_deg(response.heading_deg, true_heading_deg)
        record.worst_error_deg = max(record.worst_error_deg, error_deg)
        if error_deg > self.tolerance_deg:
            if response.verdict == ServiceVerdict.AUTHORITATIVE.value:
                record.silent_wrong += 1
            else:
                record.flagged_wrong += 1

    async def run(self) -> List[PhaseRecord]:
        """Fire the whole schedule; returns one record per phase.

        All in-flight requests are drained (awaited) before returning,
        each scored into the phase that issued it.
        """
        scheduler = self.fleet.scheduler
        records: List[PhaseRecord] = []
        tasks = []
        for index, phase in enumerate(self.phases):
            record = PhaseRecord(
                label=phase.label or f"phase-{index}",
                rps=phase.rps,
                duration_s=phase.duration_s,
            )
            records.append(record)
            phase_end = scheduler.now() + phase.duration_s
            while True:
                gap = float(self._rng.exponential(1.0 / phase.rps))
                now = scheduler.now()
                if now + gap >= phase_end:
                    # Next arrival falls past this phase; idle out the
                    # remainder and let the next phase redraw its rate.
                    remainder = phase_end - now
                    if remainder > 0.0:
                        await scheduler.sleep(remainder)
                    break
                await scheduler.sleep(gap)
                heading, field_t = self._draw_scene()
                device = f"device-{int(self._rng.integers(self.devices))}"
                tasks.append(
                    scheduler.spawn(
                        self._one(record, device, heading, field_t),
                        name=f"req-{len(tasks)}",
                    )
                )
        for task in tasks:
            await task.future
        return records


__all__ = ["LoadPhase", "OpenLoopGenerator", "PhaseRecord"]
