"""Admission control: the fleet's first two rungs of overload defence.

An open-loop load generator does not slow down because the fleet is
busy — arrivals keep coming at the offered rate whether or not capacity
exists.  The only defence is to *refuse work early and loudly*:

* :class:`TokenBucket` — the front door.  Tokens refill at the rated
  admission rate (with a bounded burst allowance); an arrival that
  finds the bucket dry is shed immediately with
  :class:`~repro.errors.OverloadError` (``reason="rate-limit"``) before
  it costs anything.
* :class:`BoundedShardQueue` — the per-shard waiting room.  Depth is
  hard-bounded; when an arrival finds the queue full, the queue first
  **evicts dead work** — queued requests that, given their position and
  the shard's estimated service time, can no longer meet their deadline
  (serving them would burn capacity producing answers nobody can use)
  — and only admits the newcomer if eviction actually freed a slot.
  Both the eviction and the rejection are loud ``OverloadError``s.

Every decision reads time from the injected clock and state that is a
pure function of the arrival history, so the admission trace is
deterministic — property-tested in ``tests/test_property_fleet.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..errors import ConfigurationError
from ..service.clock import Clock
from .kernel import AsyncQueue, Scheduler


@dataclass(frozen=True)
class TokenBucketConfig:
    """Refill rate [tokens/s] and burst capacity of the front door.

    The rate is a hard *ceiling* on admissions, set well above the
    fleet's rated load (default 4x the 300 rps rating): the bucket
    exists to bound the worst case cheaply, while the queue and
    brownout rungs below it handle the territory between rated and
    ceiling.
    """

    rate_rps: float = 1200.0
    burst: float = 96.0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0.0:
            raise ConfigurationError("token bucket rate must be positive")
        if self.burst < 1.0:
            raise ConfigurationError("token bucket burst must be >= 1")


class TokenBucket:
    """Deterministic lazy-refill token bucket on an injected clock."""

    def __init__(self, config: TokenBucketConfig, clock: Clock):
        self.config = config
        self._clock = clock
        self._tokens = float(config.burst)
        self._refilled_at = clock.now()
        self.admitted = 0
        self.refused = 0

    def _refill(self, now: float) -> None:
        elapsed = now - self._refilled_at
        if elapsed > 0.0:
            self._tokens = min(
                float(self.config.burst),
                self._tokens + elapsed * self.config.rate_rps,
            )
            self._refilled_at = now

    def try_admit(self) -> bool:
        """Consume one token if available; pure in (clock, history)."""
        self._refill(self._clock.now())
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.admitted += 1
            return True
        self.refused = self.refused + 1
        return False

    @property
    def level(self) -> float:
        """Tokens currently in the bucket (after a lazy refill)."""
        self._refill(self._clock.now())
        return self._tokens


@dataclass
class QueueItem:
    """One admitted request waiting for its shard worker."""

    key: str
    heading_deg: float
    field_magnitude_t: float
    deadline: float
    enqueued_at: float
    future: Any  # KernelFuture | asyncio.Future
    phase: Optional[int] = None


class BoundedShardQueue:
    """Hard-bounded FIFO with deadline-aware eviction of dead work."""

    def __init__(self, scheduler: Scheduler, capacity: int):
        if capacity < 1:
            raise ConfigurationError("shard queue capacity must be >= 1")
        self.capacity = capacity
        self._queue = AsyncQueue(scheduler)
        self.evicted = 0
        self.rejected = 0
        self.peak_depth = 0

    @property
    def depth(self) -> int:
        return len(self._queue)

    def _evict_dead(self, now: float, est_service_s: float) -> List[QueueItem]:
        """Remove queued items that can no longer meet their deadline.

        Item ``i`` (0-based from the head) is expected to *finish* at
        ``now + (i + 1) * est_service_s``; if that is past its deadline
        the work is already dead and holding the slot only starves
        admissible requests behind it.
        """
        backlog = self._queue.items
        survivors = []
        dead = []
        position = 0
        for item in backlog:
            expected_finish = now + (position + 1) * est_service_s
            if expected_finish > item.deadline:
                dead.append(item)
            else:
                survivors.append(item)
                position += 1
        if dead:
            backlog.clear()
            backlog.extend(survivors)
            self.evicted += len(dead)
        return dead

    def offer(
        self, item: QueueItem, now: float, est_service_s: float
    ) -> Tuple[bool, List[QueueItem]]:
        """Try to enqueue; returns ``(admitted, evicted_items)``.

        Eviction only runs when the queue is full — a queue with room
        admits unconditionally and lets the worker's own dispatch-time
        deadline check catch anything that went stale while waiting.
        The caller owns failing the evicted items' futures (the queue
        stays policy-only, completion stays in one place).
        """
        evicted: List[QueueItem] = []
        if self.depth >= self.capacity:
            evicted = self._evict_dead(now, est_service_s)
        if self.depth >= self.capacity:
            self.rejected += 1
            return False, evicted
        self._queue.put_nowait(item)
        self.peak_depth = max(self.peak_depth, self.depth)
        return True, evicted

    def push_control(self, token: Any) -> None:
        """Enqueue a control token (worker-stop sentinel), bound or not."""
        self._queue.put_nowait(token)

    async def get(self) -> Any:
        return await self._queue.get()


__all__ = [
    "BoundedShardQueue",
    "QueueItem",
    "TokenBucket",
    "TokenBucketConfig",
]
