"""Request coalescing + the bounded LRU heading cache.

Under a burst, many devices ask for (nearly) the same measurement: the
same heading at the same field through the same compass configuration.
Measuring each one independently is wasted capacity — the clean compass
is deterministic, so identical questions have identical answers.  The
fleet exploits that in two layers:

* **Quantized scene keys** — a request is snapped onto a measurement
  grid (:func:`quantize_heading` / :func:`quantize_field`; default
  360/4096 ≈ 0.088° and 0.25 µT, both exact binary fractions so
  on-grid inputs like the 48 golden vectors snap to themselves).  The
  backend measures *at the snapped point*, so every request in a grid
  cell receives the bit-identical heading the cell representative
  would — cached, coalesced or freshly measured.  The snap adds at most
  half a quantum (≈0.05°) of heading error, budgeted well inside the
  paper's 1° spec.
* **:class:`HeadingCache`** — a bounded LRU over scene keys.  Only
  ``AUTHORITATIVE`` responses are stored: a quorum-degraded answer
  (fault in the pool, brownout step-down) is never allowed to outlive
  the conditions that produced it.  The key carries the compass
  configuration fingerprint (:func:`repro.replay.format.config_fingerprint`),
  so entries can never leak across differently-configured fleets.

Coalescing of *in-flight* duplicates lives in
:class:`~repro.fleet.fleet.HeadingFleet` (it needs the future plumbing);
this module owns the key algebra and the completed-response store.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigurationError

#: Default heading quantum: 360/4096 deg — an exact binary fraction
#: (0.087890625) that divides the golden-vector grid (11.25° = 128 q).
DEFAULT_HEADING_QUANTUM_DEG = 360.0 / 4096.0
#: Default field quantum [µT]: exact binary fraction dividing the
#: worldwide 25…65 µT band endpoints and the golden magnitudes.
DEFAULT_FIELD_QUANTUM_UT = 0.25


def quantize_heading(heading_deg: float, quantum_deg: float) -> Tuple[int, float]:
    """Snap a heading onto the grid; returns ``(bin, snapped_deg)``."""
    bins = int(round(360.0 / quantum_deg))
    index = int(round((heading_deg % 360.0) / quantum_deg)) % bins
    return index, index * quantum_deg


def quantize_field(field_t: float, quantum_ut: float) -> Tuple[int, float]:
    """Snap a field magnitude onto the grid; returns ``(bin, snapped_t)``."""
    field_ut = field_t / 1e-6
    index = int(round(field_ut / quantum_ut))
    return index, (index * quantum_ut) * 1e-6


def scene_key(
    fingerprint: str,
    heading_bin: int,
    field_bin: int,
) -> str:
    """The canonical cache/coalesce key of one quantized measurement."""
    return f"{fingerprint}:{heading_bin}:{field_bin}"


@dataclass(frozen=True)
class CacheEntry:
    """The replayable core of one served measurement.

    Carries the snapped grid inputs it was measured at so the
    conformance guard can re-run the identical measurement and demand a
    bit-identical answer.
    """

    heading_deg: float
    field_estimate_a_per_m: float
    verdict: str
    heading_input_deg: float = 0.0
    field_input_t: float = 50.0e-6


class HeadingCache:
    """Bounded LRU of authoritative measurements by scene key."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


__all__ = [
    "CacheEntry",
    "DEFAULT_FIELD_QUANTUM_UT",
    "DEFAULT_HEADING_QUANTUM_DEG",
    "HeadingCache",
    "quantize_field",
    "quantize_heading",
    "scene_key",
]
