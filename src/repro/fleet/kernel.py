"""A deterministic async kernel on the injected :class:`SimulatedClock`.

The fleet is concurrent software — shard workers, an open-loop load
generator, a chaos storm and thousands of in-flight requests all
overlap in time — but a soak that is not *reproducible* is useless as a
regression gate.  Ordinary ``asyncio`` gets its timing from the host
event loop, so two runs of the same seed interleave differently and a
failing storm cannot be replayed.  This module provides the alternative:
a minimal cooperative scheduler that drives standard ``async def``
coroutines under **virtual time**.

* Tasks are stepped from a FIFO ready queue; timers live in a heap keyed
  by ``(wake_time, sequence)``.  When no task is runnable the kernel
  jumps the :class:`~repro.service.clock.SimulatedClock` straight to the
  earliest timer — a 16-second soak of thousands of requests executes in
  however long the measurements themselves take, and bit-identically
  from its seed.
* The awaitable surface is deliberately tiny — :meth:`Kernel.sleep`,
  :class:`KernelFuture` and :meth:`Kernel.spawn` — and is abstracted as
  the :class:`Scheduler` interface, so fleet code is written once and
  can also run on a real ``asyncio`` loop (wall-clock deployment) via
  :class:`AsyncioScheduler`.

The kernel refuses to guess: a deadlock (no ready task, no timer, main
not finished) raises instead of hanging, and a task failure nobody
awaited is re-raised at the end of :meth:`Kernel.run` instead of being
swallowed.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Coroutine, Deque, List, Optional, Tuple

from ..errors import ConfigurationError
from ..service.clock import SimulatedClock


class Scheduler:
    """The awaitable surface fleet code is written against."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, duration_s: float):
        """Awaitable that suspends the caller for ``duration_s``."""
        raise NotImplementedError

    def create_future(self) -> "KernelFuture":
        raise NotImplementedError

    def spawn(self, coro: Coroutine, name: str = "task") -> "Task":
        raise NotImplementedError


class _Sleep:
    """Yield-to-kernel marker for a virtual-time sleep."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        self.duration = duration

    def __await__(self):
        yield self


class KernelFuture:
    """A one-shot result cell awaitable by any number of tasks."""

    __slots__ = ("_kernel", "_done", "_result", "_error", "_waiters",
                 "_retrieved")

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self._done = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._waiters: List["Task"] = []
        self._retrieved = False

    def done(self) -> bool:
        return self._done

    def set_result(self, value: Any) -> None:
        if self._done:
            raise RuntimeError("future already completed")
        self._done = True
        self._result = value
        self._kernel._wake(self._waiters)
        self._waiters = []

    def set_exception(self, error: BaseException) -> None:
        if self._done:
            raise RuntimeError("future already completed")
        self._done = True
        self._error = error
        # A failure someone is already waiting on is considered
        # delivered; an unawaited one is the kernel's to report.
        self._retrieved = bool(self._waiters)
        self._kernel._wake(self._waiters)
        self._waiters = []

    def result(self) -> Any:
        if not self._done:
            raise RuntimeError("future not completed yet")
        self._retrieved = True
        if self._error is not None:
            raise self._error
        return self._result

    def __await__(self):
        if not self._done:
            yield self
        return self.result()


class Task:
    """One spawned coroutine; ``await task.future`` joins it."""

    __slots__ = ("coro", "name", "future")

    def __init__(self, kernel: "Kernel", coro: Coroutine, name: str):
        self.coro = coro
        self.name = name
        self.future = KernelFuture(kernel)

    @property
    def done(self) -> bool:
        return self.future.done()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.name!r}, done={self.done})"


class Kernel(Scheduler):
    """Deterministic virtual-time scheduler over a simulated clock."""

    def __init__(self, clock: Optional[SimulatedClock] = None):
        self.clock = clock if clock is not None else SimulatedClock()
        self._ready: Deque[Task] = deque()
        self._timers: List[Tuple[float, int, Task]] = []
        self._seq = itertools.count()
        self._failed: List[Task] = []

    # -- Scheduler surface -----------------------------------------------------

    def now(self) -> float:
        return self.clock.now()

    def sleep(self, duration_s: float) -> _Sleep:
        if duration_s < 0.0:
            raise ConfigurationError("cannot sleep a negative duration")
        return _Sleep(duration_s)

    def create_future(self) -> KernelFuture:
        return KernelFuture(self)

    def spawn(self, coro: Coroutine, name: str = "task") -> Task:
        task = Task(self, coro, name)
        self._ready.append(task)
        return task

    # -- the loop --------------------------------------------------------------

    def _wake(self, waiters: List[Task]) -> None:
        self._ready.extend(waiters)

    def _step(self, task: Task) -> None:
        try:
            command = task.coro.send(None)
        except StopIteration as stop:
            task.future.set_result(stop.value)
            return
        except BaseException as error:  # noqa: B036 - task isolation boundary
            task.future.set_exception(error)
            self._failed.append(task)
            return
        if isinstance(command, _Sleep):
            if command.duration <= 0.0:
                self._ready.append(task)
            else:
                heapq.heappush(
                    self._timers,
                    (self.clock.now() + command.duration,
                     next(self._seq), task),
                )
        elif isinstance(command, KernelFuture):
            if command.done():
                self._ready.append(task)
            else:
                command._waiters.append(task)
        else:
            raise ConfigurationError(
                f"task {task.name!r} awaited a foreign awaitable "
                f"{command!r}; under the kernel only Kernel.sleep, "
                f"KernelFuture and Task.future are awaitable"
            )

    def run(self, coro: Coroutine, name: str = "main") -> Any:
        """Drive ``coro`` (and everything it spawns) to completion.

        Returns the coroutine's result; raises its exception.  After the
        main coroutine finishes, tasks still blocked on futures are
        abandoned (the fleet stops its workers explicitly); the first
        failure of a task whose exception nobody retrieved is re-raised
        so background crashes cannot pass silently.
        """
        main = self.spawn(coro, name)
        while not main.done:
            if self._ready:
                self._step(self._ready.popleft())
            elif self._timers:
                when, _, task = heapq.heappop(self._timers)
                gap = when - self.clock.now()
                if gap > 0.0:
                    self.clock.advance(gap)
                self._step(task)
            else:
                raise RuntimeError(
                    "kernel deadlock: main task is blocked with no "
                    "runnable task and no pending timer"
                )
        for task in self._failed:
            if not task.future._retrieved:
                task.future.result()  # re-raises
        return main.future.result()


class AsyncQueue:
    """FIFO queue for kernel (or asyncio) coroutines.

    ``put_nowait`` hands the item straight to a waiting getter when one
    exists, otherwise appends to the backlog; :meth:`get` suspends until
    an item arrives.  The backlog is exposed read-only as
    :attr:`items` so admission control can inspect (and evict from) the
    queue it bounds.
    """

    def __init__(self, scheduler: Scheduler):
        self._scheduler = scheduler
        self.items: Deque[Any] = deque()
        self._getters: Deque[Any] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put_nowait(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if not getter.done():
                getter.set_result(item)
                return
        self.items.append(item)

    async def get(self) -> Any:
        if self.items:
            return self.items.popleft()
        getter = self._scheduler.create_future()
        self._getters.append(getter)
        return await getter


class AsyncioScheduler(Scheduler):
    """Run the same fleet coroutines on a real ``asyncio`` loop.

    Wall-clock deployment shim: time comes from the running loop,
    sleeps really sleep, and futures/tasks are native asyncio objects
    (which satisfy the same ``done/set_result/result`` surface the
    fleet uses).  Determinism is *not* promised here — that is what the
    :class:`Kernel` is for.
    """

    def now(self) -> float:
        import asyncio

        return asyncio.get_event_loop().time()

    def sleep(self, duration_s: float):
        import asyncio

        return asyncio.sleep(max(0.0, duration_s))

    def create_future(self):
        import asyncio

        return asyncio.get_event_loop().create_future()

    def spawn(self, coro: Coroutine, name: str = "task"):
        import asyncio

        task = asyncio.ensure_future(coro)
        # Mirror the kernel Task surface: joining happens via `.future`.
        task.future = task  # type: ignore[attr-defined]
        return task


def run(coro: Coroutine, clock: Optional[SimulatedClock] = None) -> Any:
    """One-shot convenience: build a kernel and drive ``coro`` on it."""
    return Kernel(clock).run(coro)


SchedulerFactory = Callable[[], Scheduler]

__all__ = [
    "AsyncQueue",
    "AsyncioScheduler",
    "Kernel",
    "KernelFuture",
    "Scheduler",
    "Task",
    "run",
]
