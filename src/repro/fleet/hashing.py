"""Consistent hashing: device/scene keys onto shard workers.

The fleet shards requests so that one device (or one quantized scene —
see :mod:`repro.fleet.cache`) always lands on the same worker: its
measurements coalesce, its cache entries stay hot, and a chaos fault on
one shard touches a stable, bounded slice of the keyspace.  A plain
``hash(key) % shards`` would remap almost every key when the shard
count changes; the classic fix is a **hash ring** with virtual nodes —
each shard owns ``vnodes`` pseudo-random points on a 64-bit circle and
a key belongs to the first shard point at or after its own hash.
Resizing then only moves the keys between neighbouring points.

Hashes come from :mod:`hashlib` (BLAKE2b), not Python's seeded
``hash()``, so the placement is identical across processes and runs —
a requirement for the deterministic soak, whose whole report depends on
which shard every request hits.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError


def stable_hash(key: str) -> int:
    """64-bit process-independent hash of a text key."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Maps string keys to shard indices via consistent hashing."""

    def __init__(self, shards: int, vnodes: int = 64):
        if shards < 1:
            raise ConfigurationError("hash ring needs at least one shard")
        if vnodes < 1:
            raise ConfigurationError("hash ring needs at least one vnode")
        self.shards = shards
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                points.append((stable_hash(f"shard-{shard}#{vnode}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def lookup(self, key: str) -> int:
        """The shard index owning ``key``."""
        index = bisect.bisect_right(self._hashes, stable_hash(key))
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def spread(self, keys: Sequence[str]) -> List[int]:
        """Shard populations for a key sample (diagnostics/tests)."""
        counts = [0] * self.shards
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts


__all__ = ["HashRing", "stable_hash"]
