"""Fleet configuration, SLO definitions and the brownout controller.

The overload ladder, from cheapest defence to deepest degradation:

1. **rate-limit** (token bucket) — refuse arrivals beyond the admission
   rate before they cost anything;
2. **queue-full / deadline eviction** — bound the waiting room, drop
   dead work (see :mod:`repro.fleet.admission`);
3. **brownout L1** — shed *optional observability work*: latency
   histograms, gauges and spans are sampled 1-in-``sample_every``
   instead of per-request (counters stay exact);
4. **brownout L2** — shed *optional confirmation work*: the vote pool
   steps down from N replicas toward the quorum K
   (``HeadingService.measure_heading(max_replicas=K)``), trading
   redundancy for capacity.  A stepped-down response is **always**
   labelled ``QUORUM_DEGRADED`` — never silently authoritative.

Brownout level is driven by an EWMA of queue occupancy with hysteresis
(enter thresholds above exit thresholds, plus a minimum dwell time) so
the fleet neither flaps between levels nor stays degraded after load
subsides.  Everything reads the injected clock — deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..analog.frontend import FrontEndConfig
from ..core.compass import CompassConfig
from ..core.health import HealthConfig
from ..errors import ConfigurationError
from ..observe import Observability
from ..service import ServiceConfig
from ..units import TARGET_ACCURACY_DEG
from .admission import TokenBucketConfig
from .cache import DEFAULT_FIELD_QUANTUM_UT, DEFAULT_HEADING_QUANTUM_DEG

#: The fleet's default compass: strict health supervision (resilience
#: lives in the service layer) + the PR-6 closed-form fast path, which
#: is what makes thousands of simulated devices per second affordable.
FLEET_COMPASS = CompassConfig(
    front_end=FrontEndConfig(fastpath=True),
    health=HealthConfig(enabled=True),
)


@dataclass(frozen=True)
class FleetSLO:
    """The promises the fleet is gated on.

    Attributes
    ----------
    p99_latency_s:
        Admitted requests must complete (queue wait + service) inside
        this at p99 — *at every load level*.  Past saturation the fleet
        sheds rather than letting admitted latency blow through this.
    availability_floor:
        Minimum served fraction at rated load (shed + failed count
        against it).
    tolerance_deg:
        The paper's 1° accuracy spec: a served error beyond this is
        *wrong*, and wrong + ``AUTHORITATIVE`` is silent-wrong — the
        one count that must be zero at every load level.
    """

    p99_latency_s: float = 0.30
    availability_floor: float = 0.99
    tolerance_deg: float = TARGET_ACCURACY_DEG

    def __post_init__(self) -> None:
        if self.p99_latency_s <= 0.0:
            raise ConfigurationError("p99 SLO must be positive")
        if not 0.0 <= self.availability_floor <= 1.0:
            raise ConfigurationError("availability floor must be in [0, 1]")


@dataclass(frozen=True)
class BrownoutConfig:
    """Hysteresis thresholds of the graceful-degradation ladder.

    Levels: 0 normal, 1 observability sampling shed, 2 quorum
    step-down.  ``enter_*`` thresholds are on the queue-occupancy EWMA
    (0..1); each ``exit_*`` must sit below its ``enter_*`` so the
    controller cannot flap on a boundary load.
    """

    enter_l1: float = 0.50
    enter_l2: float = 0.75
    exit_l1: float = 0.15
    exit_l2: float = 0.45
    alpha: float = 0.08
    min_dwell_s: float = 0.25
    sample_every: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.exit_l1 < self.enter_l1 <= 1.0:
            raise ConfigurationError("need 0 < exit_l1 < enter_l1 <= 1")
        if not self.exit_l2 < self.enter_l2 <= 1.0:
            raise ConfigurationError("need exit_l2 < enter_l2 <= 1")
        if not self.enter_l1 <= self.enter_l2:
            raise ConfigurationError("enter_l1 must not exceed enter_l2")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError("EWMA alpha must be in (0, 1]")
        if self.sample_every < 1:
            raise ConfigurationError("sample_every must be >= 1")


class BrownoutController:
    """EWMA-with-hysteresis ladder over queue occupancy."""

    def __init__(self, config: BrownoutConfig, start_s: float = 0.0):
        self.config = config
        self.level = 0
        self.ewma = 0.0
        self._changed_at = start_s
        #: ``(sim_time_s, new_level)`` transition log for reports/tests.
        self.transitions: List[Tuple[float, int]] = []

    def observe(self, occupancy: float, now: float) -> int:
        """Fold one occupancy sample in; returns the (new) level."""
        cfg = self.config
        self.ewma += cfg.alpha * (occupancy - self.ewma)
        if now - self._changed_at < cfg.min_dwell_s:
            return self.level
        target = self.level
        if self.level == 0 and self.ewma >= cfg.enter_l1:
            target = 1
        elif self.level == 1:
            if self.ewma >= cfg.enter_l2:
                target = 2
            elif self.ewma <= cfg.exit_l1:
                target = 0
        elif self.level == 2 and self.ewma <= cfg.exit_l2:
            target = 1
        if target != self.level:
            self.level = target
            self._changed_at = now
            self.transitions.append((now, target))
        return self.level


@dataclass(frozen=True)
class FleetConfig:
    """Everything configurable about the sharded heading fleet.

    Attributes
    ----------
    shards:
        Worker count; each shard owns an independent
        :class:`~repro.service.HeadingService` pool on its own service
        clock, so shards progress in parallel simulated time.
    vnodes:
        Virtual nodes per shard on the consistent-hash ring.
    service:
        Per-shard service configuration; each shard gets it re-seeded
        from the fleet seed.
    seed:
        Root seed — shard seeding and every fleet policy derive from it.
    admission:
        Token-bucket front door (rate + burst).
    queue_depth:
        Per-shard bounded queue capacity.
    deadline_s:
        Default end-to-end request deadline (queue wait + service).
    est_alpha:
        EWMA smoothing for the per-shard service-time estimate that
        drives deadline eviction.
    heading_quantum_deg, field_quantum_ut:
        Measurement-grid quanta (see :mod:`repro.fleet.cache`).
    cache_capacity, cache_enabled, coalesce_enabled:
        The scene-key cache and in-flight coalescing switches.
    guard_every:
        Conformance guard cadence: every Nth cache hit is re-measured
        on a clean reference service and compared **bit-exactly**
        against the cached entry (``0`` disables).  Requires the
        deterministic (noiseless) compass — the default.
    brownout:
        Graceful-degradation thresholds.
    slo:
        The gates the soak asserts.
    observe:
        Fleet-level observability (spans + metrics across all shards).
    """

    shards: int = 4
    vnodes: int = 64
    service: ServiceConfig = field(
        default_factory=lambda: ServiceConfig(compass=FLEET_COMPASS)
    )
    seed: int = 0
    admission: TokenBucketConfig = TokenBucketConfig()
    queue_depth: int = 32
    deadline_s: float = 0.25
    est_alpha: float = 0.2
    heading_quantum_deg: float = DEFAULT_HEADING_QUANTUM_DEG
    field_quantum_ut: float = DEFAULT_FIELD_QUANTUM_UT
    cache_capacity: int = 4096
    cache_enabled: bool = True
    coalesce_enabled: bool = True
    guard_every: int = 0
    brownout: BrownoutConfig = BrownoutConfig()
    slo: FleetSLO = FleetSLO()
    observe: Observability = Observability()

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError("fleet needs at least one shard")
        if self.queue_depth < 1:
            raise ConfigurationError("queue depth must be >= 1")
        if self.deadline_s <= 0.0:
            raise ConfigurationError("fleet deadline must be positive")
        if not 0.0 < self.est_alpha <= 1.0:
            raise ConfigurationError("est_alpha must be in (0, 1]")
        if self.heading_quantum_deg <= 0.0 or self.field_quantum_ut <= 0.0:
            raise ConfigurationError("quanta must be positive")
        if self.guard_every < 0:
            raise ConfigurationError("guard_every must be >= 0")


__all__ = [
    "BrownoutConfig",
    "BrownoutController",
    "FLEET_COMPASS",
    "FleetConfig",
    "FleetSLO",
]
