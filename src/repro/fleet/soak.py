"""The fleet soak: a chaos storm plus an RPS ramp past saturation.

This is the subsystem's acceptance harness.  It drives the open-loop
generator through a load schedule expressed as multiples of the fleet's
*rated* RPS — warm-up, rated, overload (past saturation), recovery —
while a chaos coroutine arms and disarms registered measurement faults
and latency spikes on the shard services (strict per-shard minority
budget, bounded number of simultaneously-stormed shards, mirroring
:class:`repro.faults.chaos.ChaosSoak`).  Everything runs on one
deterministic virtual-time kernel, so the full storm replays
bit-identically from its seed.

The report gates four promises:

* **availability** ≥ the configured floor in every at-or-below-rated
  phase, chaos notwithstanding;
* **silent-wrong = 0 at every load level** — overload may shed or
  degrade, it may never produce a confidently wrong heading;
* **typed shedding past saturation** — overload phases must show
  :class:`~repro.errors.OverloadError` sheds (the fleet refuses loudly
  rather than queueing unboundedly);
* **p99 latency of admitted requests within the SLO in every phase** —
  shedding is what keeps the tail flat, and this is where that shows.

:func:`FleetSoak.run` returns a :class:`FleetSoakReport`;
:meth:`FleetSoakReport.raise_for_slo` turns violations into
:class:`~repro.errors.SLOViolationError` for the CLI exit-code path.
"""

from __future__ import annotations

import contextlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, SLOViolationError
from ..faults.model import REGISTRY, FaultRegistry
from ..service.breaker import BreakerState
from .config import FleetConfig
from .fleet import HeadingFleet
from .kernel import Kernel
from .loadgen import LoadPhase, OpenLoopGenerator, PhaseRecord

#: Load phases past this multiple of rated RPS count as overload and
#: must show typed shedding.
OVERLOAD_MULTIPLIER = 2.0


@dataclass(frozen=True)
class FleetSoakConfig:
    """Storm schedule, chaos probabilities and gates of one fleet soak.

    Attributes
    ----------
    fleet:
        Fleet under test.
    rated_rps:
        The load the availability floor is promised at; phase rates are
        ``multiplier * rated_rps``.
    phases:
        ``(multiplier, duration_s)`` schedule; the default ramps
        warm-up → rated → 2.5× overload → rated recovery.
    seed:
        Root seed; the load stream and the chaos stream are independent
        spawns of it.
    chaos:
        Master switch for the fault storm.
    arm_probability, disarm_probability, latency_spike_probability,
    latency_spike_scale:
        Per-chaos-step probabilities, as in
        :class:`repro.faults.chaos.SoakConfig`.
    chaos_interval_s:
        Virtual-time period of the chaos stepper.
    max_chaotic_shards:
        Cap on shards with any compromised replica at once.
    faults:
        Registered measurement-fault names to draw from; default all.
    hot_fraction, hot_scenes, devices:
        Scene locality knobs of the load generator.
    """

    fleet: FleetConfig = FleetConfig()
    rated_rps: float = 300.0
    phases: Tuple[Tuple[float, float], ...] = (
        (0.5, 2.0),
        (1.0, 6.0),
        (4.0, 4.0),
        (1.0, 4.0),
    )
    seed: int = 0
    chaos: bool = True
    arm_probability: float = 0.25
    disarm_probability: float = 0.15
    latency_spike_probability: float = 0.05
    latency_spike_scale: float = 20.0
    chaos_interval_s: float = 0.05
    max_chaotic_shards: int = 2
    faults: Optional[Sequence[str]] = None
    hot_fraction: float = 0.5
    hot_scenes: int = 8
    devices: int = 64

    def __post_init__(self) -> None:
        if self.rated_rps <= 0.0:
            raise ConfigurationError("rated RPS must be positive")
        if not self.phases:
            raise ConfigurationError("soak needs at least one phase")
        for multiplier, duration in self.phases:
            if multiplier <= 0.0 or duration <= 0.0:
                raise ConfigurationError(
                    "phase multipliers and durations must be positive"
                )
        if self.chaos_interval_s <= 0.0:
            raise ConfigurationError("chaos interval must be positive")
        if self.max_chaotic_shards < 0:
            raise ConfigurationError("max_chaotic_shards must be >= 0")


@dataclass(frozen=True)
class FleetSoakEvent:
    """One chaos action on one shard, for the reproducibility log."""

    time_s: float
    action: str  # "arm" | "disarm" | "spike" | "unspike"
    shard: int
    replica: int
    fault: str
    severity: float


@dataclass
class FleetSoakReport:
    """Scored storm: per-phase outcomes plus the chaos schedule."""

    seed: int
    rated_rps: float
    slo_p99_s: float
    availability_floor: float
    tolerance_deg: float
    phases: List[Dict[str, Any]] = field(default_factory=list)
    events: List[FleetSoakEvent] = field(default_factory=list)
    faults_armed: Dict[str, int] = field(default_factory=dict)
    fleet_stats: Dict[str, Any] = field(default_factory=dict)
    metrics_snapshot: Optional[Dict[str, Any]] = None
    elapsed_sim_s: float = 0.0
    elapsed_wall_s: float = 0.0

    # -- gates -----------------------------------------------------------------

    def violations(self) -> List[str]:
        """Every broken promise, human-readable; empty means pass."""
        broken: List[str] = []
        for phase in self.phases:
            label = phase["label"]
            if phase["silent_wrong"] != 0:
                broken.append(
                    f"{label}: {phase['silent_wrong']} silent-wrong "
                    f"responses (must be 0 at every load level)"
                )
            if phase["multiplier"] <= 1.0 and (
                phase["availability"] < self.availability_floor
            ):
                broken.append(
                    f"{label}: availability {phase['availability']:.4f} "
                    f"below the {self.availability_floor:.2f} floor at "
                    f"{phase['multiplier']:g}x rated load"
                )
            if phase["served"] > 0 and (
                phase["latency_p99_ms"] > self.slo_p99_s * 1e3
            ):
                broken.append(
                    f"{label}: admitted-request p99 "
                    f"{phase['latency_p99_ms']:.2f} ms exceeds the "
                    f"{self.slo_p99_s * 1e3:.0f} ms SLO"
                )
            if phase["multiplier"] >= OVERLOAD_MULTIPLIER and (
                phase["shed_total"] == 0
            ):
                broken.append(
                    f"{label}: no typed shedding at "
                    f"{phase['multiplier']:g}x rated load — overload is "
                    f"not being refused loudly"
                )
        return broken

    def invariants_ok(self) -> bool:
        return not self.violations()

    def raise_for_slo(self) -> None:
        """Raise :class:`SLOViolationError` when any gate is broken."""
        broken = self.violations()
        if broken:
            raise SLOViolationError(
                "fleet soak violated its SLO gates: " + "; ".join(broken),
                report=self,
            )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rated_rps": self.rated_rps,
            "slo": {
                "p99_latency_ms": round(self.slo_p99_s * 1e3, 4),
                "availability_floor": self.availability_floor,
                "tolerance_deg": self.tolerance_deg,
            },
            "phases": self.phases,
            "events": [
                {
                    "time_s": round(event.time_s, 6),
                    "action": event.action,
                    "shard": event.shard,
                    "replica": event.replica,
                    "fault": event.fault,
                    "severity": event.severity,
                }
                for event in self.events
            ],
            "faults_armed": dict(sorted(self.faults_armed.items())),
            "fleet": self.fleet_stats,
            "metrics": self.metrics_snapshot,
            "elapsed_sim_s": round(self.elapsed_sim_s, 6),
            "elapsed_wall_s": round(self.elapsed_wall_s, 6),
            "violations": self.violations(),
            "invariants_ok": self.invariants_ok(),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def summary(self) -> str:
        lines = [
            f"fleet soak: seed={self.seed} rated={self.rated_rps:g} rps "
            f"sim={self.elapsed_sim_s:.2f}s wall={self.elapsed_wall_s:.2f}s"
        ]
        for phase in self.phases:
            lines.append(
                f"  {phase['label']:>10}: offered={phase['offered']:5d} "
                f"served={phase['served']:5d} "
                f"avail={phase['availability']:.4f} "
                f"shed={phase['shed_total']:4d} "
                f"p99={phase['latency_p99_ms']:7.2f}ms "
                f"silent-wrong={phase['silent_wrong']}"
            )
        broken = self.violations()
        lines.append(
            "  invariants: PASS" if not broken
            else "  invariants: FAIL\n    " + "\n    ".join(broken)
        )
        return "\n".join(lines)


@dataclass
class _ArmedFault:
    name: str
    severity: float
    guard: contextlib.ExitStack


class FleetSoak:
    """Runs the storm against a fresh fleet and scores the gates."""

    def __init__(
        self,
        config: FleetSoakConfig = FleetSoakConfig(),
        registry: FaultRegistry = REGISTRY,
    ):
        self.config = config
        self.registry = registry
        names = (
            list(config.faults)
            if config.faults is not None
            else [
                spec.name
                for spec in registry.specs()
                if spec.probe == "measurement"
            ]
        )
        for name in names:
            if registry.get(name).probe != "measurement":
                raise ConfigurationError(
                    f"fleet soak can only arm measurement-probe faults, "
                    f"not {name!r}"
                )
        self.fault_names = names

    # -- chaos schedule --------------------------------------------------------

    @staticmethod
    def _chaotic_replicas(
        shard, armed: Dict[int, _ArmedFault], spiked: Dict[int, float]
    ) -> set:
        recovering = {
            replica.index
            for replica in shard.service.replicas
            if replica.breaker.state is not BreakerState.CLOSED
        }
        return set(armed) | set(spiked) | recovering

    def _step_chaos(
        self,
        fleet: HeadingFleet,
        rng: np.random.Generator,
        armed: List[Dict[int, _ArmedFault]],
        spiked: List[Dict[int, float]],
        report: FleetSoakReport,
        stack: contextlib.ExitStack,
        now: float,
    ) -> None:
        cfg = self.config
        budget = (fleet.config.service.replicas - 1) // 2
        # Disarm / unspike first so capacity frees up within this step.
        for shard in fleet.shards:
            for replica_index in list(armed[shard.index]):
                if rng.random() < cfg.disarm_probability:
                    entry = armed[shard.index].pop(replica_index)
                    entry.guard.close()
                    report.events.append(
                        FleetSoakEvent(
                            now, "disarm", shard.index, replica_index,
                            entry.name, entry.severity,
                        )
                    )
            for replica_index in list(spiked[shard.index]):
                if rng.random() < cfg.disarm_probability:
                    spiked[shard.index].pop(replica_index)
                    shard.service.replicas[replica_index].latency_scale = 1.0
                    report.events.append(
                        FleetSoakEvent(
                            now, "unspike", shard.index, replica_index,
                            "latency", 0.0,
                        )
                    )

        def stormy_shards() -> set:
            return {
                shard.index
                for shard in fleet.shards
                if self._chaotic_replicas(
                    shard, armed[shard.index], spiked[shard.index]
                )
            }

        for shard in fleet.shards:
            chaotic = self._chaotic_replicas(
                shard, armed[shard.index], spiked[shard.index]
            )
            shard_open = shard.index in stormy_shards() or (
                len(stormy_shards()) < cfg.max_chaotic_shards
            )
            if (
                shard_open
                and len(chaotic) < budget
                and self.fault_names
                and rng.random() < cfg.arm_probability
            ):
                candidates = [
                    i
                    for i in range(fleet.config.service.replicas)
                    if i not in chaotic
                ]
                replica_index = int(rng.choice(candidates))
                name = self.fault_names[
                    int(rng.integers(len(self.fault_names)))
                ]
                spec = self.registry.get(name)
                severity = float(
                    spec.severities[int(rng.integers(len(spec.severities)))]
                )
                guard = stack.enter_context(contextlib.ExitStack())
                guard.enter_context(
                    self.registry.inject(
                        name,
                        shard.service.replicas[replica_index].compass,
                        severity,
                    )
                )
                armed[shard.index][replica_index] = _ArmedFault(
                    name, severity, guard
                )
                report.faults_armed[name] = (
                    report.faults_armed.get(name, 0) + 1
                )
                report.events.append(
                    FleetSoakEvent(
                        now, "arm", shard.index, replica_index, name,
                        severity,
                    )
                )
            chaotic = self._chaotic_replicas(
                shard, armed[shard.index], spiked[shard.index]
            )
            shard_open = shard.index in stormy_shards() or (
                len(stormy_shards()) < cfg.max_chaotic_shards
            )
            if (
                shard_open
                and len(chaotic) < budget
                and rng.random() < cfg.latency_spike_probability
            ):
                candidates = [
                    i
                    for i in range(fleet.config.service.replicas)
                    if i not in chaotic
                ]
                if candidates:
                    replica_index = int(rng.choice(candidates))
                    shard.service.replicas[replica_index].latency_scale = (
                        cfg.latency_spike_scale
                    )
                    spiked[shard.index][replica_index] = (
                        cfg.latency_spike_scale
                    )
                    report.events.append(
                        FleetSoakEvent(
                            now, "spike", shard.index, replica_index,
                            "latency", cfg.latency_spike_scale,
                        )
                    )

    # -- scoring ---------------------------------------------------------------

    @staticmethod
    def _score_phase(multiplier: float, record: PhaseRecord) -> Dict[str, Any]:
        return {
            "label": record.label,
            "multiplier": multiplier,
            "rps": record.rps,
            "duration_s": record.duration_s,
            "offered": record.offered,
            "served": record.served,
            "availability": round(record.availability, 6),
            "shed": dict(sorted(record.shed.items())),
            "shed_total": record.shed_total,
            "failed": dict(sorted(record.failed.items())),
            "failed_total": record.failed_total,
            "sources": dict(sorted(record.sources.items())),
            "verdicts": dict(sorted(record.verdicts.items())),
            "latency_p50_ms": round(record.latency_percentile(50) * 1e3, 4),
            "latency_p99_ms": round(record.latency_percentile(99) * 1e3, 4),
            "latency_p999_ms": round(
                record.latency_percentile(99.9) * 1e3, 4
            ),
            "worst_error_deg": round(record.worst_error_deg, 6),
            "silent_wrong": record.silent_wrong,
            "flagged_wrong": record.flagged_wrong,
        }

    # -- the soak --------------------------------------------------------------

    def run(self) -> FleetSoakReport:
        """Run the storm on a fresh kernel + fleet; returns the report.

        Injections never leak: every fault still armed when the storm
        ends is reverted before this returns.
        """
        cfg = self.config
        kernel = Kernel()
        fleet = HeadingFleet(cfg.fleet, scheduler=kernel)
        root = np.random.SeedSequence(cfg.seed)
        load_stream, chaos_stream = root.spawn(2)
        chaos_rng = np.random.default_rng(chaos_stream)

        phases = [
            LoadPhase(
                rps=multiplier * cfg.rated_rps,
                duration_s=duration,
                label=f"x{multiplier:g}",
            )
            for multiplier, duration in cfg.phases
        ]
        generator = OpenLoopGenerator(
            fleet,
            phases,
            seed=int(load_stream.generate_state(1)[0]),
            hot_fraction=cfg.hot_fraction,
            hot_scenes=cfg.hot_scenes,
            devices=cfg.devices,
        )
        report = FleetSoakReport(
            seed=cfg.seed,
            rated_rps=cfg.rated_rps,
            slo_p99_s=cfg.fleet.slo.p99_latency_s,
            availability_floor=cfg.fleet.slo.availability_floor,
            tolerance_deg=cfg.fleet.slo.tolerance_deg,
        )
        armed: List[Dict[int, _ArmedFault]] = [
            {} for _ in range(cfg.fleet.shards)
        ]
        spiked: List[Dict[int, float]] = [
            {} for _ in range(cfg.fleet.shards)
        ]
        storm_end = kernel.now() + sum(d for _, d in cfg.phases)

        async def chaos() -> None:
            while kernel.now() < storm_end:
                await kernel.sleep(cfg.chaos_interval_s)
                self._step_chaos(
                    fleet, chaos_rng, armed, spiked, report, stack,
                    kernel.now(),
                )

        async def main() -> List[PhaseRecord]:
            fleet.start()
            chaos_task = (
                kernel.spawn(chaos(), name="chaos") if cfg.chaos else None
            )
            records = await generator.run()
            if chaos_task is not None:
                await chaos_task.future
            await fleet.stop()
            return records

        wall_start = time.perf_counter()
        sim_start = kernel.now()
        with contextlib.ExitStack() as stack:
            records = kernel.run(main())
            # Revert any still-armed injections before scoring.
            for shard_armed in armed:
                for entry in shard_armed.values():
                    entry.guard.close()
                shard_armed.clear()
            for shard in fleet.shards:
                for replica_index in list(spiked[shard.index]):
                    shard.service.replicas[replica_index].latency_scale = 1.0
                spiked[shard.index].clear()
        report.elapsed_wall_s = time.perf_counter() - wall_start
        report.elapsed_sim_s = kernel.now() - sim_start
        report.phases = [
            self._score_phase(multiplier, record)
            for (multiplier, _), record in zip(cfg.phases, records)
        ]
        report.fleet_stats = fleet.stats()
        if fleet.observer.metrics is not None:
            report.metrics_snapshot = fleet.observer.metrics.snapshot()
        return report


__all__ = [
    "FleetSoak",
    "FleetSoakConfig",
    "FleetSoakEvent",
    "FleetSoakReport",
    "OVERLOAD_MULTIPLIER",
]
