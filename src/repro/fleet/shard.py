"""One fleet shard: a heading service, its queue and its time domain.

Each shard owns

* an independently-seeded :class:`~repro.service.HeadingService`
  replica pool on its **own** :class:`SimulatedClock`.  The service
  layer is synchronous — a request advances its clock internally while
  it runs — so sharing one clock would serialize the whole fleet in
  simulated time.  Instead every shard keeps a private service clock
  that the worker re-synchronizes to global (kernel) time at dispatch
  (:meth:`FleetShard.sync`, advance-only so breaker cool-downs stay
  monotone), then charges the measurement's elapsed service time back
  to the global timeline with a kernel sleep.  Net effect: shards
  progress in parallel, requests on one shard serialize — exactly the
  concurrency model of one worker per shard;
* a :class:`~repro.fleet.admission.BoundedShardQueue` waiting room;
* an EWMA estimate of its own service time, which prices the
  deadline-eviction policy (a queue position is worth
  ``est_service_s`` seconds of waiting).
"""

from __future__ import annotations

import dataclasses

from ..service import HeadingService
from ..service.clock import SimulatedClock
from .admission import BoundedShardQueue
from .config import FleetConfig
from .kernel import Scheduler

#: Prior for the per-shard service-time EWMA [s]: one fast-path
#: three-replica quorum request measures ≈8 ms of simulated time.
DEFAULT_SERVICE_ESTIMATE_S = 0.008


class FleetShard:
    """A heading service worker with its queue and private time domain."""

    def __init__(
        self,
        index: int,
        config: FleetConfig,
        seed: int,
        scheduler: Scheduler,
    ):
        self.index = index
        self.name = f"shard-{index}"
        self.clock = SimulatedClock(start_s=scheduler.now())
        self.service = HeadingService(
            dataclasses.replace(config.service, seed=seed),
            clock=self.clock,
        )
        self.queue = BoundedShardQueue(scheduler, config.queue_depth)
        self.est_service_s = DEFAULT_SERVICE_ESTIMATE_S
        self._est_alpha = config.est_alpha
        self.served = 0
        self.failed = 0

    def sync(self, global_now: float) -> None:
        """Advance the service clock to global time (never backwards)."""
        gap = global_now - self.clock.now()
        if gap > 0.0:
            self.clock.advance(gap)

    def note_service_time(self, elapsed_s: float) -> None:
        """Fold one observed service time into the eviction-price EWMA."""
        self.est_service_s += self._est_alpha * (
            elapsed_s - self.est_service_s
        )

    @property
    def occupancy(self) -> float:
        """Queue fill fraction (0..1) — the brownout controller's signal."""
        return self.queue.depth / self.queue.capacity


__all__ = ["DEFAULT_SERVICE_ESTIMATE_S", "FleetShard"]
