"""``repro.fleet`` — the async sharded heading fleet.

The paper's integrated compass is one sensor; this package is what it
takes to serve a *population* of them: an asyncio-style facade that
shards heading requests across independently-seeded
:class:`~repro.service.HeadingService` worker pools (consistent hashing
on the caller's device key), refuses overload explicitly
(:class:`~repro.errors.OverloadError` from a token bucket, bounded
shard queues and deadline eviction), collapses bursts of identical
scenes through request coalescing and a bounded LRU cache whose answers
are bit-identical to fresh measurements, and degrades gracefully under
sustained pressure (observability sampling first, then quorum
step-down — always visible in the verdict, never silent).

Determinism is load-bearing: the whole fleet runs on the virtual-time
:class:`~repro.fleet.kernel.Kernel`, so the storm harness
(:class:`~repro.fleet.soak.FleetSoak`) replays bit-identically from a
seed and its SLO gates are regression tests, not statistics.

See ``docs/fleet.md`` for the architecture tour.
"""

from .admission import (
    BoundedShardQueue,
    QueueItem,
    TokenBucket,
    TokenBucketConfig,
)
from .cache import (
    CacheEntry,
    DEFAULT_FIELD_QUANTUM_UT,
    DEFAULT_HEADING_QUANTUM_DEG,
    HeadingCache,
    quantize_field,
    quantize_heading,
    scene_key,
)
from .config import (
    BrownoutConfig,
    BrownoutController,
    FLEET_COMPASS,
    FleetConfig,
    FleetSLO,
)
from .fleet import (
    FleetResponse,
    HeadingFleet,
    SOURCE_CACHE,
    SOURCE_COALESCED,
    SOURCE_MEASURED,
)
from .hashing import HashRing, stable_hash
from .kernel import (
    AsyncQueue,
    AsyncioScheduler,
    Kernel,
    KernelFuture,
    Scheduler,
    Task,
    run,
)
from .loadgen import LoadPhase, OpenLoopGenerator, PhaseRecord
from .shard import FleetShard
from .soak import (
    FleetSoak,
    FleetSoakConfig,
    FleetSoakEvent,
    FleetSoakReport,
    OVERLOAD_MULTIPLIER,
)

__all__ = [
    "AsyncQueue",
    "AsyncioScheduler",
    "BoundedShardQueue",
    "BrownoutConfig",
    "BrownoutController",
    "CacheEntry",
    "DEFAULT_FIELD_QUANTUM_UT",
    "DEFAULT_HEADING_QUANTUM_DEG",
    "FLEET_COMPASS",
    "FleetConfig",
    "FleetResponse",
    "FleetSLO",
    "FleetShard",
    "FleetSoak",
    "FleetSoakConfig",
    "FleetSoakEvent",
    "FleetSoakReport",
    "HashRing",
    "HeadingCache",
    "HeadingFleet",
    "Kernel",
    "KernelFuture",
    "LoadPhase",
    "OpenLoopGenerator",
    "OVERLOAD_MULTIPLIER",
    "PhaseRecord",
    "QueueItem",
    "run",
    "Scheduler",
    "SOURCE_CACHE",
    "SOURCE_COALESCED",
    "SOURCE_MEASURED",
    "stable_hash",
    "Task",
    "TokenBucket",
    "TokenBucketConfig",
    "quantize_field",
    "quantize_heading",
    "scene_key",
]
