"""The :class:`BatchScene` seam — "one scene × many elements".

PR 1's batch engine was shaped as "many headings × one device": the
sweep APIs accepted heading lists and buried the conversion to axis
fields inside each caller.  Every bulk consumer since (the factory's
calibration turn-table, the fleet's batchable backend, the scenario
runner's per-temperature plants, and now the sensor array) wants the
opposite factoring: *one* frozen description of the magnetic scene that
any number of measuring elements can be driven through.

:class:`BatchScene` is that description: an ordered, immutable list of
axis-field rows [A/m] — exactly the inputs
:meth:`repro.core.compass.IntegratedCompass.measure_components`
consumes.  Constructors cover the three ways scenes arise in practice
(raw components, heading sweeps through a sensor pair, magnitude ×
heading grids), and the record round-trips through JSON so a scene can
be pinned in a test fixture or shipped to a remote worker.

Bit-identity contract: building a scene with :meth:`from_headings` and
measuring it via :meth:`repro.batch.BatchCompass.measure_scene` is
bit-identical to the scalar ``measure_heading`` loop (and to the
pre-seam ``sweep_headings``), because the heading → axis-field
conversion is the very same ``axis_fields_from_tesla`` arithmetic in
the same row order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..sensors.pair import OrthogonalSensorPair


@dataclass(frozen=True)
class BatchScene:
    """One frozen magnetic scene: N axis-field rows [A/m].

    Row ``i`` is the ``(h_x, h_y)`` pair element ``i`` (or sweep point
    ``i``) measures; the scene itself is device-agnostic — any compass,
    replica or array element can be driven through the same record.
    """

    h_x: Tuple[float, ...]
    h_y: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.h_x) != len(self.h_y):
            raise ConfigurationError(
                f"scene rows must pair up: {len(self.h_x)} h_x values "
                f"vs {len(self.h_y)} h_y values"
            )
        for name, values in (("h_x", self.h_x), ("h_y", self.h_y)):
            for value in values:
                if not np.isfinite(value):
                    raise ConfigurationError(
                        f"scene {name} contains a non-finite value: {value!r}"
                    )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_components(
        cls, h_x: Sequence[float], h_y: Sequence[float]
    ) -> "BatchScene":
        """A scene from explicit axis-field rows [A/m]."""
        x = np.asarray(h_x, dtype=float)
        y = np.asarray(h_y, dtype=float)
        if x.ndim != 1 or x.shape != y.shape:
            raise ConfigurationError(
                "h_x and h_y must be 1-D sequences of equal length"
            )
        return cls(
            h_x=tuple(float(v) for v in x),
            h_y=tuple(float(v) for v in y),
        )

    @classmethod
    def from_headings(
        cls,
        sensors: OrthogonalSensorPair,
        headings_deg: Sequence[float],
        field_magnitude_t: float = 50.0e-6,
    ) -> "BatchScene":
        """A heading sweep rendered through ``sensors``' imperfections.

        Bit-identical to what the scalar ``measure_heading`` loop feeds
        ``measure_components`` at each heading, in order.
        """
        heading_array = np.asarray(headings_deg, dtype=float)
        if heading_array.ndim != 1:
            raise ConfigurationError(
                "headings_deg must be a 1-D sequence of angles"
            )
        h_x: List[float] = []
        h_y: List[float] = []
        for heading in heading_array:
            x, y = sensors.axis_fields_from_tesla(
                field_magnitude_t, float(heading)
            )
            h_x.append(x)
            h_y.append(y)
        return cls(h_x=tuple(h_x), h_y=tuple(h_y))

    @classmethod
    def from_pairs(
        cls,
        sensors: OrthogonalSensorPair,
        pairs: Sequence[Tuple[float, float]],
    ) -> "BatchScene":
        """A scene from explicit ``(heading_deg, field_t)`` request pairs.

        The fleet's prewarm path: each row may sit at its own field
        magnitude (quantized scene points), converted row-by-row with
        the same arithmetic ``measure_heading`` uses.
        """
        h_x: List[float] = []
        h_y: List[float] = []
        for heading_deg, field_t in pairs:
            x, y = sensors.axis_fields_from_tesla(
                float(field_t), float(heading_deg)
            )
            h_x.append(x)
            h_y.append(y)
        return cls(h_x=tuple(h_x), h_y=tuple(h_y))

    @classmethod
    def from_magnitudes(
        cls,
        sensors: OrthogonalSensorPair,
        magnitudes_t: Sequence[float],
        headings_deg: Sequence[float],
    ) -> "BatchScene":
        """A magnitude-major magnitude × heading grid (scalar loop order)."""
        if len(magnitudes_t) == 0:
            raise ConfigurationError("need at least one magnitude")
        h_x: List[float] = []
        h_y: List[float] = []
        for magnitude in magnitudes_t:
            for heading in headings_deg:
                x, y = sensors.axis_fields_from_tesla(
                    float(magnitude), float(heading)
                )
                h_x.append(x)
                h_y.append(y)
        return cls(h_x=tuple(h_x), h_y=tuple(h_y))

    # -- access ----------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return len(self.h_x)

    def __len__(self) -> int:
        return len(self.h_x)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The rows as the ``(h_x, h_y)`` float arrays the engine wants."""
        return (
            np.asarray(self.h_x, dtype=float),
            np.asarray(self.h_y, dtype=float),
        )

    # -- JSON round trip -------------------------------------------------------

    def to_dict(self) -> Dict[str, List[float]]:
        return {"h_x": list(self.h_x), "h_y": list(self.h_y)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Sequence[float]]) -> "BatchScene":
        try:
            h_x = payload["h_x"]
            h_y = payload["h_y"]
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"scene payload needs 'h_x' and 'h_y' lists: {exc}"
            ) from exc
        return cls.from_components(h_x, h_y)


__all__ = ["BatchScene"]
