"""The batch-measurement engine behind :class:`BatchCompass`.

A scalar ``IntegratedCompass.measure_heading`` pays the full dense
analogue grid (settle + count periods × 4096 samples, twice — once per
channel) per call, plus Python-level overhead per block.  Sweeps repeat
almost all of that work: the excitation current is identical across
headings, and every per-sample transform (magnetisation, gradient,
band-limit, comparator) is an elementwise or row-wise operation that
vectorizes over a ``(N, n_samples)`` matrix.

The engine exploits exactly that:

* the excitation trace is computed once per ``(grid, channel,
  series_resistance)`` key and cached (with its precomputed
  finite-difference gradient coefficients),
* headings are processed in small row *chunks* so every intermediate
  matrix stays cache-resident (a full 72 × 36864 float64 matrix is
  ~21 MB per temporary — memory-bound and slower than the scalar loop),
* comparator edge extraction runs as one ``maximum.accumulate`` state
  machine per chunk instead of a per-waveform searchsorted pass.

Every arithmetic step reproduces the scalar path bit-for-bit, so the
resulting counts and headings are not merely close — they are identical
(asserted by ``tests/test_batch_sweep.py`` and the BENCH_sweep record).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analog import fastpath
from ..analog.excitation import ExcitationSource
from ..analog.frontend import AnalogFrontEnd
from ..analog.pulse_detector import DetectorOutput
from ..core.accuracy import ErrorStats
from ..core.compass import CompassConfig, IntegratedCompass
from ..core.heading import HeadingMeasurement, headings_evenly_spaced
from ..errors import ConfigurationError
from ..observe import (
    M_BATCH_CHUNKS,
    M_BATCH_ROWS,
    M_CACHE_EVENTS,
    MetricsRegistry,
)
from ..observe.trace import STAGE_MEASURE
from ..sensors.fluxgate import FluxgateSensor
from ..simulation.engine import TimeGrid
from ..simulation.signals import TimeGradient, Trace
from .scene import BatchScene


@dataclass
class _CacheEntry:
    """One cached excitation trace plus its derived gradient operator."""

    current: Trace
    gradient: TimeGradient


class ExcitationTraceCache:
    """Cache of excitation-current traces per ``(grid, channel, load)`` key.

    The excitation waveform depends only on the grid geometry, the selected
    channel and the sensor's series resistance — not on the measurand — so
    within a sweep it is recomputed identically for every heading.  The
    cache belongs to one :class:`BatchCompass` (whose front-end settings are
    fixed), which keeps the keying honest: a differently-configured source
    gets its own cache.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple, _CacheEntry] = {}
        #: Optional metrics registry (set by the owning BatchCompass);
        #: hit/miss counts are always kept — they are two int adds.
        self.metrics: Optional[MetricsRegistry] = None
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(grid: TimeGrid, channel: str, load_resistance: float) -> Tuple:
        return (
            grid.n_periods,
            grid.samples_per_period,
            grid.frequency_hz,
            grid.t_start,
            channel,
            load_resistance,
        )

    def entry(
        self,
        source: ExcitationSource,
        grid: TimeGrid,
        channel: str,
        load_resistance: float,
    ) -> _CacheEntry:
        """The cached excitation trace/gradient, computing it on a miss."""
        key = self.key(grid, channel, load_resistance)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            event = "miss"
            current = source.current(grid, channel, load_resistance)
            entry = _CacheEntry(current=current, gradient=TimeGradient(current.t))
            self._entries[key] = entry
        else:
            self.hits += 1
            event = "hit"
        if self.metrics is not None:
            self.metrics.counter(
                M_CACHE_EVENTS,
                "excitation-trace cache lookups, by outcome",
                ("event",),
            ).inc(event=event)
        return entry

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class MonteCarloResult:
    """Outcome of a batch Monte-Carlo accuracy run.

    ``records[trial]`` holds ``(true_heading_deg, measurement)`` pairs for
    every heading of that trial; ``stats`` pools every heading error.
    """

    records: List[List[Tuple[float, HeadingMeasurement]]]
    stats: ErrorStats


class BatchCompass:
    """Vectorized sweep interface over one :class:`IntegratedCompass`.

    Parameters
    ----------
    compass:
        The compass to drive (or a :class:`CompassConfig` / ``None`` to
        build one).  The batch engine shares the compass's front- and
        back-end instances, so interleaving scalar and batch measurements
        keeps a single noise stream.
    chunk_size:
        Rows processed per numpy pass.  Small chunks keep every
        intermediate ``(chunk, n_samples)`` matrix inside the CPU caches;
        the default of 12 (~3.5 MB per temporary at the default grid) is
        the measured sweet spot — both much larger and chunk-of-1 are
        slower.
    cache:
        Optional shared :class:`ExcitationTraceCache`.  Identically
        configured devices produce identical excitation traces, so an
        array of elements (or a pool of replicas) can hand every member
        the same cache and pay for each trace once — that sharing *is*
        the array's shared excitation scheduling.  ``None`` builds a
        private cache, the pre-array behaviour.
    """

    def __init__(
        self,
        compass: Optional[object] = None,
        chunk_size: int = 12,
        cache: Optional[ExcitationTraceCache] = None,
    ):
        if compass is None:
            compass = IntegratedCompass()
        elif isinstance(compass, CompassConfig):
            compass = IntegratedCompass(compass)
        elif not isinstance(compass, IntegratedCompass):
            raise ConfigurationError(
                "BatchCompass wants an IntegratedCompass, a CompassConfig, or None"
            )
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        self.compass = compass
        self.chunk_size = chunk_size
        self.cache = cache if cache is not None else ExcitationTraceCache()
        self.cache.metrics = compass.observer.metrics

    # -- core batch measurement ------------------------------------------------

    def measure_components_batch(
        self, h_x: np.ndarray, h_y: np.ndarray
    ) -> List[HeadingMeasurement]:
        """Batched :meth:`IntegratedCompass.measure_components`.

        ``h_x[i]``/``h_y[i]`` are the axis fields of measurement ``i``
        [A/m]; the result list is bit-identical (counts, headings, duty
        cycles, noise draws) to calling the scalar method per pair, in
        order.  Hysteretic cores fall back to exactly that scalar loop —
        their state makes row-parallel evaluation meaningless.

        Failure parity: a broken sensor raises the same typed
        :class:`~repro.errors.ReproError` subclass the scalar loop
        raises (asserted by ``tests/test_failure_parity.py``), and every
        row passes through the compass's
        :class:`~repro.core.health.HealthSupervisor` exactly like a
        scalar measurement.  The one scalar-only behaviour is the
        *single-axis* degradation fallback: a channel failure aborts the
        whole batch with the typed error instead of degrading row by
        row, because the failing channel is shared by every row.
        """
        h_x = np.asarray(h_x, dtype=float)
        h_y = np.asarray(h_y, dtype=float)
        if h_x.ndim != 1 or h_x.shape != h_y.shape:
            raise ConfigurationError("h_x and h_y must be 1-D arrays of equal length")
        if h_x.size == 0:
            return []
        compass = self.compass
        if compass.sensors.sensor_x.core.is_hysteretic:
            return [
                compass.measure_components(float(x), float(y))
                for x, y in zip(h_x, h_y)
            ]

        schedule = compass.config.schedule
        grid = compass._channel_grid()
        settle_time = schedule.settle_periods * grid.period
        t0, t1 = grid.window()
        count_window = (t0 + settle_time, t1)
        compass.supervisor.watchdog_guard(grid.n_periods)

        front_end = compass.front_end
        amplifier = front_end.amplifier
        noisy = not amplifier.budget.is_noiseless
        # The scalar loop draws noise x0, y0, x1, y1, …; reserve the same
        # block up front and index into it per channel so realizations
        # match draw-for-draw.
        draw_base = amplifier.consume_noise_draws(2 * h_x.size) if noisy else 0

        observer = compass.observer
        with observer.span(
            "batch.sweep", rows=int(h_x.size), chunk_size=self.chunk_size
        ):
            front_end.enable()
            try:
                detected_x = self._measure_channel_batch(
                    compass.sensors.sensor_x, "x", h_x, grid, draw_base, 0
                )
                detected_y = self._measure_channel_batch(
                    compass.sensors.sensor_y, "y", h_y, grid, draw_base, 1
                )
            finally:
                front_end.disable()

            measurements = []
            recorder = observer.recorder
            for row, (out_x, out_y) in enumerate(zip(detected_x, detected_y)):
                if recorder is not None:
                    recorder.on_inputs(float(h_x[row]), float(h_y[row]))
                with observer.span(
                    STAGE_MEASURE, path="batch", row=row
                ) as span:
                    measurement = compass.assemble_measurement(
                        out_x, out_y, count_window, path="batch"
                    )
                    span.set(heading_deg=measurement.heading_deg)
                measurements.append(measurement)
            if observer.metrics is not None:
                observer.metrics.counter(
                    M_BATCH_ROWS, "measurement rows served by the batch engine"
                ).inc(len(measurements))
        return measurements

    def _measure_channel_batch(
        self,
        sensor: FluxgateSensor,
        channel: str,
        h_values: np.ndarray,
        grid: TimeGrid,
        draw_base: int,
        draw_offset: int,
    ) -> List[DetectorOutput]:
        """One channel's chunked sensor → amplifier → detector pipeline."""
        front_end: AnalogFrontEnd = self.compass.front_end
        front_end.excitation.select_channel(channel)
        front_end.multiplexer.select(channel)
        if front_end.config.fastpath:
            solved = self._solve_channel_fastpath(sensor, channel, h_values, grid)
            if solved is not None:
                return solved
        entry = self.cache.entry(
            front_end.excitation, grid, channel, sensor.params.series_resistance
        )
        current, gradient = entry.current, entry.gradient
        sample_rate = current.sample_rate
        amplifier = front_end.amplifier
        detector = front_end.detector
        noisy = not amplifier.budget.is_noiseless

        observer = self.compass.observer
        metrics = observer.metrics
        outputs: List[DetectorOutput] = []
        with observer.span(f"batch.channel.{channel}", channel=channel) as span:
            for start in range(0, h_values.size, self.chunk_size):
                h_chunk = h_values[start : start + self.chunk_size]
                with observer.span(
                    "batch.chunk", channel=channel, start=start,
                    rows=int(h_chunk.size),
                ):
                    pickup = sensor.simulate_batch(current, h_chunk, gradient)
                    draw_indices: Optional[List[int]] = None
                    if noisy:
                        draw_indices = [
                            draw_base + 2 * (start + row) + draw_offset
                            for row in range(h_chunk.size)
                        ]
                    amplified = amplifier.amplify_batch(
                        pickup, sample_rate, draw_indices
                    )
                    outputs.extend(detector.detect_batch(amplified, current.t))
                if metrics is not None:
                    metrics.counter(
                        M_BATCH_CHUNKS,
                        "vectorized chunks processed, by channel",
                        ("channel",),
                    ).inc(channel=channel)
            span.set(rows=int(h_values.size))
        return outputs

    def _solve_channel_fastpath(
        self,
        sensor: FluxgateSensor,
        channel: str,
        h_values: np.ndarray,
        grid: TimeGrid,
    ) -> Optional[List[DetectorOutput]]:
        """Vectorised closed-form solve for one channel's whole batch.

        Falls back (returns ``None``) for the entire batch when any row
        is ineligible, so routing stays deterministic per sweep.
        """
        front_end: AnalogFrontEnd = self.compass.front_end
        stats = front_end.fastpath_stats
        stats.attempted += int(h_values.size)
        reason = fastpath.ineligibility_reason(front_end, sensor)
        solved: Optional[List[DetectorOutput]] = None
        if reason is None:
            solved = fastpath.solve_channel_batch(
                front_end, sensor, channel, h_values, grid
            )
        if solved is None:
            for _ in range(int(h_values.size)):
                stats.record_fallback(reason or "validity-envelope")
            return None
        stats.used += int(h_values.size)
        observer = self.compass.observer
        with observer.span(
            f"batch.channel.{channel}", channel=channel, fastpath=True
        ) as span:
            span.set(rows=int(h_values.size))
        return solved

    # -- scene / sweep APIs ------------------------------------------------------

    def measure_scene(self, scene: BatchScene) -> List[HeadingMeasurement]:
        """Measure one frozen :class:`~repro.batch.scene.BatchScene`.

        The seam every bulk consumer shares (sweeps, the factory
        turn-table, the service/fleet batch backend, the array): the
        scene's rows go through :meth:`measure_components_batch`
        unchanged, so results are bit-identical to the scalar
        ``measure_components`` loop over the same rows.
        """
        h_x, h_y = scene.arrays()
        return self.measure_components_batch(h_x, h_y)

    def sweep_headings(
        self,
        headings_deg: Optional[Sequence[float]] = None,
        field_magnitude_t: float = 50.0e-6,
        n_points: int = 72,
        start_deg: float = 0.5,
    ) -> List[HeadingMeasurement]:
        """Measure a set of true headings in one batched pass.

        ``headings_deg`` defaults to ``n_points`` evenly spaced headings
        from ``start_deg``; results are ordered like the input and
        bit-identical to a scalar ``measure_heading`` loop.
        """
        if headings_deg is None:
            headings_deg = headings_evenly_spaced(n_points, start_deg)
        scene = BatchScene.from_headings(
            self.compass.sensors, headings_deg, field_magnitude_t
        )
        return self.measure_scene(scene)

    def sweep_magnitudes(
        self,
        magnitudes_t: Sequence[float],
        n_headings: int = 24,
        start_deg: float = 0.5,
    ) -> List[Tuple[float, List[HeadingMeasurement]]]:
        """Heading sweeps at several field magnitudes, one fused batch.

        All ``len(magnitudes) × n_headings`` measurements run as a single
        batch (magnitude-major order, matching the scalar nested loop),
        then are regrouped per magnitude.
        """
        headings = headings_evenly_spaced(n_headings, start_deg)
        scene = BatchScene.from_magnitudes(
            self.compass.sensors, magnitudes_t, headings
        )
        measurements = self.measure_scene(scene)
        grouped = []
        for i, magnitude in enumerate(magnitudes_t):
            grouped.append(
                (magnitude, measurements[i * n_headings : (i + 1) * n_headings])
            )
        return grouped

    @staticmethod
    def monte_carlo(
        base_config: Optional[CompassConfig] = None,
        n_trials: int = 20,
        n_headings: int = 12,
        field_magnitude_t: float = 50.0e-6,
        perturb: Optional[Callable[[CompassConfig, int], CompassConfig]] = None,
        chunk_size: int = 12,
    ) -> "MonteCarloResult":
        """Batched Monte-Carlo run; see :func:`monte_carlo`.

        A static method because each trial perturbs the *configuration*
        and therefore needs its own compass instance.
        """
        return monte_carlo(
            base_config=base_config,
            n_trials=n_trials,
            n_headings=n_headings,
            field_magnitude_t=field_magnitude_t,
            perturb=perturb,
            chunk_size=chunk_size,
        )


def monte_carlo(
    base_config: Optional[CompassConfig] = None,
    n_trials: int = 20,
    n_headings: int = 12,
    field_magnitude_t: float = 50.0e-6,
    perturb: Optional[Callable[[CompassConfig, int], CompassConfig]] = None,
    chunk_size: int = 12,
) -> MonteCarloResult:
    """Batched Monte-Carlo accuracy run (cf. ``monte_carlo_accuracy``).

    Each trial builds a compass from ``perturb(base_config, trial)``
    (default: vary only the noise seed) and batch-sweeps its headings;
    the returned record keeps every individual measurement alongside the
    pooled error statistics.
    """
    if n_trials < 1:
        raise ConfigurationError("need at least one trial")
    base_config = base_config or CompassConfig()

    def default_perturb(config: CompassConfig, trial: int) -> CompassConfig:
        front_end = dataclasses.replace(config.front_end, noise_seed=trial)
        return dataclasses.replace(config, front_end=front_end)

    perturb = perturb or default_perturb
    records: List[List[Tuple[float, HeadingMeasurement]]] = []
    errors: List[float] = []
    for trial in range(n_trials):
        batch = BatchCompass(
            IntegratedCompass(perturb(base_config, trial)), chunk_size=chunk_size
        )
        start = 0.5 + 360.0 * trial / (n_trials * n_headings)
        headings = headings_evenly_spaced(n_headings, start)
        measurements = batch.sweep_headings(
            headings, field_magnitude_t=field_magnitude_t
        )
        trial_records = list(zip(headings, measurements))
        records.append(trial_records)
        errors.extend(m.error_against(h) for h, m in trial_records)
    return MonteCarloResult(records=records, stats=ErrorStats.from_errors(errors))
