"""Vectorized batch-measurement engine (sweep-shaped workloads).

One :class:`BatchCompass` call evaluates N headings / magnitudes /
parameter draws through the full signal chain in a handful of numpy
passes instead of N scalar ``measure_heading`` calls, producing
bit-identical :class:`~repro.core.heading.HeadingMeasurement` records.
"""

from .engine import BatchCompass, ExcitationTraceCache, MonteCarloResult, monte_carlo
from .scene import BatchScene

__all__ = [
    "BatchCompass",
    "BatchScene",
    "ExcitationTraceCache",
    "MonteCarloResult",
    "monte_carlo",
]
