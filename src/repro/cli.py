"""Command-line interface: ``python -m repro <command>``.

Gives the library a bench-top feel without writing code:

* ``measure`` — one compass measurement at a chosen heading/field,
* ``sweep`` — full-circle accuracy sweep with statistics,
* ``power`` — the power budget at a given update rate,
* ``area`` — the Sea-of-Gates floorplan report,
* ``scan`` — boundary-scan test of the MCM, with optional fault injection,
* ``faults`` — the fault-injection campaign (``repro.faults``),
* ``trace`` — run a measurement with tracing on and print the span tree,
* ``metrics`` — exercise both measurement paths and dump the metrics,
* ``serve-sim`` — drive the replicated heading service, optionally with
  a fault armed on one replica, and watch verdicts/breakers live,
* ``soak`` — the seeded chaos soak against the service
  (``repro.faults.chaos``), exiting nonzero if an invariant breaks,
* ``fleet-sim`` — drive the sharded heading fleet with open-loop
  Poisson load on the virtual-time kernel and report shedding,
  cache/coalesce rates and tail latency (``repro.fleet``),
* ``factory`` — mint a seeded lot of device instances with defects
  drawn over the fault registry, run the staged production test
  program (boundary scan → BIST → calibration → environment screen)
  and print the lot report; exits 18 (``EscapeError``) on any test
  escape,
* ``scenario`` — fly a named (or JSON-defined) environment/mission
  scenario through the guarded compensation chain, optionally record a
  replay log, or run the per-scenario fault campaign; ``--strict``
  turns guard degradations into typed raises (exit 19,
  ``ScenarioError``/``EnvelopeError``),
* ``fleet-soak`` — the deterministic fleet storm (chaos + RPS ramp past
  saturation); exits 17 (``SLOViolationError``) when an SLO gate
  breaks,
* ``array`` — one fused measurement through the N-element gradiometer
  array (``repro.array``): per-element screening/voting provenance,
  the weighted-least-squares fusion and the gradiometer residual,
  optionally against a near-field ambush; ``--strict`` turns a
  gradient trip into a typed raise (exit 20, ``ArrayFusionError``),
* ``record`` — run a seeded heading sweep with the replay recorder armed
  and write a self-checking ``.rplog`` capture (``repro.replay``),
* ``replay`` — re-execute a recorded log bit-exactly (digital back-end
  or full chain), failing loudly on any divergence,
* ``diff`` — replay one log through several execution paths (scalar,
  batch, service replica, instrumented…) and report the first divergent
  stage of every mismatching record,
* ``watch`` — advance the watch and render the LCD.

Failures exit with a *typed* code: every :class:`~repro.errors.ReproError`
subclass maps to its own nonzero exit status (see ``EXIT_CODES``) and
prints a one-line message instead of a traceback, so shell scripts and CI
can branch on the failure class.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .btest.interconnect import FaultKind, InterconnectFault, SubstrateHarness
from .core.accuracy import heading_sweep, sweep_stats
from .core.compass import IntegratedCompass
from .core.power import PowerModel
from .digital.display import DisplayMode
from .errors import (
    ArrayFusionError,
    CalibrationError,
    CircuitOpenError,
    ComplianceError,
    ConfigurationError,
    DegradedOperationError,
    DivergenceError,
    EscapeError,
    FaultError,
    OverloadError,
    ProtocolError,
    QuorumError,
    ReplayError,
    ReproError,
    ResourceError,
    ScenarioError,
    ServiceError,
    SLOViolationError,
)
from .faults.campaign import DEFAULT_HEADINGS as DEFAULT_CAMPAIGN_HEADINGS
from .soc.mcm import build_compass_mcm
from .soc.netlist import CompassNetlist
from .soc.sea_of_gates import PAIRS_PER_QUARTER

#: Exit code per failure class.  Most-derived first: the mapping is
#: resolved by MRO walk, so a DegradedOperationError exits 9 even though
#: it is also a FaultError, a ProtocolError and a ReproError.
EXIT_CODES = {
    DegradedOperationError: 9,
    FaultError: 8,
    CalibrationError: 7,
    ResourceError: 6,
    ProtocolError: 5,
    ComplianceError: 4,
    ConfigurationError: 3,
    ReproError: 10,
    CircuitOpenError: 12,
    QuorumError: 13,
    ServiceError: 11,
    DivergenceError: 15,
    ReplayError: 14,
    OverloadError: 16,
    SLOViolationError: 17,
    EscapeError: 18,
    # EnvelopeError subclasses ScenarioError, so both exit 19.
    ScenarioError: 19,
    ArrayFusionError: 20,
}


def exit_code_for(error: ReproError) -> int:
    """The exit status for a typed failure (most-derived class wins)."""
    for klass in type(error).__mro__:
        if klass in EXIT_CODES:
            return EXIT_CODES[klass]
    return 1


def _cmd_measure(args: argparse.Namespace) -> int:
    compass = IntegratedCompass()
    m = compass.measure_heading(args.heading, args.field * 1e-6)
    print(f"true heading : {args.heading:.2f} deg")
    print(f"measured     : {m.heading_deg:.3f} deg ({m.cardinal})")
    print(f"error        : {m.error_against(args.heading):.3f} deg")
    print(f"counts       : x={m.x_count} y={m.y_count}")
    print(f"duty cycles  : x={m.duty_x:.4f} y={m.duty_y:.4f}")
    print(f"LCD          : {compass.read_display().text}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.fastpath:
        from .analog.frontend import FrontEndConfig
        from .core.compass import CompassConfig

        config = CompassConfig(front_end=FrontEndConfig(fastpath=True))
        compass = IntegratedCompass(config)
    else:
        compass = IntegratedCompass()
    points = heading_sweep(
        compass, n_points=args.points, field_magnitude_t=args.field * 1e-6
    )
    stats = sweep_stats(points)
    for p in points:
        print(
            f"{p.true_heading_deg:8.2f} -> {p.measured_heading_deg:8.3f} "
            f"({p.error_deg:+.3f})"
        )
    print(f"max |error| {stats.max_error:.3f} deg, rms {stats.rms_error:.3f} deg "
          f"over {stats.n_samples} headings")
    if args.fastpath:
        fp = compass.front_end.fastpath_stats
        print(f"fastpath: used {fp.used}/{fp.attempted}, "
              f"fallbacks {fp.fallbacks or '{}'}")
    return 0 if stats.meets(1.0) else 1


def _cmd_power(args: argparse.Namespace) -> int:
    model = PowerModel()
    print(model.gated(repetition_period=1.0 / args.rate).as_table())
    print()
    print(model.always_on().as_table())
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    netlist = CompassNetlist()
    array = netlist.place()
    print("raw pairs per block:")
    for name, raw in sorted(netlist.raw_pair_summary().items(), key=lambda kv: -kv[1]):
        print(f"  {name:<18} {raw:6d}")
    print()
    for index, (supply, utilisation) in array.utilisation_report().items():
        print(f"quarter {index}: {supply:<8} {utilisation:6.1%}")
    print(f"digital: {netlist.digital_pairs() / PAIRS_PER_QUARTER:.2f} quarters; "
          f"analog: {netlist.analog_pairs() / PAIRS_PER_QUARTER:.1%} of a quarter")
    return 0


_FAULT_KINDS = {
    "open": FaultKind.OPEN,
    "stuck0": FaultKind.STUCK_0,
    "stuck1": FaultKind.STUCK_1,
}


def _cmd_scan(args: argparse.Namespace) -> int:
    harness = SubstrateHarness(build_compass_mcm())
    if args.fault:
        kind_name, _, net = args.fault.partition(":")
        if kind_name not in _FAULT_KINDS:
            print(f"unknown fault kind {kind_name!r}; "
                  f"use one of {sorted(_FAULT_KINDS)}", file=sys.stderr)
            return 2
        harness.inject(InterconnectFault(_FAULT_KINDS[kind_name], net))
    verdicts = (
        harness.diagnose_with_complement()
        if args.complement
        else harness.diagnose()
    )
    for net, verdict in sorted(verdicts.items()):
        print(f"  {net:<12} {verdict}")
    passed = all(v == "good" for v in verdicts.values())
    print("RESULT:", "PASS" if passed else "FAIL")
    return 0 if passed else 1


def _cmd_faults(args: argparse.Namespace) -> int:
    from .faults import FaultCampaign

    campaign = FaultCampaign(
        headings_deg=args.headings,
        paths=args.paths,
        faults=args.fault or None,
    )
    result = campaign.run()
    summary = result.summary()
    for name in summary["faults"]:
        cells = [c for c in result.cells if c.fault == name]
        outcomes = sorted({c.outcome.value for c in cells})
        print(f"  {name:<32} {len(cells):3d} cells  {', '.join(outcomes)}")
    print(
        f"{summary['cells']} cells: "
        + ", ".join(f"{k}={v}" for k, v in summary["outcomes"].items())
    )
    if args.json:
        result.write_json(args.json)
        print(f"wrote {args.json}")
    for cell in result.silent_wrong():
        print(
            f"SILENT-WRONG: {cell.fault} sev={cell.severity} "
            f"heading={cell.heading_deg} path={cell.path} ({cell.detail})",
            file=sys.stderr,
        )
    return 0 if not result.silent_wrong() and not result.nonconforming() else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .batch import BatchCompass
    from .core.compass import CompassConfig
    from .observe import Observability, render_span_tree

    observe = Observability.on(
        jsonl_path=args.jsonl,
        vcd_path=args.vcd,
    )
    compass = IntegratedCompass(CompassConfig(observe=observe))
    if args.batch:
        BatchCompass(compass).sweep_headings(
            [args.heading], args.field * 1e-6
        )
    else:
        compass.measure_heading(args.heading, args.field * 1e-6)
    ring = compass.observer.ring()
    for root in ring.roots:
        print(render_span_tree(root))
    compass.observer.close()
    if args.jsonl:
        print(f"wrote {args.jsonl}")
    if args.vcd:
        print(f"wrote {args.vcd}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .batch import BatchCompass
    from .core.compass import CompassConfig
    from .core.heading import headings_evenly_spaced
    from .observe import Observability, render_metrics

    compass = IntegratedCompass(
        CompassConfig(observe=Observability.on(tracing=False))
    )
    headings = headings_evenly_spaced(args.points)
    field_t = args.field * 1e-6
    for heading in headings:
        compass.measure_heading(heading, field_t)
    BatchCompass(compass).sweep_headings(headings, field_t)
    if args.campaign:
        from .faults import FaultCampaign

        FaultCampaign(
            headings_deg=(headings[0],),
            faults=args.campaign,
            metrics=compass.observer.metrics,
        ).run()
    print(render_metrics(compass.observer.metrics.snapshot()))
    return 0


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from .faults import REGISTRY
    from .observe import Observability
    from .service import HeadingService, ServiceConfig

    config = ServiceConfig(
        replicas=args.replicas,
        quorum=args.quorum,
        seed=args.seed,
        observe=Observability.on(tracing=False),
    )
    service = HeadingService(config)
    headings = [
        (args.heading + i * 360.0 / args.requests) % 360.0
        for i in range(args.requests)
    ]
    guard = None
    if args.fault:
        if args.on_replica >= config.replicas:
            print(
                f"--on-replica {args.on_replica} out of range for "
                f"{config.replicas} replicas",
                file=sys.stderr,
            )
            return 2
        target = service.replicas[args.on_replica].compass
        guard = REGISTRY.inject(args.fault, target, args.severity)
        guard.__enter__()
        print(
            f"armed {args.fault} (severity {args.severity}) on "
            f"replica-{args.on_replica}"
        )
    try:
        for truth in headings:
            try:
                r = service.measure_heading(truth, args.field * 1e-6)
            except ServiceError as error:
                print(
                    f"{truth:8.2f} -> FAILED "
                    f"({type(error).__name__}: {error})"
                )
                continue
            real = sum(1 for a in r.attempts if a.outcome != "breaker-open")
            print(
                f"{truth:8.2f} -> {r.heading_deg:8.3f}  "
                f"{r.verdict.value:<15} {real} attempts, "
                f"dissent {r.vote.dissent_deg:.3f} deg"
                + (
                    f"  [{'; '.join(dict.fromkeys(r.flags))}]"
                    if r.flags
                    else ""
                )
            )
    finally:
        if guard is not None:
            guard.__exit__(None, None, None)
    print("breakers:", ", ".join(
        f"{name}={state}"
        for name, state in service.breaker_states().items()
    ))
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from .faults import ChaosSoak, SoakConfig
    from .observe import Observability
    from .service import ServiceConfig

    config = SoakConfig(
        requests=args.requests,
        seed=args.seed,
        service=ServiceConfig(
            replicas=args.replicas,
            quorum=args.quorum,
            observe=Observability.on(tracing=False),
        ),
        availability_floor=args.floor,
    )
    report = ChaosSoak(config).run()
    print(report.summary())
    if args.json:
        report.write_json(args.json)
        print(f"wrote {args.json}")
    ok = report.invariants_ok(config.availability_floor, config.tolerance_deg)
    print("RESULT:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def _cmd_fleet_sim(args: argparse.Namespace) -> int:
    from .fleet import (
        FleetConfig,
        HeadingFleet,
        Kernel,
        LoadPhase,
        OpenLoopGenerator,
    )

    config = FleetConfig(shards=args.shards, seed=args.seed)
    kernel = Kernel()
    fleet = HeadingFleet(config, scheduler=kernel)
    generator = OpenLoopGenerator(
        fleet,
        [LoadPhase(rps=args.rps, duration_s=args.duration, label="drive")],
        seed=args.seed,
        hot_fraction=args.hot,
    )

    async def drive():
        fleet.start()
        records = await generator.run()
        await fleet.stop()
        return records

    [record] = kernel.run(drive())
    stats = fleet.stats()
    print(
        f"offered {record.offered} at {args.rps:g} rps over "
        f"{args.duration:g}s simulated ({args.shards} shards, "
        f"seed {args.seed})"
    )
    print(
        f"served {record.served} (availability {record.availability:.4f}), "
        f"shed {record.shed_total}, failed {record.failed_total}"
    )
    if record.shed:
        print("  shed by reason:", ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(record.shed.items())
        ))
    print("  sources:", ", ".join(
        f"{source}={count}"
        for source, count in sorted(record.sources.items())
    ) or "none")
    print("  verdicts:", ", ".join(
        f"{verdict}={count}"
        for verdict, count in sorted(record.verdicts.items())
    ) or "none")
    print(
        f"  latency p50/p99/p999: "
        f"{record.latency_percentile(50) * 1e3:.2f} / "
        f"{record.latency_percentile(99) * 1e3:.2f} / "
        f"{record.latency_percentile(99.9) * 1e3:.2f} ms"
    )
    cache = stats["cache"]
    if cache is not None:
        print(
            f"  cache: {cache['hits']} hits / {cache['misses']} misses "
            f"(hit rate {cache['hit_rate']:.3f})"
        )
    print(f"  brownout level {stats['brownout_level']}, "
          f"{len(stats['brownout_transitions'])} transitions")
    for shard in stats["shards"]:
        print(
            f"  {shard['name']}: served {shard['served']}, "
            f"peak queue {shard['queue_peak_depth']}, "
            f"est service {shard['est_service_ms']:.2f} ms"
        )
    return 0


def _cmd_fleet_soak(args: argparse.Namespace) -> int:
    import json as _json

    from .fleet import FleetConfig, FleetSoak, FleetSoakConfig
    from .observe import Observability

    fleet_config = FleetConfig(
        shards=args.shards,
        seed=args.seed,
        observe=Observability.on(tracing=False),
    )
    overrides = {}
    if args.phase:
        phases = []
        for spec in args.phase:
            multiplier, _, duration = spec.partition(":")
            phases.append((float(multiplier), float(duration)))
        overrides["phases"] = tuple(phases)
    config = FleetSoakConfig(
        fleet=fleet_config,
        rated_rps=args.rated,
        seed=args.seed,
        chaos=not args.no_chaos,
        **overrides,
    )
    report = FleetSoak(config).run()
    print(report.summary())
    if args.json:
        report.write_json(args.json)
        print(f"wrote {args.json}")
    if args.metrics and report.metrics_snapshot is not None:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            _json.dump(report.metrics_snapshot, handle, indent=2,
                       sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.metrics}")
    report.raise_for_slo()  # SLOViolationError -> exit 17
    print("RESULT: PASS")
    return 0


def _cmd_factory(args: argparse.Namespace) -> int:
    import json as _json

    from .factory import (
        DefectDistribution,
        FactoryLine,
        LotConfig,
        defect,
        mint_units,
    )
    from .observe.metrics import MetricsRegistry

    config = LotConfig(
        size=args.units,
        seed=args.seed,
        defects=DefectDistribution(
            rate=args.defect_rate,
            multi_fault_rate=args.multi,
            severity_law=args.severity_law,
        ),
        stages=tuple(args.stages.split(",")),
        calibration_path=args.path,
    )
    units = None
    if args.coupon:
        # Seeded-defect coupons: known-bad units appended to the minted
        # lot, the classic way to audit a test program's catch claim.
        units = mint_units(config)
        for spec in args.coupon:
            name, _, severity = spec.partition(":")
            units.append(
                (defect(name, float(severity) if severity else None),)
            )
    metrics = MetricsRegistry() if args.metrics else None
    line = FactoryLine(config, metrics=metrics)
    report = line.run(units=units)
    print(report.summary())
    print(f"wall clock: {report.wall_s:.2f} s for {report.size} units")
    if args.json:
        report.write_json(args.json, include_units=not args.no_units)
        print(f"wrote {args.json}")
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            _json.dump(metrics.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.metrics}")
    report.raise_for_escapes()  # EscapeError -> exit 18
    print("RESULT: PASS")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    import json as _json

    from .scenario import (
        SCENARIOS,
        Scenario,
        ScenarioCampaign,
        ScenarioRunner,
        get_scenario,
    )

    if args.list:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            armed = "guarded" if scenario.compensation.any_armed else "raw"
            print(f"  {name:<18} {scenario.steps:3d} steps  {armed:<7} "
                  f"{scenario.description}")
        return 0

    if args.campaign:
        campaign = ScenarioCampaign(
            scenarios=(
                [get_scenario(args.scenario)] if args.scenario else None
            ),
        )
        result = campaign.run()
        summary = result.summary()
        for name in summary["scenarios"]:
            clean = result.clean_runs[name]
            print(f"  {name:<18} clean: max |error| "
                  f"{clean['max_abs_error_deg']:6.3f} deg, "
                  f"{clean['degraded_steps']}/{clean['steps']} "
                  "steps degraded")
        print(
            f"{summary['cells']} cells: "
            + ", ".join(f"{k}={v}" for k, v in summary["outcomes"].items())
        )
        if args.json:
            result.write_json(args.json)
            print(f"wrote {args.json}")
        for cell in result.silent_wrong():
            print(
                f"SILENT-WRONG: {cell.fault} sev={cell.severity} "
                f"path={cell.path} ({cell.detail})",
                file=sys.stderr,
            )
        for cell in result.nonconforming():
            print(
                f"NONCONFORMING: {cell.fault} sev={cell.severity} "
                f"path={cell.path} -> {cell.outcome.value} ({cell.detail})",
                file=sys.stderr,
            )
        for name in result.clean_failures:
            print(f"CLEAN-FAILURE: {name} broke its no-fault contract",
                  file=sys.stderr)
        ok = (
            not result.silent_wrong()
            and not result.nonconforming()
            and not result.clean_failures
        )
        print("RESULT:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    if args.file:
        with open(args.file, encoding="utf-8") as handle:
            scenario = Scenario.from_dict(_json.load(handle))
    else:
        scenario = get_scenario(args.scenario or "env-screen")
    runner = ScenarioRunner(
        scenario, strict=args.strict, record_path=args.record
    )
    result = runner.run()  # strict guard trips raise -> exit 19
    for s in result.steps:
        flags = ",".join(s.flags) if s.flags else "-"
        print(f"  step {s.step:3d}  cmd {s.commanded_heading_deg:7.2f}  "
              f"served {s.served_heading_deg:7.2f}  "
              f"err {s.error_deg:+7.3f}  "
              f"{s.true_temperature_c:6.1f} C  {flags}")
    print(f"{scenario.name}: {len(result.steps)} steps, "
          f"max |error| {result.max_abs_error_deg:.3f} deg "
          f"(unflagged steps {result.max_clean_error_deg:.3f}), "
          f"{result.degraded_steps} degraded, "
          f"{result.silent_wrong_steps} silent-wrong")
    if result.drift_m is not None:
        print(f"dead-reckoned closure error {result.drift_m:.1f} m "
              f"over {result.distance_m:.0f} m travelled")
    if args.record:
        print(f"recorded replay log -> {args.record}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    print("RESULT:", "PASS" if result.honest else "FAIL")
    return 0 if result.honest else 1


def _geometry_for(args: argparse.Namespace):
    from .array import ArrayGeometry

    if args.geometry:
        import json as _json

        with open(args.geometry, encoding="utf-8") as handle:
            return ArrayGeometry.from_dict(_json.load(handle))
    if args.elements == 1:
        return ArrayGeometry.single()
    if args.elements == 4:
        return ArrayGeometry.square()
    return ArrayGeometry.linear(args.elements)


def _cmd_array(args: argparse.Namespace) -> int:
    import json as _json

    from .array import ArrayCompass, ArrayConfig, NearFieldSource

    geometry = _geometry_for(args)
    array = ArrayCompass(ArrayConfig(geometry=geometry, strict=args.strict))
    source = None
    if args.ambush:
        bearing = args.ambush_bearing
        import math as _math

        source = NearFieldSource(
            delta_north_ut=args.ambush * _math.cos(_math.radians(bearing)),
            delta_east_ut=args.ambush * _math.sin(_math.radians(bearing)),
            distance_m=args.ambush_distance,
            bearing_deg=bearing,
        )
    # A strict gradiometer trip raises ArrayFusionError -> exit 20.
    fused = array.measure_world(args.heading, args.field, source=source)

    print(f"geometry     : {array.n_elements} elements, "
          f"aperture {geometry.aperture_m:.3f} m")
    if source is not None:
        print(f"ambush       : {source.magnitude_ut:.2f} uT at "
              f"{source.distance_m:.2f} m, bearing {source.bearing_deg:.0f}")
    for report in fused.elements:
        heading = (f"{report.heading_deg:8.3f}"
                   if report.heading_deg is not None else "       -")
        residual = (f"{report.residual_fraction:.5f}"
                    if report.residual_fraction is not None else "-")
        detail = f"  {report.detail}" if report.detail else ""
        print(f"  element {report.index}  {report.status:<8} "
              f"heading {heading}  weight {report.weight:.3f}  "
              f"residual {residual}{detail}")
    flags = ",".join(fused.flags) if fused.flags else "-"
    print(f"fused        : {fused.heading_deg:.3f} deg "
          f"({fused.n_used}/{array.n_elements} elements)")
    print(f"error        : {fused.error_against(args.heading):.3f} deg")
    print(f"field        : {fused.field_a_per_m:.3f} A/m")
    print(f"residual max : {fused.residual_max_fraction:.5f} "
          f"(threshold {array.config.gradient_threshold})")
    print(f"flags        : {flags}")
    if args.json:
        payload = {
            "true_heading_deg": args.heading,
            "field_ut": args.field,
            "geometry": geometry.to_dict(),
            "ambush_ut": source.magnitude_ut if source is not None else 0.0,
            "fused": {
                "heading_deg": fused.heading_deg,
                "field_a_per_m": fused.field_a_per_m,
                "error_deg": fused.error_against(args.heading),
                "flags": list(fused.flags),
                "n_used": fused.n_used,
                "residual_max_fraction": fused.residual_max_fraction,
            },
            "elements": [
                {
                    "index": r.index,
                    "status": r.status,
                    "heading_deg": r.heading_deg,
                    "field_a_per_m": r.field_a_per_m,
                    "residual_fraction": r.residual_fraction,
                    "weight": r.weight,
                    "detail": r.detail,
                }
                for r in fused.elements
            ],
        }
        text = _json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.json}")
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    from .core.compass import CompassConfig
    from .core.heading import headings_evenly_spaced
    from .observe import Observability
    from .replay import read_log

    config = CompassConfig(
        observe=Observability.on(
            tracing=False, metrics=False, replay_path=args.out
        )
    )
    compass = IntegratedCompass(config)
    headings = headings_evenly_spaced(args.points, args.start)
    if args.batch:
        from .batch import BatchCompass

        BatchCompass(compass).sweep_headings(headings, args.field * 1e-6)
    else:
        for truth in headings:
            compass.measure_heading(truth, args.field * 1e-6)
    compass.observer.close()
    reader = read_log(args.out)  # round-trip sanity: reject what we wrote
    print(
        f"recorded {len(reader)} measurements "
        f"({'batch' if args.batch else 'scalar'} path, "
        f"{args.field:.1f} uT) -> {args.out}"
    )
    print(f"fingerprint {reader.header.fingerprint}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .replay import ReplayPlayer, read_log, verify_full

    reader = read_log(args.log)
    print(
        f"{args.log}: {len(reader)} records, "
        f"fingerprint {reader.header.fingerprint}"
    )
    if args.full:
        verified = verify_full(reader, tolerance_deg=args.tolerance)
        print(f"full-chain replay: {verified} records bit-exact")
    else:
        verified = ReplayPlayer(reader.header).verify(
            reader, tolerance_deg=args.tolerance
        )
        print(f"back-end replay: {verified} records bit-exact")
    print("RESULT: PASS")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json as _json

    from .replay import read_log, require_conformance, run_conformance

    reader = read_log(args.log)
    results = run_conformance(
        reader, paths=args.paths, tolerance_deg=args.tolerance
    )
    for result in results:
        verdict = "clean" if result.clean else (
            f"{len(result.divergences)} divergences "
            f"({len(result.silent_wrong)} silent-wrong)"
        )
        print(
            f"  {result.path_a:<12} vs {result.path_b:<12} "
            f"{result.n_records:4d} records  {verdict}"
        )
        for divergence in result.divergences:
            print(f"    {divergence.describe()}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(
                {
                    "log": args.log,
                    "n_records": len(reader),
                    "paths": list(args.paths),
                    "tolerance_deg": args.tolerance,
                    "results": [result.to_dict() for result in results],
                },
                handle,
                indent=2,
            )
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.strict and any(not result.clean for result in results):
        raise DivergenceError(
            "strict conformance: divergences found (see report above)"
        )
    compared = require_conformance(results)  # raises on silent-wrong (exit 15)
    print(f"RESULT: PASS ({compared} record comparisons)")
    return 0


def _cmd_datasheet(args: argparse.Namespace) -> int:
    from .core.datasheet import generate_datasheet

    sheet = generate_datasheet(quick=args.quick)
    print(sheet.render())
    return 0


def _cmd_floorplan(args: argparse.Namespace) -> int:
    from .soc.floorplan import plan_compass

    print(plan_compass().render())
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    compass = IntegratedCompass()
    hours, _, minutes = args.set.partition(":")
    compass.set_time(int(hours), int(minutes))
    compass.back_end.watch.advance_seconds(args.advance)
    compass.select_display(DisplayMode.TIME)
    frame = compass.read_display()
    print(f"LCD: {frame.text[:2]}{':' if frame.colon else ' '}{frame.text[2:]}")
    print(f"internal time: {compass.back_end.watch.time}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DATE'97 integrated fluxgate compass — simulation CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("measure", help="one compass measurement")
    p.add_argument("--heading", type=float, default=123.0,
                   help="true heading in degrees (default 123)")
    p.add_argument("--field", type=float, default=50.0,
                   help="horizontal field in microtesla (default 50)")
    p.set_defaults(func=_cmd_measure)

    p = sub.add_parser("sweep", help="full-circle accuracy sweep")
    p.add_argument("--points", type=int, default=24)
    p.add_argument("--field", type=float, default=50.0)
    p.add_argument("--fastpath", action="store_true",
                   help="use the closed-form analog fast path "
                        "(falls back to the stepped engine when invalid)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("power", help="power budget report")
    p.add_argument("--rate", type=float, default=1.0,
                   help="heading updates per second (default 1)")
    p.set_defaults(func=_cmd_power)

    p = sub.add_parser("area", help="Sea-of-Gates floorplan report")
    p.set_defaults(func=_cmd_area)

    p = sub.add_parser("scan", help="boundary-scan test of the MCM")
    p.add_argument("--fault", default=None, metavar="KIND:NET",
                   help="inject a fault, e.g. open:x_pick_p")
    p.add_argument("--complement", action="store_true",
                   help="use the complement-pass counting sequence")
    p.set_defaults(func=_cmd_scan)

    p = sub.add_parser("faults", help="run the fault-injection campaign")
    p.add_argument("--headings", type=float, nargs="+",
                   default=list(DEFAULT_CAMPAIGN_HEADINGS),
                   help="true headings to sweep per fault cell")
    p.add_argument("--paths", nargs="+", default=["scalar", "batch"],
                   choices=["scalar", "batch"],
                   help="measurement paths to exercise")
    p.add_argument("--fault", action="append", metavar="NAME",
                   help="restrict to one registered fault (repeatable)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full campaign record as JSON")
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser("trace", help="print the span tree of one measurement")
    p.add_argument("--heading", type=float, default=123.0,
                   help="true heading in degrees (default 123)")
    p.add_argument("--field", type=float, default=50.0,
                   help="horizontal field in microtesla (default 50)")
    p.add_argument("--batch", action="store_true",
                   help="trace the vectorized batch path instead of scalar")
    p.add_argument("--jsonl", default=None, metavar="PATH",
                   help="also stream finished spans to a JSONL file")
    p.add_argument("--vcd", default=None, metavar="PATH",
                   help="also render span activity as a VCD waveform")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("metrics",
                       help="exercise both paths and dump the metrics")
    p.add_argument("--points", type=int, default=4,
                   help="headings per path (default 4)")
    p.add_argument("--field", type=float, default=50.0,
                   help="horizontal field in microtesla (default 50)")
    p.add_argument("--campaign", action="append", metavar="FAULT",
                   help="also run a one-heading fault campaign for this "
                        "registered fault (repeatable)")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "serve-sim",
        help="drive the replicated heading service, watching verdicts",
    )
    p.add_argument("--requests", type=int, default=8,
                   help="heading requests to serve (default 8)")
    p.add_argument("--replicas", type=int, default=3)
    p.add_argument("--quorum", type=int, default=2)
    p.add_argument("--heading", type=float, default=0.0,
                   help="first true heading; the rest spread over the "
                        "circle (default 0)")
    p.add_argument("--field", type=float, default=50.0,
                   help="horizontal field in microtesla (default 50)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fault", default=None, metavar="NAME",
                   help="arm this registered fault for the whole run")
    p.add_argument("--severity", type=float, default=3.0,
                   help="severity for --fault (default 3.0)")
    p.add_argument("--on-replica", type=int, default=0,
                   help="replica index the fault is armed on (default 0)")
    p.set_defaults(func=_cmd_serve_sim)

    p = sub.add_parser(
        "soak",
        help="seeded chaos soak against the replicated service",
    )
    p.add_argument("--requests", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--replicas", type=int, default=3)
    p.add_argument("--quorum", type=int, default=2)
    p.add_argument("--floor", type=float, default=0.99,
                   help="availability floor asserted (default 0.99)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the soak report as JSON")
    p.set_defaults(func=_cmd_soak)

    p = sub.add_parser(
        "fleet-sim",
        help="drive the sharded heading fleet with open-loop load",
    )
    p.add_argument("--rps", type=float, default=300.0,
                   help="offered load in requests/s (default 300)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="simulated drive duration in seconds (default 2)")
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--hot", type=float, default=0.5,
                   help="fraction of requests revisiting hot scenes "
                        "(default 0.5)")
    p.set_defaults(func=_cmd_fleet_sim)

    p = sub.add_parser(
        "fleet-soak",
        help="deterministic fleet storm: chaos + RPS ramp past saturation",
    )
    p.add_argument("--rated", type=float, default=300.0,
                   help="rated load in requests/s (default 300)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--phase", action="append", metavar="MULT:SECONDS",
                   help="override the load schedule, e.g. --phase 1:4 "
                        "--phase 4:2 (repeatable; multiples of --rated)")
    p.add_argument("--no-chaos", action="store_true",
                   help="disable the fault/latency storm")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the soak report as JSON")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="write the fleet metrics snapshot as JSON")
    p.set_defaults(func=_cmd_fleet_soak)

    p = sub.add_parser(
        "factory",
        help="run a seeded production lot through the staged test program",
    )
    p.add_argument("--units", type=int, default=1024,
                   help="lot size (default 1024)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--defect-rate", type=float, default=0.06,
                   help="fraction of defective units minted (default 0.06)")
    p.add_argument("--multi", type=float, default=0.10,
                   help="multi-fault tail probability (default 0.10)")
    p.add_argument("--severity-law", default="uniform",
                   choices=["uniform", "worst", "mild"],
                   help="severity draw over each fault's grid")
    p.add_argument("--stages", default="btest,bist,calibration,env",
                   help="comma-separated test program "
                        "(default btest,bist,calibration,env)")
    p.add_argument("--path", default="batch", choices=["batch", "scalar"],
                   help="calibration sweep engine (default batch)")
    p.add_argument("--coupon", action="append", metavar="FAULT[:SEV]",
                   help="append a seeded-defect coupon unit with this "
                        "registered fault (repeatable; severity defaults "
                        "to the fault's detector severity)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the lot report as JSON")
    p.add_argument("--no-units", action="store_true",
                   help="omit per-unit records from --json output")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="write the factory metrics snapshot as JSON")
    p.set_defaults(func=_cmd_factory)

    p = sub.add_parser(
        "scenario",
        help="fly an environment/mission scenario through the guarded "
             "compensation chain",
    )
    p.add_argument("--scenario", default=None, metavar="NAME",
                   help="corpus scenario name (default env-screen; "
                        "see --list)")
    p.add_argument("--file", default=None, metavar="PATH",
                   help="load the scenario from a JSON declaration "
                        "instead of the corpus")
    p.add_argument("--list", action="store_true",
                   help="list the scenario corpus and exit")
    p.add_argument("--campaign", action="store_true",
                   help="run the per-scenario fault campaign (every "
                        "environment fault x severity x scenario); exits "
                        "1 on any silent-wrong or nonconforming cell")
    p.add_argument("--strict", action="store_true",
                   help="tripped compensation guards raise typed errors "
                        "(exit 19) instead of degrading loudly")
    p.add_argument("--record", default=None, metavar="PATH",
                   help="capture every raw measurement of the run into a "
                        "self-checking .rplog")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the mission (or campaign) result as JSON")
    p.set_defaults(func=_cmd_scenario)

    p = sub.add_parser(
        "array",
        help="one fused measurement through the gradiometer array",
    )
    p.add_argument("--heading", type=float, default=123.0,
                   help="true body heading in degrees (default 123)")
    p.add_argument("--field", type=float, default=50.0,
                   help="Earth field magnitude in microtesla (default 50)")
    p.add_argument("--elements", type=int, default=4,
                   help="element count: 1 = the degenerate single-compass "
                        "array, 4 = the reference square, otherwise a "
                        "linear baseline (default 4)")
    p.add_argument("--geometry", default=None, metavar="PATH",
                   help="load an ArrayGeometry JSON declaration instead "
                        "of --elements")
    p.add_argument("--ambush", type=float, default=0.0, metavar="UT",
                   help="park a near-field source of this magnitude [uT "
                        "at the array origin] (default none)")
    p.add_argument("--ambush-distance", type=float, default=1.0,
                   help="source distance in metres (default 1.0)")
    p.add_argument("--ambush-bearing", type=float, default=30.0,
                   help="source bearing in body-frame degrees (default 30)")
    p.add_argument("--strict", action="store_true",
                   help="a gradiometer trip raises ArrayFusionError "
                        "(exit 20) instead of flagging")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the fused report as JSON ('-' for stdout)")
    p.set_defaults(func=_cmd_array)

    p = sub.add_parser(
        "record",
        help="record a heading sweep into a self-checking replay log",
    )
    p.add_argument("--out", required=True, metavar="PATH",
                   help="output .rplog path")
    p.add_argument("--points", type=int, default=8,
                   help="evenly spaced headings to record (default 8)")
    p.add_argument("--start", type=float, default=0.5,
                   help="first heading in degrees (default 0.5)")
    p.add_argument("--field", type=float, default=50.0,
                   help="horizontal field in microtesla (default 50)")
    p.add_argument("--batch", action="store_true",
                   help="record through the vectorized batch path")
    p.set_defaults(func=_cmd_record)

    p = sub.add_parser(
        "replay",
        help="re-execute a recorded log bit-exactly",
    )
    p.add_argument("log", metavar="LOG", help="the .rplog to replay")
    p.add_argument("--full", action="store_true",
                   help="replay the full chain from recorded inputs "
                        "(default: digital back-end from recorded pulses)")
    p.add_argument("--tolerance", type=float, default=0.0,
                   help="heading tolerance in degrees (default 0: bit-exact)")
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser(
        "diff",
        help="replay one log through several paths and diff every stage",
    )
    p.add_argument("log", metavar="LOG", help="the .rplog to diff")
    p.add_argument("--paths", nargs="+", default=["recorded", "scalar"],
                   choices=["recorded", "backend", "scalar", "batch",
                            "instrumented", "service", "fastpath"],
                   help="execution paths to diff pairwise "
                        "(default: recorded scalar)")
    p.add_argument("--tolerance", type=float, default=0.0,
                   help="heading tolerance in degrees (default 0: bit-exact)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the divergence report as JSON")
    p.add_argument("--strict", action="store_true",
                   help="fail on any divergence, not just silent-wrong")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("datasheet", help="generate the measured datasheet")
    p.add_argument("--quick", action="store_true", help="smaller sweeps")
    p.set_defaults(func=_cmd_datasheet)

    p = sub.add_parser("floorplan", help="ASCII die floorplan (Figure 2)")
    p.set_defaults(func=_cmd_floorplan)

    p = sub.add_parser("watch", help="watch/LCD demo")
    p.add_argument("--set", default="12:00", metavar="HH:MM")
    p.add_argument("--advance", type=int, default=0, metavar="SECONDS")
    p.set_defaults(func=_cmd_watch)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error ({type(error).__name__}): {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":
    sys.exit(main())
