"""N-element gradiometer array compass (§ docs/array.md).

The array layer turns N complete
:class:`~repro.core.compass.IntegratedCompass` elements at a fixed
:class:`ArrayGeometry` into one instrument: shared excitation
scheduling across elements, per-element health screening, the same
K-of-N heading vote the service uses, weighted-least-squares fusion of
the surviving field vectors, and first-order gradiometer differencing
that detects near-field disturbances the single-sensor chain can only
flag by magnitude.
"""

from .device import (
    ArrayCompass,
    ArrayConfig,
    ArrayMeasurement,
    ElementReport,
    F_ARRAY_GRADIENT,
    F_ARRAY_REDUNDANCY,
)
from .geometry import ArrayGeometry, NearFieldSource

__all__ = [
    "ArrayCompass",
    "ArrayConfig",
    "ArrayGeometry",
    "ArrayMeasurement",
    "ElementReport",
    "F_ARRAY_GRADIENT",
    "F_ARRAY_REDUNDANCY",
    "NearFieldSource",
]
