"""The N-element gradiometer array compass with least-squares fusion.

:class:`ArrayCompass` wraps N complete
:class:`~repro.core.compass.IntegratedCompass` elements (each its own
sensor pair, front-end, back-end and health supervisor — bulkhead
isolation, exactly like the service's replicas) at an
:class:`~repro.array.geometry.ArrayGeometry`, and serves one fused
heading per scene:

1. **measure** — every element measures its own axis fields.  All
   elements share one excitation schedule and one
   :class:`~repro.batch.ExcitationTraceCache` (identical front-end
   configuration ⇒ identical traces, paid for once).
2. **screen** — elements that raise or come back health-degraded are
   excluded (reported, never silently dropped).
3. **vote** — the surviving *body-frame* headings go through the same
   K-of-N circular median/MAD vote the
   :class:`~repro.service.HeadingService` uses
   (:func:`~repro.service.voting.vote_headings`); outliers — e.g. an
   element twisted in its mount — are rejected.
4. **fuse** — the inlier elements' field *vectors* are combined by
   weighted least squares.  With the common-field design matrix
   ``[I; I; …; I]`` and per-element confidence weights the WLS normal
   equations collapse to the weighted vector mean — that closed form
   is what :meth:`ArrayCompass._fuse` computes.
5. **gradiometer** — per-element deviations from the fused common-mode
   vector are the first-order gradiometer residuals.  The Earth field
   is common-mode across any realistic aperture; a near-field source
   (1/r³) is not.  A residual above ``gradient_threshold`` flags the
   fusion (strict mode refuses with
   :class:`~repro.errors.ArrayFusionError`) — closing part of the
   magnitude-blind ambush window the single-sensor chain documents in
   ``tests/test_property_scenario.py``.

The N=1 array with :meth:`ArrayGeometry.single` degenerates to the
bare compass bit-for-bit: fusion and voting are bypassed and the
element's own measurement is served unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..batch import BatchCompass, BatchScene, ExcitationTraceCache
from ..core.compass import CompassConfig, IntegratedCompass
from ..core.health import HealthConfig
from ..core.heading import HeadingMeasurement
from ..errors import ArrayFusionError, ConfigurationError, ReproError
from ..observe import (
    M_ARRAY_ELEMENTS,
    M_ARRAY_FUSIONS,
    M_ARRAY_RESIDUAL,
    Observability,
    RESIDUAL_BUCKETS_FRACTION,
    build_observer,
)
from ..sensors.pair import OrthogonalSensorPair
from ..service.replica import replica_config
from ..service.voting import VoteResult, vote_headings
from ..units import microtesla_to_a_per_m, wrap_degrees
from .geometry import ArrayGeometry, NearFieldSource

#: Fused-measurement flag: gradiometer residual above the near-field
#: threshold — the elements disagree in a way a uniform field cannot.
F_ARRAY_GRADIENT = "F_ARRAY_GRADIENT"
#: Fused-measurement flag: too few elements survived screening/voting
#: for the redundancy claim to hold (the vote has no breakdown margin).
F_ARRAY_REDUNDANCY = "F_ARRAY_REDUNDANCY"


@dataclass(frozen=True)
class ArrayConfig:
    """Everything configurable about the array in one record.

    Attributes
    ----------
    geometry:
        Element placement; see :class:`~repro.array.ArrayGeometry`.
    element:
        Base configuration every element compass is built from; the
        default enables strict health supervision — an element fails
        loudly and *resilience lives at the array layer*, mirroring
        the service's replica policy.
    seed:
        Root seed; element noise seeds are spawned from it, so a noisy
        array is reproducible and elements never share a noise stream.
    min_elements:
        Fusion refuses (:class:`~repro.errors.ArrayFusionError`) with
        fewer surviving elements than this.
    vote_outlier_deg, vote_mad_scale:
        K-of-N vote parameters (same semantics as the heading
        service's).
    gradient_threshold:
        Near-field detection threshold: maximum per-element residual
        against the fused field, as a fraction of the fused magnitude.
        The default sits above counter-quantisation scatter (~1e-3)
        and below the differential signature a blind-window ambush
        (≥0.4 µT at ~1 m) leaves across a 0.3 m aperture.
    strict:
        When True a gradiometer trip raises instead of flagging.
    chunk_size:
        Batch-engine chunk size for the sweep path.
    observe:
        Array-level observability; every element reports into the same
        registry, labelled per element.
    """

    geometry: ArrayGeometry = field(default_factory=ArrayGeometry.single)
    element: CompassConfig = CompassConfig(health=HealthConfig(enabled=True))
    seed: int = 0
    min_elements: int = 1
    vote_outlier_deg: float = 5.0
    vote_mad_scale: float = 3.0
    gradient_threshold: float = 0.005
    strict: bool = False
    chunk_size: int = 12
    observe: Observability = Observability()

    def __post_init__(self) -> None:
        if self.min_elements < 1:
            raise ConfigurationError("min_elements must be >= 1")
        if self.min_elements > self.geometry.n_elements:
            raise ConfigurationError(
                f"min_elements {self.min_elements} exceeds the "
                f"{self.geometry.n_elements}-element geometry"
            )
        if self.gradient_threshold <= 0.0:
            raise ConfigurationError("gradient_threshold must be positive")


@dataclass(frozen=True)
class ElementReport:
    """One element's contribution to (or exclusion from) a fusion."""

    index: int
    status: str  # "ok" | "fault" | "degraded" | "outlier"
    heading_deg: Optional[float] = None  # body frame (mounting removed)
    field_a_per_m: Optional[float] = None
    residual_fraction: Optional[float] = None
    weight: float = 0.0
    detail: str = ""


@dataclass(frozen=True)
class ArrayMeasurement:
    """One fused array measurement with full per-element provenance."""

    heading_deg: float
    field_a_per_m: float
    flags: Tuple[str, ...]
    elements: Tuple[ElementReport, ...]
    vote: Optional[VoteResult]
    residual_max_fraction: float
    n_used: int

    @property
    def degraded(self) -> bool:
        """True when the fused heading carries any trust-reducing flag."""
        return bool(self.flags)

    def error_against(self, true_heading_deg: float) -> float:
        from ..units import angular_difference_deg

        return abs(
            angular_difference_deg(self.heading_deg, true_heading_deg)
        )


class ArrayCompass:
    """N integrated compasses, one trustworthy fused heading."""

    def __init__(self, config: Optional[ArrayConfig] = None):
        self.config = ArrayConfig() if config is None else config
        geometry = self.config.geometry
        self.observer = build_observer(self.config.observe)
        #: One excitation-trace cache shared by every element's batch
        #: engine — the shared excitation scheduling in code: identical
        #: front-ends key identically, so element 0 pays for each trace
        #: and elements 1..N-1 reuse it.
        self.cache = ExcitationTraceCache()
        self.cache.metrics = self.observer.metrics
        root = np.random.SeedSequence(self.config.seed)
        noise_seeds = root.spawn(geometry.n_elements)
        self.elements: List[IntegratedCompass] = []
        self._batches: List[BatchCompass] = []
        for index in range(geometry.n_elements):
            element = IntegratedCompass(
                replica_config(
                    self.config.element,
                    int(noise_seeds[index].generate_state(1)[0]),
                )
            )
            element.observer = self.observer
            element.front_end.observer = self.observer
            element.back_end.observer = self.observer
            self.elements.append(element)
            self._batches.append(
                BatchCompass(
                    element,
                    chunk_size=self.config.chunk_size,
                    cache=self.cache,
                )
            )
        #: Injection seam for ``array.element_rotated``: *actual* extra
        #: rotation of each element against its nominal mounting [deg].
        #: Fusion keeps assuming the nominal geometry — that mismatch is
        #: the fault.
        self.mount_error_deg: Tuple[float, ...] = (0.0,) * geometry.n_elements

    # -- geometry helpers ------------------------------------------------------

    @property
    def n_elements(self) -> int:
        return self.config.geometry.n_elements

    def _element_sensors(self, index: int) -> OrthogonalSensorPair:
        return self.elements[index].sensors

    def element_headings(self, true_heading_deg: float) -> List[float]:
        """Per-element true headings for a body at ``true_heading_deg``.

        Identity mountings pass the body heading through bit-exactly
        (``x + 0.0 == x``), which is what makes the N=1 degenerate
        array bit-identical to the bare compass.
        """
        mounting = self.config.geometry.mounting_deg
        return [
            true_heading_deg + mounting[i] + self.mount_error_deg[i]
            for i in range(self.n_elements)
        ]

    # -- measurement paths -----------------------------------------------------

    def measure_heading(
        self,
        true_heading_deg: float,
        field_magnitude_t: float = 50.0e-6,
    ) -> ArrayMeasurement:
        """Fused measurement in a uniform field (the clean-bench case).

        The exact per-element arithmetic of
        :meth:`IntegratedCompass.measure_heading` at each element's
        mounted heading, then screen → vote → fuse.
        """
        raw: List[Optional[HeadingMeasurement]] = []
        details: List[str] = []
        with self.observer.span(
            "array.measure", true_heading_deg=true_heading_deg
        ):
            for index, heading in enumerate(
                self.element_headings(true_heading_deg)
            ):
                try:
                    measurement = self.elements[index].measure_heading(
                        heading, field_magnitude_t
                    )
                except ReproError as error:
                    raw.append(None)
                    details.append(f"{type(error).__name__}: {error}")
                else:
                    raw.append(measurement)
                    details.append("")
        return self._fuse(raw, details)

    def measure_world(
        self,
        true_heading_deg: float,
        field_ut: float = 50.0,
        source: Optional[NearFieldSource] = None,
    ) -> ArrayMeasurement:
        """Fused measurement in a world field with an optional disturbance.

        The Earth field points to magnetic north with magnitude
        ``field_ut``; ``source`` adds its per-element 1/r³ deltas.  Each
        element sees its own local magnitude *and* direction — the
        differential part of that disagreement is exactly what the
        gradiometer stage detects.
        """
        if field_ut <= 0.0:
            raise ConfigurationError("field magnitude must be positive")
        deltas = (
            source.deltas_at(self.config.geometry.positions_m)
            if source is not None
            else [(0.0, 0.0)] * self.n_elements
        )
        raw: List[Optional[HeadingMeasurement]] = []
        details: List[str] = []
        element_headings = self.element_headings(true_heading_deg)
        with self.observer.span(
            "array.measure_world",
            true_heading_deg=true_heading_deg,
            anomaly_ut=(source.magnitude_ut if source is not None else 0.0),
        ):
            for index, (d_north, d_east) in enumerate(deltas):
                north = field_ut + d_north
                east = d_east
                magnitude_ut = math.hypot(north, east)
                field_bearing = math.degrees(math.atan2(east, north))
                h_x, h_y = self._element_sensors(index).axis_fields(
                    microtesla_to_a_per_m(magnitude_ut),
                    element_headings[index] - field_bearing,
                )
                try:
                    measurement = self.elements[index].measure_components(
                        h_x, h_y
                    )
                except ReproError as error:
                    raw.append(None)
                    details.append(f"{type(error).__name__}: {error}")
                else:
                    raw.append(measurement)
                    details.append("")
        return self._fuse(raw, details)

    def sweep_headings(
        self,
        headings_deg: Sequence[float],
        field_magnitude_t: float = 50.0e-6,
    ) -> List[ArrayMeasurement]:
        """Fused measurements over many headings, batched per element.

        Each element runs *all* headings in one
        :class:`~repro.batch.BatchScene` pass through its batch engine
        (bit-identical per row to the scalar path); the shared
        excitation cache means the trace cost is paid once for the
        whole array.  Results are fused row by row.
        """
        per_element: List[Optional[List[HeadingMeasurement]]] = []
        element_details: List[str] = []
        n_rows = len(headings_deg)
        with self.observer.span(
            "array.sweep", rows=n_rows, elements=self.n_elements
        ):
            for index in range(self.n_elements):
                mounted = [
                    h + self.config.geometry.mounting_deg[index]
                    + self.mount_error_deg[index]
                    for h in headings_deg
                ]
                scene = BatchScene.from_headings(
                    self._element_sensors(index), mounted, field_magnitude_t
                )
                try:
                    rows = self._batches[index].measure_scene(scene)
                except ReproError as error:
                    per_element.append(None)
                    element_details.append(
                        f"{type(error).__name__}: {error}"
                    )
                else:
                    per_element.append(rows)
                    element_details.append("")
        fused: List[ArrayMeasurement] = []
        for row in range(n_rows):
            raw = [
                rows[row] if rows is not None else None
                for rows in per_element
            ]
            fused.append(self._fuse(raw, element_details))
        return fused

    # -- fusion ----------------------------------------------------------------

    def _fuse(
        self,
        raw: Sequence[Optional[HeadingMeasurement]],
        details: Sequence[str],
    ) -> ArrayMeasurement:
        """Screen → vote → weighted-least-squares fuse → gradiometer."""
        geometry = self.config.geometry
        candidates: List[int] = []
        body_headings: List[float] = []
        statuses: List[str] = ["ok"] * self.n_elements
        for index, measurement in enumerate(raw):
            if measurement is None:
                statuses[index] = "fault"
                continue
            if measurement.degraded:
                statuses[index] = "degraded"
                continue
            candidates.append(index)
            body_headings.append(
                wrap_degrees(
                    measurement.heading_deg - geometry.mounting_deg[index]
                )
            )

        if len(candidates) < max(1, self.config.min_elements):
            self._count_fusion("refused")
            raise ArrayFusionError(
                f"only {len(candidates)} of {self.n_elements} elements "
                f"produced a healthy heading; fusion needs "
                f"{max(1, self.config.min_elements)} "
                f"({', '.join(d for d in details if d) or 'no detail'})"
            )

        vote: Optional[VoteResult] = None
        used = list(candidates)
        if len(candidates) > 1:
            vote = vote_headings(
                body_headings,
                outlier_threshold_deg=self.config.vote_outlier_deg,
                mad_scale=self.config.vote_mad_scale,
            )
            for position in vote.outliers:
                statuses[candidates[position]] = "outlier"
            used = [candidates[position] for position in vote.inliers]
            if len(used) < max(1, self.config.min_elements):
                self._count_fusion("refused")
                raise ArrayFusionError(
                    f"K-of-N vote left {len(used)} agreeing elements of "
                    f"{len(candidates)} healthy; fusion needs "
                    f"{max(1, self.config.min_elements)} "
                    f"(dissent {vote.dissent_deg:.2f} deg, threshold "
                    f"{vote.threshold_deg:.2f} deg)"
                )

        # Weighted least squares for the common-mode field vector.  The
        # model is c_i = C + e_i with per-element confidence w_i; the
        # normal equations for the stacked-identity design collapse to
        # the weighted mean — computed here in closed form.
        weights: dict = {}
        vectors: dict = {}
        for index in used:
            measurement = raw[index]
            body = wrap_degrees(
                measurement.heading_deg - geometry.mounting_deg[index]
            )
            angle = math.radians(body)
            magnitude = measurement.field_estimate_a_per_m
            vectors[index] = (
                magnitude * math.cos(angle),
                magnitude * math.sin(angle),
            )
            # Confidence ∝ integrated counter ticks: more counts = finer
            # angular quantisation.  Identical elements in a uniform
            # field weigh identically (pinned by the hypothesis suite).
            weights[index] = float(
                abs(measurement.x_count) + abs(measurement.y_count)
            ) or 1.0
        total_weight = sum(weights.values())
        norm_weights = {i: w / total_weight for i, w in weights.items()}

        if len(used) == 1:
            # Degenerate fusion: serve the single element's measurement
            # unchanged (bit-identical to the bare compass for the
            # identity geometry).
            index = used[0]
            measurement = raw[index]
            fused_heading = wrap_degrees(
                measurement.heading_deg - geometry.mounting_deg[index]
            )
            fused_magnitude = measurement.field_estimate_a_per_m
            residuals = {index: 0.0}
        else:
            fused_x = sum(
                norm_weights[i] * vectors[i][0] for i in used
            )
            fused_y = sum(
                norm_weights[i] * vectors[i][1] for i in used
            )
            fused_magnitude = math.hypot(fused_x, fused_y)
            if fused_magnitude <= 0.0:
                self._count_fusion("refused")
                raise ArrayFusionError(
                    "fused field vector vanished; element headings are "
                    "uniformly opposed"
                )
            fused_heading = wrap_degrees(
                math.degrees(math.atan2(fused_y, fused_x))
            )
            residuals = {
                i: math.hypot(
                    vectors[i][0] - fused_x, vectors[i][1] - fused_y
                )
                / fused_magnitude
                for i in used
            }

        residual_max = max(residuals.values()) if residuals else 0.0
        flags: List[str] = []
        if len(used) > 1 and residual_max > self.config.gradient_threshold:
            flags.append(F_ARRAY_GRADIENT)
        majority = self.n_elements // 2 + 1
        if self.n_elements > 1 and len(used) < majority:
            flags.append(F_ARRAY_REDUNDANCY)
        if self.config.strict and F_ARRAY_GRADIENT in flags:
            self._count_fusion("refused")
            raise ArrayFusionError(
                f"gradiometer residual {residual_max:.4f} of the fused "
                f"field exceeds the {self.config.gradient_threshold:.4f} "
                f"near-field threshold: the elements disagree in a way a "
                f"uniform Earth field cannot explain"
            )

        reports: List[ElementReport] = []
        for index in range(self.n_elements):
            measurement = raw[index]
            reports.append(
                ElementReport(
                    index=index,
                    status=statuses[index],
                    heading_deg=(
                        wrap_degrees(
                            measurement.heading_deg
                            - geometry.mounting_deg[index]
                        )
                        if measurement is not None
                        else None
                    ),
                    field_a_per_m=(
                        measurement.field_estimate_a_per_m
                        if measurement is not None
                        else None
                    ),
                    residual_fraction=residuals.get(index),
                    weight=norm_weights.get(index, 0.0),
                    detail=details[index],
                )
            )
        self._observe_fusion(reports, flags, residual_max)
        return ArrayMeasurement(
            heading_deg=fused_heading,
            field_a_per_m=fused_magnitude,
            flags=tuple(flags),
            elements=tuple(reports),
            vote=vote,
            residual_max_fraction=residual_max,
            n_used=len(used),
        )

    # -- observability ---------------------------------------------------------

    def _count_fusion(self, status: str) -> None:
        metrics = self.observer.metrics
        if metrics is not None:
            metrics.counter(
                M_ARRAY_FUSIONS,
                "array fusions served, by trust status",
                ("status",),
            ).inc(status=status)

    def _observe_fusion(
        self,
        reports: Sequence[ElementReport],
        flags: Sequence[str],
        residual_max: float,
    ) -> None:
        metrics = self.observer.metrics
        if metrics is None:
            return
        self._count_fusion("flagged" if flags else "ok")
        element_counter = metrics.counter(
            M_ARRAY_ELEMENTS,
            "element contributions to fusions, by outcome",
            ("element", "outcome"),
        )
        for report in reports:
            element_counter.inc(
                element=str(report.index), outcome=report.status
            )
        metrics.histogram(
            M_ARRAY_RESIDUAL,
            "max gradiometer residual per fusion "
            "(fraction of the fused field)",
            (),
            buckets=RESIDUAL_BUCKETS_FRACTION,
        ).observe(residual_max)


__all__ = [
    "ArrayCompass",
    "ArrayConfig",
    "ArrayMeasurement",
    "ElementReport",
    "F_ARRAY_GRADIENT",
    "F_ARRAY_REDUNDANCY",
]
