"""Array geometry: where each element sits and how it is mounted.

An :class:`ArrayGeometry` is pure configuration — a frozen,
JSON-round-trippable record of N element positions [m] and mounting
rotations [deg] in the array's body frame (x = body north, y = body
east).  The geometry is what turns N identical two-axis fluxgate
compasses into a *gradiometer*: the Earth field is common-mode across
any realistic aperture, while a near-field source (a parked car, a
steel door) falls off as 1/r³ and therefore disagrees from element to
element.  :class:`NearFieldSource` models exactly that disturbance
shape for scenarios and benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..units import wrap_degrees


@dataclass(frozen=True)
class ArrayGeometry:
    """Frozen placement of N array elements in the body frame.

    Attributes
    ----------
    positions_m:
        ``(x, y)`` element positions [m]; x points to body north,
        y to body east.
    mounting_deg:
        Mounting rotation of each element, degrees clockwise about the
        vertical axis: an element mounted at ``+90`` reads a heading
        90° above the body's.  Fusion subtracts these nominal values,
        so only *errors* against them (``array.element_rotated``)
        shift the fused heading.
    """

    positions_m: Tuple[Tuple[float, float], ...]
    mounting_deg: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.positions_m) == 0:
            raise ConfigurationError("an array needs at least one element")
        if len(self.positions_m) != len(self.mounting_deg):
            raise ConfigurationError(
                f"{len(self.positions_m)} positions vs "
                f"{len(self.mounting_deg)} mounting rotations"
            )
        for position in self.positions_m:
            if len(position) != 2 or not all(
                math.isfinite(c) for c in position
            ):
                raise ConfigurationError(
                    f"element positions must be finite (x, y) pairs [m], "
                    f"got {position!r}"
                )
        for angle in self.mounting_deg:
            if not math.isfinite(angle):
                raise ConfigurationError(
                    f"mounting rotation must be finite, got {angle!r}"
                )

    # -- introspection ---------------------------------------------------------

    @property
    def n_elements(self) -> int:
        return len(self.positions_m)

    def __len__(self) -> int:
        return len(self.positions_m)

    @property
    def aperture_m(self) -> float:
        """Largest pairwise element separation [m] (0 for N=1)."""
        best = 0.0
        for i, (xi, yi) in enumerate(self.positions_m):
            for xj, yj in self.positions_m[i + 1 :]:
                best = max(best, math.hypot(xi - xj, yi - yj))
        return best

    # -- constructors ----------------------------------------------------------

    @classmethod
    def single(cls) -> "ArrayGeometry":
        """The degenerate N=1 geometry: one element, identity mounting.

        An array with this geometry is bit-identical to the bare
        :class:`~repro.core.compass.IntegratedCompass` (asserted by
        ``tests/test_array.py``).
        """
        return cls(positions_m=((0.0, 0.0),), mounting_deg=(0.0,))

    @classmethod
    def square(cls, side_m: float = 0.3) -> "ArrayGeometry":
        """Four elements on the corners of a square, identity mounting.

        The reference redundancy geometry: breakdown point 1 for the
        K-of-N vote, and a ~``side_m``·√2 gradiometer baseline.
        """
        if side_m <= 0.0:
            raise ConfigurationError("square side must be positive")
        half = side_m / 2.0
        return cls(
            positions_m=(
                (half, half),
                (half, -half),
                (-half, -half),
                (-half, half),
            ),
            mounting_deg=(0.0, 0.0, 0.0, 0.0),
        )

    @classmethod
    def linear(cls, n: int, spacing_m: float = 0.15) -> "ArrayGeometry":
        """``n`` elements on the body-north axis, centred, identity mounting."""
        if n < 1:
            raise ConfigurationError("an array needs at least one element")
        if n > 1 and spacing_m <= 0.0:
            raise ConfigurationError("element spacing must be positive")
        offset = (n - 1) / 2.0
        return cls(
            positions_m=tuple((spacing_m * (i - offset), 0.0) for i in range(n)),
            mounting_deg=(0.0,) * n,
        )

    # -- JSON round trip -------------------------------------------------------

    def to_dict(self) -> Dict[str, List]:
        return {
            "positions_m": [list(p) for p in self.positions_m],
            "mounting_deg": list(self.mounting_deg),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Sequence]) -> "ArrayGeometry":
        try:
            positions = payload["positions_m"]
            mounting = payload["mounting_deg"]
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"geometry payload needs 'positions_m' and 'mounting_deg': {exc}"
            ) from exc
        return cls(
            positions_m=tuple(
                (float(p[0]), float(p[1])) for p in positions
            ),
            mounting_deg=tuple(float(a) for a in mounting),
        )


@dataclass(frozen=True)
class NearFieldSource:
    """A parked magnetic disturbance at finite distance from the array.

    The source contributes ``(delta_north_ut, delta_east_ut)`` [µT] at
    the array origin and scales dipole-like as ``(distance / r)³`` at
    each element — the 1/r³ falloff is what gives the disturbance a
    *gradient* across the aperture while the Earth field stays
    common-mode.  ``bearing_deg`` is the direction from the array
    origin to the source in the body frame.
    """

    delta_north_ut: float
    delta_east_ut: float
    distance_m: float = 1.0
    bearing_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.distance_m <= 0.0:
            raise ConfigurationError("source distance must be positive")

    @property
    def magnitude_ut(self) -> float:
        """Horizontal disturbance magnitude at the array origin [µT]."""
        return math.hypot(self.delta_north_ut, self.delta_east_ut)

    def deltas_at(
        self, positions_m: Sequence[Tuple[float, float]]
    ) -> List[Tuple[float, float]]:
        """Per-element ``(delta_north, delta_east)`` [µT] contributions."""
        bearing = math.radians(wrap_degrees(self.bearing_deg))
        source = (
            self.distance_m * math.cos(bearing),
            self.distance_m * math.sin(bearing),
        )
        deltas: List[Tuple[float, float]] = []
        for x, y in positions_m:
            r = math.hypot(source[0] - x, source[1] - y)
            if r <= 0.0:
                raise ConfigurationError(
                    "an array element sits exactly at the disturbance source"
                )
            scale = (self.distance_m / r) ** 3
            deltas.append(
                (self.delta_north_ut * scale, self.delta_east_ut * scale)
            )
        return deltas


__all__ = ["ArrayGeometry", "NearFieldSource"]
