"""Physical substrate models: geomagnetic field, core magnetics, noise."""

from .earth_field import (
    DipoleEarthField,
    FieldVector,
    LOCATIONS,
    UniformField,
    field_at_location,
)
from .magnetics import (
    CORE_MODELS,
    CoreParameters,
    JilesAthertonCore,
    MagnetisationModel,
    PiecewiseLinearCore,
    TanhCore,
    make_core,
)
from .thermal import (
    NOMINAL_COEFFICIENTS,
    T_REFERENCE_C,
    ThermalCoefficients,
    compass_config_at_temperature,
    oscillator_at_temperature,
    sensor_at_temperature,
)
from .noise import (
    NOISELESS,
    TYPICAL_1997_CMOS,
    NoiseBudget,
    NoiseGenerator,
    thermal_noise_density,
)

__all__ = [
    "NOMINAL_COEFFICIENTS",
    "T_REFERENCE_C",
    "ThermalCoefficients",
    "compass_config_at_temperature",
    "oscillator_at_temperature",
    "sensor_at_temperature",
    "CORE_MODELS",
    "CoreParameters",
    "DipoleEarthField",
    "FieldVector",
    "JilesAthertonCore",
    "LOCATIONS",
    "MagnetisationModel",
    "NOISELESS",
    "NoiseBudget",
    "NoiseGenerator",
    "PiecewiseLinearCore",
    "TanhCore",
    "TYPICAL_1997_CMOS",
    "UniformField",
    "field_at_location",
    "make_core",
    "thermal_noise_density",
]
