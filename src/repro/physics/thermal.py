"""Temperature behaviour of the compass components.

A wrist compass lives between a ski slope and a dashboard; the paper is
silent on temperature, so this extension models the dominant drifts with
standard material coefficients and lets bench TEMP1 sweep the range:

* permalloy anisotropy field HK: decreases with temperature as the
  film's induced anisotropy relaxes (~ −0.1 %/K here),
* permalloy saturation flux density Bs: falls toward the Curie point
  (~ −0.03 %/K far below Tc),
* copper coil resistance: +0.39 %/K,
* the MCM timing resistor (thin film): ±25 ppm/K,
* the on-array MOS capacitor: ±30 ppm/K.

The architectural point the sweep demonstrates: the heading is a *ratio*
of two channels sharing one oscillator, one detector and one counter, so
every common-mode drift cancels; only the (small) shift of the usable
field range survives.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import ConfigurationError

#: Reference temperature for all coefficients [°C].
T_REFERENCE_C = 25.0


@dataclass(frozen=True)
class ThermalCoefficients:
    """First-order temperature coefficients (per kelvin)."""

    hk_per_k: float = -1.0e-3
    bs_per_k: float = -3.0e-4
    copper_resistance_per_k: float = 3.9e-3
    film_resistor_per_k: float = 25.0e-6
    capacitor_per_k: float = 30.0e-6

    def factor(self, coefficient: float, temperature_c: float) -> float:
        """Multiplicative drift factor at a given temperature."""
        return 1.0 + coefficient * (temperature_c - T_REFERENCE_C)


NOMINAL_COEFFICIENTS = ThermalCoefficients()


def sensor_at_temperature(params, temperature_c: float,
                          coefficients: ThermalCoefficients = NOMINAL_COEFFICIENTS):
    """A :class:`~repro.sensors.parameters.FluxgateParameters` copy at T.

    HK, Bs and the copper series resistance drift; the geometry does not.
    """
    _check_temperature(temperature_c)
    core = dataclasses.replace(
        params.core,
        anisotropy_field=params.core.anisotropy_field
        * coefficients.factor(coefficients.hk_per_k, temperature_c),
        saturation_flux_density=params.core.saturation_flux_density
        * coefficients.factor(coefficients.bs_per_k, temperature_c),
    )
    return dataclasses.replace(
        params,
        core=core,
        series_resistance=params.series_resistance
        * coefficients.factor(
            coefficients.copper_resistance_per_k, temperature_c
        ),
    )


def oscillator_at_temperature(osc_params, temperature_c: float,
                              coefficients: ThermalCoefficients = NOMINAL_COEFFICIENTS):
    """An :class:`~repro.analog.waveform.OscillatorParameters` copy at T."""
    _check_temperature(temperature_c)
    return dataclasses.replace(
        osc_params,
        resistance=osc_params.resistance
        * coefficients.factor(coefficients.film_resistor_per_k, temperature_c),
        capacitance=osc_params.capacitance
        * coefficients.factor(coefficients.capacitor_per_k, temperature_c),
    )


def compass_config_at_temperature(base_config, temperature_c: float,
                                  coefficients: ThermalCoefficients = NOMINAL_COEFFICIENTS):
    """A full :class:`~repro.core.compass.CompassConfig` drifted to T."""
    _check_temperature(temperature_c)
    sensor = sensor_at_temperature(base_config.sensor, temperature_c, coefficients)
    oscillator = oscillator_at_temperature(
        base_config.front_end.excitation.oscillator, temperature_c, coefficients
    )
    excitation = dataclasses.replace(
        base_config.front_end.excitation, oscillator=oscillator
    )
    front_end = dataclasses.replace(base_config.front_end, excitation=excitation)
    return dataclasses.replace(base_config, sensor=sensor, front_end=front_end)


def _check_temperature(temperature_c: float) -> None:
    if not -60.0 <= temperature_c <= 125.0:
        raise ConfigurationError(
            f"temperature {temperature_c} °C outside the modelled "
            "-60…125 °C envelope"
        )
