"""Noise and imperfection sources for the mixed-signal simulation.

The paper's accuracy claim ("within one degree", §6) is a *simulated*
claim; our reproduction is only honest if the simulation includes the
non-idealities that dominate a real front-end:

* thermal (white) noise on the pickup voltage,
* 1/f flicker noise from the comparators,
* comparator input offset and hysteresis spread,
* clock jitter on the 4.194304 MHz counter clock,
* quantisation from sampling the pulse-position signal with that clock.

All sources are seeded deterministically so every test and bench is
reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..errors import ConfigurationError

#: Anything ``np.random.default_rng`` accepts as deterministic seed material.
Seed = Union[int, np.random.SeedSequence]

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23


@dataclass(frozen=True)
class NoiseBudget:
    """Noise configuration for an analogue signal chain.

    Attributes
    ----------
    white_density:
        White-noise voltage density [V/√Hz] referred to the pickup output.
    flicker_corner_hz:
        Frequency below which 1/f noise dominates the white floor [Hz].
    comparator_offset_sigma:
        One-sigma spread of comparator input offset [V].
    clock_jitter_rms:
        RMS cycle-to-cycle jitter of the counter clock [s].
    """

    white_density: float = 0.0
    flicker_corner_hz: float = 0.0
    comparator_offset_sigma: float = 0.0
    clock_jitter_rms: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "white_density",
            "flicker_corner_hz",
            "comparator_offset_sigma",
            "clock_jitter_rms",
        ):
            if getattr(self, name) < 0.0:
                raise ConfigurationError(f"{name} must be non-negative")

    @property
    def is_noiseless(self) -> bool:
        return (
            self.white_density == 0.0
            and self.comparator_offset_sigma == 0.0
            and self.clock_jitter_rms == 0.0
        )


#: A quiet bench — the configuration the paper's own ELDO runs used.
NOISELESS = NoiseBudget()

#: A plausible CMOS front-end on the 1997-era Sea-of-Gates process:
#: ~50 nV/√Hz white floor, 1 kHz flicker corner, 2 mV comparator offset,
#: 100 ps clock jitter.
TYPICAL_1997_CMOS = NoiseBudget(
    white_density=50e-9,
    flicker_corner_hz=1e3,
    comparator_offset_sigma=2e-3,
    clock_jitter_rms=100e-12,
)


def thermal_noise_density(resistance: float, temperature_k: float = 300.0) -> float:
    """Johnson-Nyquist voltage noise density of a resistor [V/√Hz].

    The sensor's 77 Ω (measured) to 800 Ω (compliance limit) series
    resistance sets the irreducible noise floor of the pickup signal.
    """
    if resistance < 0.0 or temperature_k <= 0.0:
        raise ConfigurationError("resistance >= 0 and temperature > 0 required")
    return math.sqrt(4.0 * BOLTZMANN * temperature_k * resistance)


class NoiseGenerator:
    """Deterministic sampled-noise generator for a :class:`NoiseBudget`."""

    def __init__(self, budget: NoiseBudget, sample_rate_hz: float, seed: Seed = 0):
        if sample_rate_hz <= 0.0:
            raise ConfigurationError("sample rate must be positive")
        self.budget = budget
        self.sample_rate_hz = sample_rate_hz
        self._rng = np.random.default_rng(seed)
        self._flicker_state = 0.0

    def white(self, n: int) -> np.ndarray:
        """``n`` samples of white voltage noise [V] at the sample rate.

        Sampled white noise of density ``e_n`` over bandwidth ``fs/2`` has
        RMS ``e_n·sqrt(fs/2)``.
        """
        sigma = self.budget.white_density * math.sqrt(self.sample_rate_hz / 2.0)
        if sigma == 0.0:
            return np.zeros(n)
        return self._rng.normal(0.0, sigma, n)

    def flicker(self, n: int) -> np.ndarray:
        """``n`` samples of 1/f noise [V], matched to the white floor at
        the flicker corner frequency.

        Implemented as white noise through a single-pole leaky integrator
        whose pole sits at the flicker corner — a standard cheap
        approximation good to a few dB over the two decades we care about
        (8 kHz excitation down to ~10 Hz measurement rates).
        """
        fc = self.budget.flicker_corner_hz
        if fc <= 0.0 or self.budget.white_density == 0.0:
            return np.zeros(n)
        alpha = math.exp(-2.0 * math.pi * fc / self.sample_rate_hz)
        drive_sigma = self.budget.white_density * math.sqrt(self.sample_rate_hz / 2.0)
        drive = self._rng.normal(0.0, drive_sigma, n)
        out = np.empty(n)
        state = self._flicker_state
        gain = 1.0 - alpha
        for i in range(n):
            state = alpha * state + gain * drive[i]
            out[i] = state
        self._flicker_state = state
        # Normalise so the flicker PSD equals the white PSD at fc.
        return out / max(gain, 1e-12) * gain * math.sqrt(2.0)

    def voltage_noise(self, n: int) -> np.ndarray:
        """Combined white + flicker noise, ``n`` samples [V]."""
        return self.white(n) + self.flicker(n)

    def comparator_offset(self) -> float:
        """Draw one static comparator input offset [V]."""
        sigma = self.budget.comparator_offset_sigma
        if sigma == 0.0:
            return 0.0
        return float(self._rng.normal(0.0, sigma))

    def jittered_edges(self, nominal_edges: np.ndarray) -> np.ndarray:
        """Apply clock jitter to an array of nominal edge times [s]."""
        rms = self.budget.clock_jitter_rms
        edges = np.asarray(nominal_edges, dtype=float)
        if rms == 0.0 or edges.size == 0:
            return edges
        return edges + self._rng.normal(0.0, rms, edges.shape)
