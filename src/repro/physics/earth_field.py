"""Earth magnetic-field model.

The compass of the paper measures "the magnetic field in a horizontal plane
in two perpendicular directions" (§2) and its arctangent readout must be
"insensitive to local variations of the magnitude of the earths magnetic
field ... between 25µT in south America and 65µT near the south pole" (§4).

To exercise that claim we need a field source that can produce

* a horizontal field vector for an arbitrary true heading of the compass,
* realistic worldwide variation of magnitude, declination and inclination.

A full IGRF spherical-harmonic model is overkill for a bench-top compass
simulation; the paper's own validation used a constant applied field.  We
implement a **tilted centred dipole** model — the standard first-order
approximation of the geomagnetic field — plus a set of named location
presets spanning the paper's 25…65 µT range, and a simple uniform-field
source for closed-loop tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..units import MU_0, tesla_to_a_per_m

#: Geomagnetic dipole moment of the earth [A m^2] (epoch ~1995, matching the
#: paper's era; the exact value only scales magnitudes within the IGRF noise).
EARTH_DIPOLE_MOMENT = 7.84e22

#: Mean earth radius [m].
EARTH_RADIUS = 6.371e6

#: Geographic coordinates of the (north) geomagnetic pole, epoch 1995.
GEOMAGNETIC_POLE_LAT_DEG = 79.3
GEOMAGNETIC_POLE_LON_DEG = -71.4


@dataclass(frozen=True)
class FieldVector:
    """The geomagnetic field at a point, in the local tangent frame.

    Attributes
    ----------
    north:
        Horizontal component toward geographic north [T].
    east:
        Horizontal component toward geographic east [T].
    down:
        Vertical component, positive downward [T].
    """

    north: float
    east: float
    down: float

    @property
    def horizontal(self) -> float:
        """Magnitude of the horizontal field component [T]."""
        return math.hypot(self.north, self.east)

    @property
    def total(self) -> float:
        """Total field magnitude [T]."""
        return math.sqrt(self.north**2 + self.east**2 + self.down**2)

    @property
    def declination_deg(self) -> float:
        """Angle from geographic north to magnetic north, east positive [deg]."""
        return math.degrees(math.atan2(self.east, self.north))

    @property
    def inclination_deg(self) -> float:
        """Dip angle below horizontal, positive downward [deg]."""
        return math.degrees(math.atan2(self.down, self.horizontal))

    def horizontal_a_per_m(self) -> float:
        """Horizontal field strength [A/m] — what the fluxgates sense."""
        return tesla_to_a_per_m(self.horizontal)


class UniformField:
    """A uniform horizontal field — the bench setup of the paper's Figure 4.

    Parameters
    ----------
    magnitude_t:
        Horizontal flux-density magnitude [T].
    direction_deg:
        Direction the field points toward, degrees clockwise from the
        sensor frame's +x axis (i.e. magnetic north lies at this angle).
    """

    def __init__(self, magnitude_t: float, direction_deg: float = 0.0):
        if magnitude_t < 0.0:
            raise ConfigurationError("field magnitude must be non-negative")
        self.magnitude_t = magnitude_t
        self.direction_deg = direction_deg

    def vector(self) -> FieldVector:
        """Return the field as a :class:`FieldVector` (no vertical part)."""
        theta = math.radians(self.direction_deg)
        return FieldVector(
            north=self.magnitude_t * math.cos(theta),
            east=self.magnitude_t * math.sin(theta),
            down=0.0,
        )

    def components_for_heading(self, heading_deg: float) -> Tuple[float, float]:
        """Field seen by the compass's x (forward) and y (right) sensors.

        ``heading_deg`` is the true heading of the compass body relative to
        the field direction (clockwise).  Turning the compass clockwise by
        ``h`` rotates the field vector by ``-h`` in the body frame.
        """
        theta = math.radians(heading_deg - self.direction_deg)
        h_forward = self.magnitude_t * math.cos(theta)
        h_right = -self.magnitude_t * math.sin(theta)
        return h_forward, h_right


class DipoleEarthField:
    """Tilted centred-dipole model of the geomagnetic field.

    Produces a :class:`FieldVector` for any geographic latitude/longitude at
    the earth's surface.  Magnitudes range from ~23 µT at the dipole equator
    to ~62 µT at the dipole poles, matching the paper's quoted 25…65 µT
    worldwide spread to first order.
    """

    def __init__(
        self,
        moment: float = EARTH_DIPOLE_MOMENT,
        pole_lat_deg: float = GEOMAGNETIC_POLE_LAT_DEG,
        pole_lon_deg: float = GEOMAGNETIC_POLE_LON_DEG,
        radius: float = EARTH_RADIUS,
    ):
        if moment <= 0.0 or radius <= 0.0:
            raise ConfigurationError("dipole moment and radius must be positive")
        self.moment = moment
        self.pole_lat = math.radians(pole_lat_deg)
        self.pole_lon = math.radians(pole_lon_deg)
        self.radius = radius

    # -- geometry helpers -------------------------------------------------

    def _geomagnetic_colatitude(self, lat: float, lon: float) -> float:
        """Angular distance from the geomagnetic north pole [rad]."""
        cos_c = math.sin(lat) * math.sin(self.pole_lat) + math.cos(lat) * math.cos(
            self.pole_lat
        ) * math.cos(lon - self.pole_lon)
        cos_c = max(-1.0, min(1.0, cos_c))
        return math.acos(cos_c)

    def _pole_bearing(self, lat: float, lon: float) -> float:
        """Bearing from the point toward the geomagnetic pole [rad, cw from N]."""
        d_lon = self.pole_lon - lon
        y = math.sin(d_lon) * math.cos(self.pole_lat)
        x = math.cos(lat) * math.sin(self.pole_lat) - math.sin(lat) * math.cos(
            self.pole_lat
        ) * math.cos(d_lon)
        return math.atan2(y, x)

    # -- public API --------------------------------------------------------

    def field_at(self, lat_deg: float, lon_deg: float) -> FieldVector:
        """Geomagnetic field at a surface point, local tangent frame [T].

        Standard dipole surface field:

        * horizontal component ``B_h = B0 · sin(θm)`` pointing toward the
          geomagnetic pole,
        * vertical component ``B_v = 2 · B0 · cos(θm)`` (down in the
          northern geomagnetic hemisphere),

        with ``θm`` the geomagnetic colatitude and
        ``B0 = µ0·m / (4π·R³)`` ≈ 31 µT.
        """
        if not -90.0 <= lat_deg <= 90.0:
            raise ConfigurationError(f"latitude {lat_deg} out of range [-90, 90]")
        lat = math.radians(lat_deg)
        lon = math.radians(lon_deg)

        b0 = MU_0 * self.moment / (4.0 * math.pi * self.radius**3)
        colat = self._geomagnetic_colatitude(lat, lon)
        bearing = self._pole_bearing(lat, lon)

        b_h = b0 * math.sin(colat)
        b_down = 2.0 * b0 * math.cos(colat)
        return FieldVector(
            north=b_h * math.cos(bearing),
            east=b_h * math.sin(bearing),
            down=b_down,
        )

    def horizontal_uniform(self, lat_deg: float, lon_deg: float) -> UniformField:
        """The horizontal part of the field, as a bench-style uniform source."""
        vec = self.field_at(lat_deg, lon_deg)
        return UniformField(vec.horizontal, vec.declination_deg)


#: Named locations used by the examples and benches.  Values are (lat, lon).
#: They are chosen to span the paper's quoted worldwide magnitude range.
LOCATIONS: Dict[str, Tuple[float, float]] = {
    "enschede": (52.22, 6.89),          # where the chip was designed
    "sao_paulo": (-23.55, -46.63),      # South Atlantic anomaly region, weak field
    "equator_atlantic": (0.0, -25.0),
    "north_cape": (71.17, 25.78),
    "mcmurdo": (-77.85, 166.67),        # near the south magnetic pole, strong field
    "singapore": (1.35, 103.82),
    "san_francisco": (37.77, -122.42),
}


def field_at_location(name: str, model: Optional[DipoleEarthField] = None) -> FieldVector:
    """Look up a preset location and evaluate the dipole model there."""
    if name not in LOCATIONS:
        known = ", ".join(sorted(LOCATIONS))
        raise ConfigurationError(f"unknown location {name!r}; known: {known}")
    lat, lon = LOCATIONS[name]
    if model is None:
        model = DipoleEarthField()
    return model.field_at(lat, lon)
