"""Ferromagnetic core magnetisation models for the fluxgate sensor.

§2.1.1 of the paper describes the operating principle: the permalloy core is
"deliberately driven into saturation periodically with a symmetrical
excitation field"; an external field makes the core stay "saturated longer
in one direction and shorter in the other", shifting the induction-voltage
pulses in time.

The readout chain only depends on *where* the core transitions between
saturation states, so the library offers three magnetisation laws of
increasing fidelity.  All are expressed as ``B(H)`` plus the differential
permeability ``dB/dH`` needed for the pickup voltage ``V = -N·A·dB/dt =
-N·A·(dB/dH)·(dH/dt)``:

``PiecewiseLinearCore``
    The textbook idealisation: constant permeability inside ``|H| < HK``,
    flat saturation outside.  Pulse positions are exact and analytic —
    useful as a ground truth for the timing math.

``TanhCore``
    Smooth anhysteretic saturation ``B = Bs·tanh(H/HK)``; matches the ELDO
    behavioural model the paper derived from bench measurements ("An ELDO
    model was derived from these measurements", §2.1.1).

``JilesAthertonCore``
    A rate-independent hysteresis model (Jiles-Atherton) for ablation
    studies: real permalloy has a (small) coercive field which biases the
    pulse positions; the bench PPOS1 quantifies the effect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class CoreParameters:
    """Magnetic parameters of a fluxgate core.

    Attributes
    ----------
    saturation_flux_density:
        ``Bs`` [T]; electroplated permalloy films reach ~0.7–1.0 T.
    anisotropy_field:
        ``HK`` [A/m]; the field at which the core saturates.  The measured
        Kaw95 device had HK = 10 Oe ≈ 796 A/m — "15 times the magnitude of
        the earth's magnetic field" (§2.1.1) — which the paper scaled down
        in its ELDO model to "a saturation level suitable for our
        application".
    coercive_field:
        ``Hc`` [A/m]; only used by the hysteretic model.
    """

    saturation_flux_density: float
    anisotropy_field: float
    coercive_field: float = 0.0

    def __post_init__(self) -> None:
        if self.saturation_flux_density <= 0.0:
            raise ConfigurationError("saturation flux density must be positive")
        if self.anisotropy_field <= 0.0:
            raise ConfigurationError("anisotropy field must be positive")
        if self.coercive_field < 0.0:
            raise ConfigurationError("coercive field must be non-negative")


class MagnetisationModel:
    """Interface shared by all core magnetisation laws."""

    def __init__(self, params: CoreParameters):
        self.params = params

    def flux_density(self, h: np.ndarray) -> np.ndarray:
        """``B(H)`` [T] for field strength ``h`` [A/m]."""
        raise NotImplementedError

    def flux_density_into(self, h: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``B(H)`` written into ``out`` (which may alias ``h``).

        Same values as :meth:`flux_density`; models override this to skip
        temporaries when the batch engine evaluates multi-megabyte field
        matrices.  ``out`` must have ``h``'s shape and float dtype.
        """
        np.copyto(out, self.flux_density(h))
        return out

    def differential_permeability(self, h: np.ndarray) -> np.ndarray:
        """``dB/dH`` [T·m/A] for field strength ``h`` [A/m]."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any internal state (hysteretic models only)."""

    @property
    def is_hysteretic(self) -> bool:
        return False


class PiecewiseLinearCore(MagnetisationModel):
    """Ideal saturating core: linear for ``|H| < HK``, flat outside."""

    def flux_density(self, h):
        p = self.params
        h = np.asarray(h, dtype=float)
        slope = p.saturation_flux_density / p.anisotropy_field
        return np.clip(h * slope, -p.saturation_flux_density, p.saturation_flux_density)

    def flux_density_into(self, h, out):
        p = self.params
        slope = p.saturation_flux_density / p.anisotropy_field
        np.multiply(h, slope, out=out)
        np.clip(out, -p.saturation_flux_density, p.saturation_flux_density, out=out)
        return out

    def differential_permeability(self, h):
        p = self.params
        h = np.asarray(h, dtype=float)
        slope = p.saturation_flux_density / p.anisotropy_field
        return np.where(np.abs(h) < p.anisotropy_field, slope, 0.0)


class TanhCore(MagnetisationModel):
    """Smooth anhysteretic core: ``B = Bs·tanh(H/HK)``.

    ``HK`` here is the field scale of the tanh; the differential
    permeability at the origin is ``Bs/HK``, matching the piecewise-linear
    model's unsaturated slope so the two are directly comparable.
    """

    def flux_density(self, h):
        p = self.params
        h = np.asarray(h, dtype=float)
        return p.saturation_flux_density * np.tanh(h / p.anisotropy_field)

    def flux_density_into(self, h, out):
        p = self.params
        np.divide(h, p.anisotropy_field, out=out)
        np.tanh(out, out=out)
        out *= p.saturation_flux_density
        return out

    def differential_permeability(self, h):
        p = self.params
        h = np.asarray(h, dtype=float)
        sech2 = 1.0 / np.cosh(h / p.anisotropy_field) ** 2
        return (p.saturation_flux_density / p.anisotropy_field) * sech2


class JilesAthertonCore(MagnetisationModel):
    """Rate-independent hysteresis via the Jiles-Atherton equation.

    A deliberately compact implementation: the anhysteretic curve is the
    same tanh law as :class:`TanhCore` (a Langevin-like saturating
    function), and the irreversible magnetisation follows

        dM_irr/dH = (M_an - M_irr) / (k·δ)

    with ``δ = sign(dH/dt)`` and pinning parameter ``k`` set from the
    requested coercive field.  The model is integrated sample-by-sample via
    :meth:`step`, so it must be driven with a monotone time series (which is
    what the simulation engine does); the stateless array API evaluates a
    whole waveform at once.
    """

    #: Fraction of the magnetisation that responds reversibly.
    REVERSIBILITY = 0.1

    def __init__(self, params: CoreParameters):
        super().__init__(params)
        if params.coercive_field <= 0.0:
            raise ConfigurationError(
                "JilesAthertonCore requires a positive coercive_field"
            )
        self._m_irr = 0.0
        self._h_prev = 0.0

    @property
    def is_hysteretic(self) -> bool:
        return True

    def reset(self) -> None:
        self._m_irr = 0.0
        self._h_prev = 0.0

    def _anhysteretic(self, h: float) -> float:
        p = self.params
        return p.saturation_flux_density * math.tanh(h / p.anisotropy_field)

    def step(self, h: float) -> float:
        """Advance the hysteresis state to field ``h`` and return ``B`` [T].

        The irreversible component integrates ``dM_irr/dH = (M_an −
        M_irr)/(δ·k)`` with the standard physical constraint that pinning
        cannot push magnetisation *against* the anhysteretic pull
        (``δ·(M_an − M_irr) < 0 → dM_irr = 0``).  The explicit integration
        is sub-stepped so each sub-step moves the field by at most
        ``k/5`` — without this the first-order update overshoots whenever
        the driving waveform slews faster than the pinning scale.
        """
        p = self.params
        k = p.coercive_field
        dh_total = h - self._h_prev
        if dh_total != 0.0:
            n_sub = max(1, int(math.ceil(abs(dh_total) / (0.2 * k))))
            dh = dh_total / n_sub
            delta = 1.0 if dh > 0.0 else -1.0
            h_local = self._h_prev
            for _ in range(n_sub):
                h_local += dh
                m_an_local = self._anhysteretic(h_local)
                if delta * (m_an_local - self._m_irr) >= 0.0:
                    self._m_irr += (m_an_local - self._m_irr) * abs(dh) / k
        self._h_prev = h
        m_an = self._anhysteretic(h)
        c = self.REVERSIBILITY
        b = c * m_an + (1.0 - c) * self._m_irr
        return max(-p.saturation_flux_density, min(p.saturation_flux_density, b))

    def flux_density(self, h):
        h = np.asarray(h, dtype=float)
        if h.ndim == 0:
            return np.asarray(self.step(float(h)))
        out = np.empty_like(h)
        for i, hv in enumerate(h.ravel()):
            out.ravel()[i] = self.step(float(hv))
        return out

    def differential_permeability(self, h):
        """Numerical ``dB/dH`` along the driven trajectory.

        Hysteretic permeability depends on history, so this evaluates the
        model along ``h`` and differences the result; callers that need
        dB/dt should difference ``flux_density`` in time instead.
        """
        h = np.asarray(h, dtype=float)
        b = self.flux_density(h)
        if h.size < 2:
            return np.zeros_like(h)
        dh = np.gradient(h)
        db = np.gradient(b)
        with np.errstate(divide="ignore", invalid="ignore"):
            mu = np.where(dh != 0.0, db / dh, 0.0)
        return mu


#: Registry used by configuration code and the ablation bench.
CORE_MODELS = {
    "piecewise": PiecewiseLinearCore,
    "tanh": TanhCore,
    "jiles-atherton": JilesAthertonCore,
}


def make_core(kind: str, params: CoreParameters) -> MagnetisationModel:
    """Instantiate a magnetisation model by registry name."""
    if kind not in CORE_MODELS:
        known = ", ".join(sorted(CORE_MODELS))
        raise ConfigurationError(f"unknown core model {kind!r}; known: {known}")
    return CORE_MODELS[kind](params)
