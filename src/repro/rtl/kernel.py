"""A minimal synchronous-RTL simulation kernel.

The paper's digital section was designed in VHDL (Figure 8 shows the
arctan process) and simulated with the Compass tools (§5).  This kernel
recreates that abstraction level in Python: modules own registers,
describe their next-state function combinationally, and a two-phase
clock edge updates every register atomically — the semantics of a
synchronous VHDL process under a single clock.

The point is not speed (the behavioural models in :mod:`repro.digital`
are faster); it is *checkability*: the RTL modules in
:mod:`repro.rtl.modules` are cycle-by-cycle implementations whose
equivalence to the behavioural models is asserted by tests, the way the
original flow checked VHDL against its specification.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..errors import ConfigurationError, ProtocolError
from ..digital.fixed_point import fits_signed


class Register:
    """One clocked register with two-phase update semantics.

    Reads always return the value latched at the previous clock edge;
    writes go to the *next* value and only become visible after
    :meth:`commit` (called by the kernel at the edge).
    """

    def __init__(self, name: str, width: int, reset: int = 0, signed: bool = True):
        if not 1 <= width <= 64:
            raise ConfigurationError(f"register width {width} out of range")
        self.name = name
        self.width = width
        self.signed = signed
        self.reset_value = self._check(reset)
        self._q = self.reset_value
        self._d: Optional[int] = None

    def _check(self, value: int) -> int:
        if not isinstance(value, int):
            raise ProtocolError(f"register {self.name!r} driven with {value!r}")
        if self.signed:
            if not fits_signed(value, self.width):
                raise ProtocolError(
                    f"register {self.name!r} ({self.width} bits signed) "
                    f"overflow: {value}"
                )
        elif not 0 <= value < (1 << self.width):
            raise ProtocolError(
                f"register {self.name!r} ({self.width} bits unsigned) "
                f"overflow: {value}"
            )
        return value

    @property
    def q(self) -> int:
        """The registered (visible) value."""
        return self._q

    def set_next(self, value: int) -> None:
        """Schedule the value to be latched at the next clock edge."""
        self._d = self._check(value)

    def commit(self) -> None:
        if self._d is not None:
            self._q = self._d
            self._d = None

    def reset(self) -> None:
        self._q = self.reset_value
        self._d = None


class Module:
    """Base class for synchronous RTL modules.

    Subclasses declare registers with :meth:`reg` in ``__init__`` and
    implement :meth:`update`, which reads inputs and register ``.q``
    values and calls ``set_next`` — never mutating ``.q`` directly.
    """

    def __init__(self, name: str):
        self.name = name
        self._registers: List[Register] = []

    def reg(self, name: str, width: int, reset: int = 0, signed: bool = True) -> Register:
        register = Register(f"{self.name}.{name}", width, reset, signed)
        self._registers.append(register)
        return register

    def registers(self) -> List[Register]:
        return list(self._registers)

    def flop_count(self) -> int:
        """Total register bits — the flip-flop count a synthesiser sees."""
        return sum(r.width for r in self._registers)

    def update(self) -> None:
        """Combinational next-state logic; override in subclasses."""
        raise NotImplementedError

    def reset(self) -> None:
        for register in self._registers:
            register.reset()


class ClockDomain:
    """Drives a set of modules from one clock with two-phase edges."""

    def __init__(self, modules: Iterable[Module]):
        self.modules = list(modules)
        if not self.modules:
            raise ConfigurationError("clock domain needs at least one module")
        self.cycle_count = 0

    def reset(self) -> None:
        for module in self.modules:
            module.reset()
        self.cycle_count = 0

    def tick(self, cycles: int = 1) -> int:
        """Advance ``cycles`` clock edges; returns the total cycle count.

        Phase 1: every module evaluates its next-state function against
        the *old* register values.  Phase 2: all registers commit.  This
        is exactly the signal/variable separation that makes the VHDL of
        Figure 8 race-free.
        """
        if cycles < 0:
            raise ConfigurationError("cannot clock backwards")
        for _ in range(cycles):
            for module in self.modules:
                module.update()
            for module in self.modules:
                for register in module.registers():
                    register.commit()
            self.cycle_count += 1
        return self.cycle_count

    def run_until(
        self, condition: Callable[[], bool], max_cycles: int = 100_000
    ) -> int:
        """Clock until ``condition()`` holds; returns cycles consumed.

        Raises :class:`~repro.errors.ProtocolError` on timeout — a
        hardware watchdog, not an infinite loop.
        """
        start = self.cycle_count
        while not condition():
            if self.cycle_count - start >= max_cycles:
                raise ProtocolError(
                    f"condition not reached within {max_cycles} cycles"
                )
            self.tick()
        return self.cycle_count - start
