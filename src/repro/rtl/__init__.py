"""Synchronous-RTL kernel and register-transfer digital implementations."""

from .kernel import ClockDomain, Module, Register
from .modules import (
    RtlCordic,
    RtlDivider,
    RtlMeasurementSequencer,
    RtlUpDownCounter,
)

__all__ = [
    "ClockDomain",
    "Module",
    "Register",
    "RtlCordic",
    "RtlDivider",
    "RtlMeasurementSequencer",
    "RtlUpDownCounter",
]
