"""Register-transfer-level implementations of the digital blocks.

Each module here is a cycle-by-cycle implementation of a block that
:mod:`repro.digital` models behaviourally; the test suite proves them
equivalent.  The CORDIC is a line-by-line transliteration of the VHDL of
Figure 8 into the kernel's register discipline — one ``while`` iteration
per clock cycle, ``ready`` asserted after the eighth, exactly as the
paper's "It used only 8 cycles" describes.
"""

from __future__ import annotations


from ..digital.atan_rom import ANGLE_FRAC_BITS, build_rom
from ..digital.fixed_point import truncating_shift_right
from ..errors import ConfigurationError, ProtocolError
from ..units import CORDIC_ITERATIONS
from .kernel import Module

# FSM encodings (would be one-hot in the silicon).
_IDLE, _RUN, _DONE = 0, 1, 2


class RtlCordic(Module):
    """The Figure 8 arctan datapath as a clocked FSM.

    Interface (sampled at each rising edge):

    * ``start`` — pulse high for one cycle with ``x_in``/``y_in`` valid,
    * ``ready`` — combinational, high while the result is valid,
    * ``result`` — the accumulated angle in ROM units (1/256 degree).
    """

    def __init__(
        self,
        iterations: int = CORDIC_ITERATIONS,
        input_scale_bits: int = 7,
        register_width: int = 24,
    ):
        super().__init__("cordic")
        if iterations < 1 or iterations > 15:
            raise ConfigurationError("iterations must be 1..15")
        self.iterations = iterations
        self.input_scale_bits = input_scale_bits
        self.rom = build_rom(iterations, ANGLE_FRAC_BITS)

        self.state = self.reg("state", 2, reset=_IDLE, signed=False)
        self.count = self.reg("count", 4, signed=False)
        self.x_reg = self.reg("x_reg", register_width)
        self.y_reg = self.reg("y_reg", register_width)
        self.res = self.reg("res", 16, signed=False)

        # Input port signals (driven by the testbench/controller).
        self.start = 0
        self.x_in = 0
        self.y_in = 0

    # -- port views -----------------------------------------------------------

    @property
    def ready(self) -> bool:
        return self.state.q == _DONE

    @property
    def busy(self) -> bool:
        return self.state.q == _RUN

    @property
    def result(self) -> int:
        if not self.ready:
            raise ProtocolError("CORDIC result read before ready")
        return self.res.q

    @property
    def result_degrees(self) -> float:
        return self.result / float(1 << ANGLE_FRAC_BITS)

    # -- next-state logic ------------------------------------------------------

    def update(self) -> None:
        state = self.state.q
        if state == _IDLE:
            if self.start:
                if self.x_in < 0 or self.y_in < 0:
                    raise ProtocolError(
                        "RTL CORDIC takes first-quadrant inputs; fold "
                        "quadrants in the surrounding logic"
                    )
                self.x_reg.set_next(self.x_in << self.input_scale_bits)
                self.y_reg.set_next(self.y_in << self.input_scale_bits)
                self.res.set_next(0)
                self.count.set_next(0)
                self.state.set_next(_RUN)
        elif state == _RUN:
            i = self.count.q
            x_prev = self.x_reg.q
            y_prev = self.y_reg.q
            if y_prev >= truncating_shift_right(x_prev, i):
                self.y_reg.set_next(y_prev - truncating_shift_right(x_prev, i))
                self.x_reg.set_next(x_prev + truncating_shift_right(y_prev, i))
                self.res.set_next(self.res.q + self.rom[i])
            self.count.set_next(i + 1)
            if i + 1 == self.iterations:
                self.state.set_next(_DONE)
        elif state == _DONE:
            if self.start:
                # Back-to-back operation: a new start reloads directly.
                self.x_reg.set_next(self.x_in << self.input_scale_bits)
                self.y_reg.set_next(self.y_in << self.input_scale_bits)
                self.res.set_next(0)
                self.count.set_next(0)
                self.state.set_next(_RUN)


class RtlUpDownCounter(Module):
    """The 4.194304 MHz pulse counter as RTL.

    Ports: ``enable`` (count this cycle), ``up`` (the sampled detector
    level), ``clear`` (synchronous reset).  One count per enabled cycle.
    """

    def __init__(self, width: int = 16):
        super().__init__("udcounter")
        self.value = self.reg("value", width)
        self.enable = 0
        self.up = 0
        self.clear = 0

    def update(self) -> None:
        if self.clear:
            self.value.set_next(0)
        elif self.enable:
            delta = 1 if self.up else -1
            self.value.set_next(self.value.q + delta)

    @property
    def count(self) -> int:
        return self.value.q


class RtlDivider(Module):
    """The 2^22 → 1 Hz watch divider as a single synchronous counter.

    ``second_pulse`` is high for the one cycle in which the chain wraps —
    the carry the time-of-day counter consumes.
    """

    def __init__(self, stages: int = 22):
        super().__init__("divider")
        if not 1 <= stages <= 32:
            raise ConfigurationError("stages must be 1..32")
        self.stages = stages
        self.value = self.reg("value", stages, signed=False)
        self._wrapped = False

    def update(self) -> None:
        nxt = self.value.q + 1
        if nxt == (1 << self.stages):
            self.value.set_next(0)
            self._wrapped = True
        else:
            self.value.set_next(nxt)
            self._wrapped = False

    @property
    def second_pulse(self) -> bool:
        """True during the cycle whose commit wraps the chain."""
        return self.value.q == (1 << self.stages) - 1

    def stage_output(self, stage: int) -> int:
        if not 0 <= stage < self.stages:
            raise ConfigurationError(f"stage {stage} out of range")
        return (self.value.q >> stage) & 1


class RtlMeasurementSequencer(Module):
    """The §4 control FSM as RTL: gates, multiplexes and fires the CORDIC.

    A compact version of :class:`repro.digital.control.CompassController`
    at clock granularity.  State dwell lengths are given in cycles so the
    testbench can scale them down; the enables are combinational views of
    the state register — glitch-free by construction.
    """

    S_IDLE, S_SETTLE_X, S_COUNT_X, S_SETTLE_Y, S_COUNT_Y, S_COMPUTE = range(6)

    def __init__(self, settle_cycles: int, count_cycles: int, compute_cycles: int):
        super().__init__("sequencer")
        for name, value in (
            ("settle_cycles", settle_cycles),
            ("count_cycles", count_cycles),
            ("compute_cycles", compute_cycles),
        ):
            if value < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        self.settle_cycles = settle_cycles
        self.count_cycles = count_cycles
        self.compute_cycles = compute_cycles
        self.state = self.reg("state", 3, reset=self.S_IDLE, signed=False)
        self.timer = self.reg("timer", 32, signed=False)
        self.go = 0

    def _advance(self, next_state: int, dwell: int) -> None:
        if self.timer.q + 1 >= dwell:
            self.state.set_next(next_state)
            self.timer.set_next(0)
        else:
            self.timer.set_next(self.timer.q + 1)

    def update(self) -> None:
        state = self.state.q
        if state == self.S_IDLE:
            if self.go:
                self.state.set_next(self.S_SETTLE_X)
                self.timer.set_next(0)
        elif state == self.S_SETTLE_X:
            self._advance(self.S_COUNT_X, self.settle_cycles)
        elif state == self.S_COUNT_X:
            self._advance(self.S_SETTLE_Y, self.count_cycles)
        elif state == self.S_SETTLE_Y:
            self._advance(self.S_COUNT_Y, self.settle_cycles)
        elif state == self.S_COUNT_Y:
            self._advance(self.S_COMPUTE, self.count_cycles)
        elif state == self.S_COMPUTE:
            self._advance(self.S_IDLE, self.compute_cycles)

    # -- combinational enables (§4's power gates) ------------------------------

    @property
    def analog_enable(self) -> bool:
        return self.state.q in (
            self.S_SETTLE_X, self.S_COUNT_X, self.S_SETTLE_Y, self.S_COUNT_Y
        )

    @property
    def counter_enable(self) -> bool:
        return self.state.q in (self.S_COUNT_X, self.S_COUNT_Y)

    @property
    def cordic_start(self) -> bool:
        """One-cycle pulse on entry to COMPUTE (timer still zero)."""
        return self.state.q == self.S_COMPUTE and self.timer.q == 0

    @property
    def active_channel(self) -> str:
        if self.state.q in (self.S_SETTLE_X, self.S_COUNT_X):
            return "x"
        if self.state.q in (self.S_SETTLE_Y, self.S_COUNT_Y):
            return "y"
        return "-"

    @property
    def idle(self) -> bool:
        return self.state.q == self.S_IDLE
