#!/usr/bin/env python
"""Regenerate the golden factory lot (``tests/golden/factory_lot.json``).

The golden lot is the pinned 256-unit seeded lot of
:func:`repro.factory.golden_lot_config` run through the default staged
test program on the batch calibration path.  Its serialised
:class:`~repro.factory.LotReport` must be **bit-identical** across
runs, machines, and the scalar/batch calibration paths
(``tests/test_factory.py`` enforces all three), so this file only ever
changes when the physics, the fault registry, or the program itself
changes — and then the diff is the review artifact.

Usage::

    PYTHONPATH=src python scripts/regen_golden_lot.py
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.factory import FactoryLine, golden_lot_config  # noqa: E402

GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "tests"
    / "golden"
    / "factory_lot.json"
)


def main() -> int:
    config = golden_lot_config()
    report = FactoryLine(config).run()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(report.to_json(), encoding="utf-8")
    print(report.summary())
    print(f"wrote {GOLDEN_PATH} ({report.wall_s:.2f} s)")
    if report.escapes:
        print("GOLDEN LOT HAS ESCAPES — do not commit this", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
