#!/usr/bin/env python
"""Regenerate the golden scenario corpus (``tests/golden/scenarios/``).

Every corpus scenario (:data:`repro.scenario.SCENARIOS`) is flown once
with ``.rplog`` capture armed; the recorded log and the run's summary
are pinned:

* ``tests/golden/scenarios/<name>.rplog`` — every raw measurement of
  the run (calibration rotation + mission steps), self-checking and
  bit-exactly replayable through :func:`repro.replay.verify_full`;
* ``tests/golden/scenario_corpus.json`` — per-scenario summaries
  (max error, degraded steps, flags, drift) plus each log's
  fingerprint and SHA-256.

``tests/test_scenario_corpus.py`` re-records each scenario and demands
**byte identity** with the pinned log, so this corpus only changes when
the physics, the compensation chain, or the scenario DSL changes — and
then the diff is the review artifact.

Usage::

    PYTHONPATH=src python scripts/regen_golden_scenarios.py
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.replay import read_log  # noqa: E402
from repro.scenario import SCENARIOS, ScenarioRunner  # noqa: E402

GOLDEN_DIR = (
    pathlib.Path(__file__).resolve().parent.parent / "tests" / "golden"
)
CORPUS_DIR = GOLDEN_DIR / "scenarios"
CORPUS_JSON = GOLDEN_DIR / "scenario_corpus.json"


def main() -> int:
    CORPUS_DIR.mkdir(parents=True, exist_ok=True)
    corpus = {}
    failed = False
    for name in sorted(SCENARIOS):
        scenario = SCENARIOS[name]
        log_path = CORPUS_DIR / f"{name}.rplog"
        result = ScenarioRunner(
            scenario, record_path=str(log_path)
        ).run()
        reader = read_log(str(log_path))
        raw = log_path.read_bytes()
        corpus[name] = {
            "summary": result.summary(),
            "records": len(reader),
            "fingerprint": reader.header.fingerprint,
            "sha256": hashlib.sha256(raw).hexdigest(),
            "bytes": len(raw),
        }
        status = "honest" if result.honest else "SILENT-WRONG"
        print(
            f"  {name:<18} {len(reader):3d} records  "
            f"max |error| {result.max_abs_error_deg:6.3f} deg  {status}"
        )
        if not result.honest:
            failed = True
    CORPUS_JSON.write_text(
        json.dumps(corpus, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {CORPUS_JSON} and {len(corpus)} logs in {CORPUS_DIR}")
    if failed:
        print(
            "GOLDEN CORPUS HAS SILENT-WRONG RUNS — do not commit this",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
