#!/usr/bin/env python
"""Regenerate the golden conformance vectors in tests/golden/.

The golden suite pins the exact integer counter pair, the exact measured
heading and the health verdict for a 16-heading x 3-magnitude grid of
clean scalar measurements.  Every measurement path (scalar, batch,
instrumented) must reproduce these vectors **bit-for-bit** — the file is
the repo's contract that observability and refactors never move a single
output bit.

Regenerate (only after an intentional numerics change, with the diff
reviewed heading-by-heading):

    PYTHONPATH=src python scripts/regen_golden_vectors.py

JSON round-trips Python floats exactly (repr <-> float), so equality
checks in tests/test_golden_vectors.py are ``==``, not ``approx``.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.core.compass import IntegratedCompass  # noqa: E402

#: 16 headings, evenly spaced, deliberately off the cardinal grid by an
#: irrational-ish offset so no cell sits exactly on a quadrant boundary.
HEADINGS_DEG = tuple(round(11.25 + i * 22.5, 4) for i in range(16))

#: Weak / nominal / strong horizontal fields [uT] — spanning the earth
#: field band the health supervisor considers plausible.
FIELD_MAGNITUDES_UT = (25.0, 50.0, 65.0)

OUTPUT = os.path.join(
    os.path.dirname(__file__), os.pardir, "tests", "golden",
    "compass_vectors.json",
)


def generate() -> dict:
    compass = IntegratedCompass()
    vectors = []
    for field_ut in FIELD_MAGNITUDES_UT:
        for heading in HEADINGS_DEG:
            m = compass.measure_heading(heading, field_ut * 1e-6)
            health = m.health
            vectors.append({
                "true_heading_deg": heading,
                "field_ut": field_ut,
                "x_count": m.x_count,
                "y_count": m.y_count,
                "heading_deg": m.heading_deg,
                "field_estimate_a_per_m": m.field_estimate_a_per_m,
                "cordic_cycles": m.cordic_cycles,
                "health_status": None if health is None else health.status,
                "health_flags": (
                    [] if health is None else list(health.flags)
                ),
                "degraded": m.degraded,
            })
    return {
        "meta": {
            "description": (
                "Golden conformance vectors: clean scalar measurements "
                "over a 16-heading x 3-magnitude grid. All paths must "
                "match bit-for-bit."
            ),
            "headings_deg": list(HEADINGS_DEG),
            "field_magnitudes_ut": list(FIELD_MAGNITUDES_UT),
            "regenerate": (
                "PYTHONPATH=src python scripts/regen_golden_vectors.py"
            ),
        },
        "vectors": vectors,
    }


def main() -> int:
    record = generate()
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=1)
        handle.write("\n")
    print(f"wrote {len(record['vectors'])} vectors to {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
