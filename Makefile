# Convenience targets for the compass reproduction.

.PHONY: install test lint bench bench-tables examples datasheet floorplan all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# Lint/type-check when the tools are available (pip install -e .[lint]);
# skip gracefully on bare environments so `make all` stays runnable.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping (pip install -e .[lint])"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "lint: mypy not installed, skipping (pip install -e .[lint])"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

bench-tables:
	pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
		echo; \
	done

datasheet:
	python -m repro datasheet

floorplan:
	python -m repro floorplan

all: install lint test bench
