# Convenience targets for the compass reproduction.

.PHONY: install test test-slow test-all lint bench bench-tables examples datasheet floorplan faults serve-sim soak fleet factory scenario array replay fastpath all

install:
	pip install -e . || python setup.py develop

# Default tier: excludes tests marked `slow` (see pyproject addopts).
test:
	pytest tests/

# The slow tier on its own: long sweeps + the fault smoke campaign.
test-slow:
	pytest tests/ -m slow

test-all:
	pytest tests/ -m "slow or not slow"

# Lint/type-check when the tools are available (pip install -e .[lint]);
# skip gracefully on bare environments so `make all` stays runnable.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping (pip install -e .[lint])"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "lint: mypy not installed, skipping (pip install -e .[lint])"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

bench-tables:
	pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
		echo; \
	done

# Fault-injection smoke campaign (<30 s): every registered fault through
# the scalar + batch + scan paths; exits nonzero on any silent-wrong cell.
faults:
	PYTHONPATH=src python -m repro faults --json BENCH_faults.json

# Replicated heading service demo: verdicts and breaker states live.
serve-sim:
	PYTHONPATH=src python -m repro serve-sim --requests 8

# Seeded chaos soak against the service; exits nonzero if silent-wrong
# rises above zero or availability misses the floor.
soak:
	PYTHONPATH=src python -m repro soak --requests 100 --json BENCH_service.json

# Fleet storm: deterministic chaos + RPS ramp past saturation against
# the sharded heading fleet; exits 17 if any SLO gate breaks, then
# regenerates BENCH_fleet.json via the fleet benchmark.
fleet:
	PYTHONPATH=src python -m repro fleet-soak \
		--json fleet-soak-report.json --metrics fleet-metrics.json
	PYTHONPATH=src pytest benchmarks/bench_fleet.py --benchmark-only -s

# Simulated production run: a 10k-unit lot through the staged test
# program (exit 18 if any defective unit escapes as silent-wrong), then
# regenerates BENCH_factory.json via the factory benchmark.
factory:
	PYTHONPATH=src python -m repro factory --units 10000 \
		--json factory-lot-report.json --no-units \
		--metrics factory-metrics.json
	PYTHONPATH=src pytest benchmarks/bench_factory.py --benchmark-only -s

# Per-scenario fault campaign over the golden mission corpus: every
# environment fault x severity x scenario; exits nonzero on any
# silent-wrong or nonconforming cell, then regenerates
# BENCH_scenario.json via the scenario benchmark.
scenario:
	PYTHONPATH=src python -m repro scenario --campaign \
		--json scenario-campaign-report.json
	PYTHONPATH=src pytest benchmarks/bench_scenario.py --benchmark-only -s

# Gradiometer array gates: one fused measurement through the 4-element
# reference array via the CLI, then regenerate BENCH_array.json — the
# dead-element benign gate, the array fault campaign (silent-wrong 0)
# and the gradiometer-rejects-ambush gate.
array:
	PYTHONPATH=src python -m repro array --json array-report.json
	PYTHONPATH=src pytest benchmarks/bench_array.py --benchmark-only -s

# Record a seeded sweep, replay it bit-exactly, then diff it through
# the scalar, batch and instrumented paths; exit 15 on silent-wrong.
replay:
	PYTHONPATH=src python -m repro record --out replay-sweep.rplog --points 24
	PYTHONPATH=src python -m repro replay replay-sweep.rplog
	PYTHONPATH=src python -m repro diff replay-sweep.rplog \
		--paths recorded scalar batch instrumented \
		--json replay-divergence.json

# Certify the closed-form analog fast path: record a seeded sweep,
# diff it through the scalar, batch and fastpath paths (exit 15 on
# silent-wrong), then regenerate BENCH_fastpath.json with the >=20x gate.
fastpath:
	PYTHONPATH=src python -m repro record --out fastpath-sweep.rplog --points 24
	PYTHONPATH=src python -m repro diff fastpath-sweep.rplog \
		--paths recorded scalar batch fastpath \
		--json fastpath-divergence.json
	PYTHONPATH=src python -m repro sweep --points 24 --fastpath
	PYTHONPATH=src pytest benchmarks/bench_fastpath.py --benchmark-only -s

datasheet:
	python -m repro datasheet

floorplan:
	python -m repro floorplan

all: install lint test bench
