# Convenience targets for the compass reproduction.

.PHONY: install test bench bench-tables examples datasheet floorplan all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-tables:
	pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
		echo; \
	done

datasheet:
	python -m repro datasheet

floorplan:
	python -m repro floorplan

all: install test bench
